#!/usr/bin/env python
"""Network scalability study — quantifying the paper's headline claim.

"Experimental results show that power loss and crosstalk noise can be
significantly reduced, enabling improved network scalability."

For growing mesh sizes this script compares the median random mapping
against an optimized one, translates worst-case loss into required laser
power, and reports the largest feasible network under a fixed power
budget for each strategy.

Run:  python examples/scalability_study.py [--sides 3 4 5 6] [--budget N]

Reproduces: no paper figure — the abstract's scalability claim, quantified.
Expected runtime: ~5 minutes at the default sides and budget.
"""

import argparse

from repro.analysis import format_scalability, scalability_study
from repro.models import PowerBudget, max_tolerable_loss_db


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sides", nargs="+", type=int, default=[3, 4, 5, 6])
    parser.add_argument("--budget", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--model-cache", metavar="DIR", default=None,
        help="on-disk coupling-model cache: re-runs load each mesh's "
             "matrices in milliseconds instead of rebuilding",
    )
    args = parser.parse_args()

    budget_model = PowerBudget()
    rows = scalability_study(
        sides=tuple(args.sides),
        budget=args.budget,
        seed=args.seed,
        budget_model=budget_model,
        model_cache_dir=args.model_cache,
    )
    print(format_scalability(rows))
    print()
    print(
        f"technology budget: detector {budget_model.detector_sensitivity_dbm} dBm, "
        f"ceiling {budget_model.max_injected_power_dbm} dBm, "
        f"margin {budget_model.system_margin_db} dB "
        f"=> max tolerable loss {max_tolerable_loss_db(budget_model):.1f} dB"
    )
    random_feasible = [row.side for row in rows if row.random_feasible]
    optimized_feasible = [row.side for row in rows if row.optimized_feasible]
    print(
        f"largest feasible mesh with random mappings:    "
        f"{max(random_feasible) if random_feasible else 'none'}"
    )
    print(
        f"largest feasible mesh with optimized mappings: "
        f"{max(optimized_feasible) if optimized_feasible else 'none'}"
    )
    print()
    print("optimized margin per size (loss recovered by mapping):")
    for row in rows:
        print(
            f"  {row.side}x{row.side}: {row.optimized_loss_db - row.random_loss_db:5.2f} dB "
            f"(laser {row.random_laser_dbm:6.2f} -> {row.optimized_laser_dbm:6.2f} dBm)"
        )


if __name__ == "__main__":
    main()
