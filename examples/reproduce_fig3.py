#!/usr/bin/env python
"""Reproduce paper Fig. 3 at full scale: 100,000 random mappings per
application on mesh + Crux, printing the distribution summaries and ASCII
cumulative-distribution curves.

Run:  python examples/reproduce_fig3.py [--samples N] [--apps ...]

Reproduces: paper Fig. 3, all eight applications.
Expected runtime: ~10-30 minutes at the full 100,000 samples per
application; use ``--samples 5000`` for a ~1-minute preview.
"""

import argparse

from repro.analysis import ascii_curve, format_fig3, reproduce_fig3
from repro.appgraph import BENCHMARK_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--apps", nargs="+", choices=BENCHMARK_NAMES, default=list(BENCHMARK_NAMES)
    )
    parser.add_argument(
        "--no-curves", action="store_true", help="skip the ASCII CDF plots"
    )
    args = parser.parse_args()

    results = reproduce_fig3(
        applications=args.apps, n_samples=args.samples, seed=args.seed
    )
    print(format_fig3(results))
    if not args.no_curves:
        for name, result in results.items():
            for metric, label in (("snr", "SNR (dB)"), ("loss", "power loss (dB)")):
                x, p = result.cdf(metric)
                print()
                print(f"--- {name}: cumulative probability vs worst-case {label}")
                print(ascii_curve(x, p, x_label=label, y_label="P"))


if __name__ == "__main__":
    main()
