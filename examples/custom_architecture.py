#!/usr/bin/env python
"""Extensibility tour: add a router, a parameter set and a strategy.

The paper stresses that "new topologies, routing algorithms, optical
router architectures, and mapping optimization strategies can be added
without any changes in the tool core". This example does all three:

1. draws a new 5x5 optical router (a Crux variant with an extra-short
   gateway) as waveguide polylines and registers it;
2. registers a pessimistic physical parameter set (an older technology
   node with lossier crossings);
3. implements and registers a custom greedy mapping strategy;
4. runs the whole stack on the MWD application with all three plugins.

Run:  python examples/custom_architecture.py

Reproduces: no paper artefact — the extensibility claim of §II, exercised.
Expected runtime: ~10 seconds.
"""

import numpy as np

from repro import (
    DesignSpaceExplorer,
    MappingProblem,
    PhotonicNoC,
    PhysicalParameters,
    load_benchmark,
    mesh,
    register_router,
    register_strategy,
)
from repro.core import MappingStrategy
from repro.core.mapping import random_assignment
from repro.core.pbla import apply_move, swap_moves
from repro.core.strategy import BestTracker
from repro.photonics import default_library
from repro.router import compile_layout
from repro.router.crux import crux_layout


# -- 1. a custom router ------------------------------------------------------


def build_compact_crux(params: PhysicalParameters):
    """A Crux variant on a denser grid: shorter internal waveguides."""
    layout = crux_layout(unit_cm=0.002)  # half the default pitch
    return compile_layout(layout, params)


register_router("compact_crux", build_compact_crux, overwrite=True)


# -- 2. a custom technology node ----------------------------------------------

legacy_node = PhysicalParameters().with_overrides(
    crossing_loss_db=-0.12,          # older, lossier crossings
    crossing_crosstalk_db=-35.0,     # and noisier ones
)
default_library().register("legacy2010", legacy_node, overwrite=True)


# -- 3. a custom strategy -------------------------------------------------------


class GreedyFirstImprovement(MappingStrategy):
    """Take the first improving swap instead of the best one (contrast
    with R-PBLA's steepest descent)."""

    name = "greedy-first"

    def _run(self, evaluator, budget, rng):
        tracker = BestTracker(evaluator)
        current = random_assignment(evaluator.n_tasks, evaluator.n_tiles, rng)
        score = float(evaluator.evaluate_batch(current[None, :]).score[0])
        tracker.offer(current, score)
        while evaluator.evaluations < budget:
            moves = swap_moves(current, evaluator.n_tiles)
            rng.shuffle(moves)
            improved = False
            for move in moves:
                if evaluator.evaluations >= budget:
                    break
                candidate = apply_move(current, move)
                candidate_score = float(
                    evaluator.evaluate_batch(candidate[None, :]).score[0]
                )
                if candidate_score > score:
                    current, score = candidate, candidate_score
                    tracker.offer(current, score)
                    improved = True
                    break
            if not improved:
                current = random_assignment(
                    evaluator.n_tasks, evaluator.n_tiles, rng
                )
                score = float(evaluator.evaluate_batch(current[None, :]).score[0])
                tracker.offer(current, score)
        return tracker.result(self.name)


register_strategy("greedy-first", GreedyFirstImprovement, overwrite=True)


# -- 4. run the stack with all three plugins -------------------------------------


def main() -> None:
    cg = load_benchmark("mwd")
    network = PhotonicNoC(
        mesh(4, 4),
        router="compact_crux",
        params=default_library().get("legacy2010"),
    )
    problem = MappingProblem(cg, network, objective="snr")
    explorer = DesignSpaceExplorer(problem)
    print(f"fabric: {network}")
    for strategy in ("rs", "r-pbla", "greedy-first"):
        result = explorer.run(strategy, budget=8000, seed=5)
        print(
            f"{strategy:13s} worst SNR {result.best_metrics.worst_snr_db:7.2f} dB  "
            f"worst loss {result.best_metrics.worst_insertion_loss_db:6.2f} dB"
        )


if __name__ == "__main__":
    main()
