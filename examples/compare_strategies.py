#!/usr/bin/env python
"""Compare all five optimization strategies on one problem.

Runs the paper's three strategies (RS, GA, R-PBLA) plus the two
extensions (simulated annealing, tabu search) under one equal budget on
the VOPD/mesh crosstalk problem, printing final quality and convergence
waypoints.

Run:  python examples/compare_strategies.py [--app vopd] [--budget N]

Reproduces: the protocol of paper Table II on a single problem.
Expected runtime: ~1 minute at the default budget.
"""

import argparse

from repro import DesignSpaceExplorer, MappingProblem, PhotonicNoC, mesh, torus
from repro.appgraph import BENCHMARK_NAMES, grid_side_for, load_benchmark
from repro.core import available_strategies


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", choices=BENCHMARK_NAMES, default="vopd")
    parser.add_argument("--topology", choices=("mesh", "torus"), default="mesh")
    parser.add_argument("--objective", choices=("snr", "loss"), default="snr")
    parser.add_argument("--budget", type=int, default=30_000)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    cg = load_benchmark(args.app)
    side = grid_side_for(cg)
    build = mesh if args.topology == "mesh" else torus
    network = PhotonicNoC(build(side, side))
    problem = MappingProblem(cg, network, args.objective)
    explorer = DesignSpaceExplorer(problem)

    print(
        f"{args.app} on {side}x{side} {args.topology}, objective={args.objective}, "
        f"budget={args.budget} evaluations\n"
    )
    results = {}
    for name in sorted(available_strategies()):
        results[name] = explorer.run(name, budget=args.budget, seed=args.seed)

    print(f"{'strategy':10s} {'score':>9s} {'worst SNR':>10s} {'worst loss':>11s}")
    for name, result in sorted(
        results.items(), key=lambda item: -item[1].best_score
    ):
        metrics = result.best_metrics
        print(
            f"{name:10s} {result.best_score:9.2f} {metrics.worst_snr_db:10.2f} "
            f"{metrics.worst_insertion_loss_db:11.2f}"
        )

    print("\nconvergence (evaluations -> best score):")
    for name, result in results.items():
        waypoints = result.history
        shown = waypoints[:: max(1, len(waypoints) // 6)][:6]
        trace = ", ".join(f"{e}:{s:.2f}" for e, s in shown)
        print(f"  {name:10s} {trace}")


if __name__ == "__main__":
    main()
