#!/usr/bin/env python
"""Quickstart: map one application onto a photonic NoC and optimize it.

This is the one-minute tour of the public API:

1. load an application Communication Graph (paper Def. 1),
2. assemble a photonic NoC (topology + optical router + routing),
3. evaluate a random mapping (worst-case insertion loss and SNR),
4. optimize the mapping with the paper's R-PBLA heuristic,
5. translate the result into a laser power requirement.

Run:  python examples/quickstart.py

Reproduces: the tool flow of paper Fig. 1 on one application.
Expected runtime: ~1 second.
"""

from repro import (
    DesignSpaceExplorer,
    Mapping,
    MappingProblem,
    PhotonicNoC,
    PowerBudget,
    load_benchmark,
    mesh,
    required_laser_power_dbm,
)


def main() -> None:
    # 1. The application: the VOPD video decoder (16 tasks).
    cg = load_benchmark("vopd")
    print(f"application: {cg.name} — {cg.n_tasks} tasks, {cg.n_edges} edges")

    # 2. The architecture: 4x4 mesh of Crux routers, XY routing (the
    #    paper's case-study fabric). Table I physics by default.
    network = PhotonicNoC(mesh(4, 4), router="crux")
    print(f"architecture: {network}")

    # 3. A random mapping, evaluated.
    problem = MappingProblem(cg, network, objective="snr")
    evaluator = problem.evaluator()
    random_mapping = Mapping.random(cg, problem.n_tiles)
    random_metrics = evaluator.evaluate(random_mapping)
    print(
        f"random mapping : worst SNR {random_metrics.worst_snr_db:6.2f} dB, "
        f"worst loss {random_metrics.worst_insertion_loss_db:6.2f} dB"
    )

    # 4. Optimize with the paper's randomized priority-based list algorithm.
    explorer = DesignSpaceExplorer(problem)
    result = explorer.run("r-pbla", budget=20_000, seed=1)
    best = result.best_metrics
    print(
        f"optimized (SNR): worst SNR {best.worst_snr_db:6.2f} dB, "
        f"worst loss {best.worst_insertion_loss_db:6.2f} dB "
        f"({result.evaluations} evaluations, {result.restarts} restarts)"
    )

    # 5. What does that buy at the physical level?
    for label, metrics in (("random", random_metrics), ("optimized", best)):
        laser = required_laser_power_dbm(
            metrics.worst_insertion_loss_db, PowerBudget()
        )
        print(f"  {label:9s} mapping needs {laser:6.2f} dBm of laser power")

    print("\nbest placement (task -> tile):")
    for task, tile in result.best_mapping.as_dict().items():
        print(f"  {task:>12s} -> tile {tile}")


if __name__ == "__main__":
    main()
