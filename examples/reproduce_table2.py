#!/usr/bin/env python
"""Reproduce paper Table II at paper-scale search budgets.

Runs RS, GA and R-PBLA on mesh and torus for all eight applications, both
objectives, under one equal evaluation budget, and prints the measured
table next to the paper's numbers.

Run:  python examples/reproduce_table2.py [--budget N] [--seed S] [--apps ...]

The default budget (100000 evaluations per strategy run) takes a few
minutes; use --budget 5000 for a quick look.

Reproduces: paper Table II.
Expected runtime: ~15-45 minutes at the default budget on one core.
"""

import argparse

from repro.analysis import reproduce_table2
from repro.appgraph import BENCHMARK_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--apps", nargs="+", choices=BENCHMARK_NAMES, default=list(BENCHMARK_NAMES)
    )
    parser.add_argument("--router", default="crux")
    args = parser.parse_args()

    result = reproduce_table2(
        applications=args.apps,
        budget=args.budget,
        seed=args.seed,
        router=args.router,
    )
    print(result.format(with_paper=True))
    print()
    print(
        "Reading guide: cells are measured SNR/loss with the paper's value\n"
        "in parentheses. Expect the *shape* to match (see EXPERIMENTS.md):\n"
        "heuristics >= random search, MPEG-4/DVOPD pinned near the ring-\n"
        "noise regime, the loosely constrained applications far above it."
    )


if __name__ == "__main__":
    main()
