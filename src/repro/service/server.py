"""Unix-socket and localhost-HTTP transports for the mapping service.

Both transports are thin shells over :class:`~repro.service.core.ServiceCore`:

* **Unix socket** (``--socket PATH``): newline-delimited JSON — one
  request object per line, one response object per line, any number of
  requests per connection. The natural transport for same-host clients
  and the load bench.
* **HTTP** (``--port N``): ``POST`` a JSON body to any path on
  ``127.0.0.1:N``; the response body is the same JSON object the socket
  transport writes, and the HTTP status mirrors the structured error
  status (200 / 400 / 429 / 500 / 503).

Connections are handled on daemon threads (the core's admission control
bounds actual concurrency); :meth:`ServiceServer.stop` performs the
graceful-shutdown path shared with the CLI's signal handling — stop
accepting, drain in-flight requests, flush the coalescers, shut the
persistent pools down, unlink the socket.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.distributed import wire
from repro.errors import ServiceError
from repro.service.core import ServiceCore

__all__ = ["ServiceServer"]


class _UnixJSONHandler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines, answer JSON lines.

    Framing is the shared :mod:`repro.distributed.wire` protocol — the
    same newline-JSON link the distributed scheduler/worker pair speaks.
    """

    def handle(self) -> None:  # noqa: D102 — socketserver plumbing
        while True:
            frame = wire.read_frame(self.rfile)
            if frame is None:
                return
            body, _status = self.server.core.handle_json(frame)
            try:
                wire.write_message(self.wfile, body)
            except (BrokenPipeError, ConnectionError, OSError):
                return  # client hung up mid-response; request already served


class _UnixServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, path: str, core: ServiceCore):
        self.core = core
        self._connections = set()
        self._connections_lock = threading.Lock()
        super().__init__(path, _UnixJSONHandler)

    def get_request(self):
        request, client_address = super().get_request()
        with self._connections_lock:
            self._connections.add(request)
        return request, client_address

    def shutdown_request(self, request):
        with self._connections_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def close_connections(self) -> None:
        """Drop every persistent client connection (used by stop()).

        Without this, clients idling on a keep-alive connection would
        hang on a daemon that has already drained and stopped serving —
        closing the sockets hands them the EOF their reconnect logic
        keys on.
        """
        with self._connections_lock:
            victims = list(self._connections)
            self._connections.clear()
        for sock in victims:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class _HTTPHandler(BaseHTTPRequestHandler):
    """POST-only JSON endpoint mirroring the socket framing."""

    protocol_version = "HTTP/1.1"

    def do_POST(self) -> None:  # noqa: D102 — http.server plumbing
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        body, status = self.server.core.handle_json(
            self.rfile.read(length) if length else b""
        )
        payload = json.dumps(body, separators=(",", ":")).encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionError, OSError):
            pass  # client hung up; nothing to salvage

    def do_GET(self) -> None:  # noqa: D102 — convenience: GET == stats
        body, status = self.server.core.handle({"kind": "stats"})
        payload = json.dumps(body, separators=(",", ":")).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format, *args):  # noqa: A002,D102 — quiet by default
        pass


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, port: int, core: ServiceCore):
        self.core = core
        super().__init__(("127.0.0.1", port), _HTTPHandler)


class ServiceServer:
    """One running daemon: a core plus exactly one bound transport.

    Parameters
    ----------
    core : ServiceCore
        The dispatcher holding the resident state.
    socket_path : str, optional
        Unix-socket path to bind (a stale file at the path is
        unlinked first — the daemon owns its socket path).
    port : int, optional
        Localhost TCP port for the HTTP transport. Exactly one of
        ``socket_path`` / ``port`` must be given. ``port=0`` binds an
        ephemeral port, exposed as :attr:`port` afterwards.
    """

    def __init__(
        self,
        core: ServiceCore,
        socket_path: Optional[str] = None,
        port: Optional[int] = None,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ServiceError(
                "exactly one of socket_path / port must be given"
            )
        self.core = core
        self.socket_path = socket_path
        self._thread: Optional[threading.Thread] = None
        self._stopped = False
        if socket_path is not None:
            if os.path.exists(socket_path):
                os.unlink(socket_path)  # stale socket from a dead daemon
            self._server = _UnixServer(socket_path, core)
            self.port = None
        else:
            self._server = _HTTPServer(int(port), core)
            self.port = self._server.server_address[1]

    @property
    def address(self) -> str:
        """Human-readable bound address (socket path or host:port)."""
        if self.socket_path is not None:
            return self.socket_path
        return f"127.0.0.1:{self.port}"

    def start(self) -> None:
        """Serve on a background thread (tests, benches, embedding)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="phonocmap-serve",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (CLI path)."""
        self._server.serve_forever()

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful shutdown (idempotent): drain, release, unlink.

        The exact sequence the daemon's signal handling rides: stop
        accepting connections, drain in-flight requests and flush the
        coalescers (:meth:`ServiceCore.close`), shut the persistent
        worker pools down *before* interpreter exit unlinks their
        shared-memory segments, then unlink the unix socket.
        """
        if self._stopped:
            return
        self._stopped = True
        self._server.shutdown()  # stops serve_forever (any thread's)
        self._server.server_close()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=timeout)
        self.core.close(timeout=timeout)
        # In-flight requests have drained; drop lingering keep-alive
        # connections so their clients fail over instead of hanging.
        close_connections = getattr(self._server, "close_connections", None)
        if close_connections is not None:
            close_connections()
        from repro.core.pool import shutdown_pools

        shutdown_pools()
        if self.socket_path is not None and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def __enter__(self) -> "ServiceServer":
        """Start serving on entry to a ``with`` block."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Gracefully stop on ``with``-block exit."""
        self.stop()


def _connect_unix(path: str, timeout: float) -> socket.socket:
    """Dial a unix socket (shared with the client module)."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(path)
    return sock
