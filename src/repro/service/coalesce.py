"""Cross-request batch coalescing for the mapping service.

The daemon's defining optimization: concurrent requests that resolve to
the **same objective-free pool key** — CG fingerprint, network
signature, coupling dtype, resolved backend, variation fingerprint;
exactly the key :func:`repro.core.pool.pool_key` was designed around —
have their batch-shardable work merged into shared
:meth:`~repro.core.evaluator.MappingEvaluator.submit_batch` flights.
(The variation fingerprint matters: it decides the wire table set, so
requests sharing a flight always agree on the columns being produced.)

Why this is sound
-----------------
Every reduction in the batch metric pipeline runs *within a row* (the
PR 3 invariant that already makes sharded evaluation bit-identical for
any worker count), so the composition of a flight — which requests'
rows ride together, and in what order — cannot change any row's value.
The flight is scored objective-free (the raw per-row metric tables,
via :meth:`~repro.core.evaluator.PendingBatch.tables`), then split back
per request; each request applies its own objective score and charges
its own evaluation counter. Candidate *generation* stays per-request,
driven by the request's own seeded RNG, so every response is
bit-identical to the same request run offline.

Mechanics
---------
One :class:`BatchCoalescer` per pool key owns a shared evaluator and a
flusher thread. Request handlers submit row blocks and receive tickets;
the flusher lingers a few milliseconds (only while other requests are
active — a lone request pays no added latency) so concurrent
submissions can join the flight, concatenates the pending blocks, and
runs them as one ``submit_batch`` call — sharded across the warm
persistent pool when large enough, inline otherwise. Flights per key
are serialized by construction, which itself batches up work arriving
while a flight is in progress.

:class:`CoalescingEvaluator` is the drop-in seam: a
:class:`~repro.core.evaluator.MappingEvaluator` whose ``submit_batch``
routes through a coalescer, so random search, the GA and the
distribution sweep coalesce *without knowing the service exists*.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.evaluator import BatchMetrics, MappingEvaluator
from repro.errors import ServiceError

__all__ = [
    "BatchCoalescer",
    "CoalesceStats",
    "CoalescedBatch",
    "CoalescingEvaluator",
]


class CoalesceStats:
    """Counters of one coalescer (all mutated under the coalescer lock)."""

    def __init__(self) -> None:
        self.flights = 0  # merged submit_batch calls actually launched
        self.batches = 0  # request-side submissions that rode a flight
        self.coalesced_batches = 0  # submissions sharing a flight with others
        self.rows = 0  # total mapping rows scored
        self.max_flight_batches = 0

    def record_flight(self, n_batches: int, n_rows: int) -> None:
        """Account one launched flight of ``n_batches`` submissions."""
        self.flights += 1
        self.batches += n_batches
        if n_batches > 1:
            self.coalesced_batches += n_batches
        self.rows += n_rows
        self.max_flight_batches = max(self.max_flight_batches, n_batches)

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (for the ``stats`` request kind)."""
        return {
            "flights": self.flights,
            "batches": self.batches,
            "coalesced_batches": self.coalesced_batches,
            "rows": self.rows,
            "max_flight_batches": self.max_flight_batches,
            "coalescing_ratio": (
                self.batches / self.flights if self.flights else None
            ),
        }


class _Ticket:
    """One submission's slot in a (future) flight."""

    __slots__ = ("n_rows", "_event", "_tables", "_error")

    def __init__(self, n_rows: int) -> None:
        self.n_rows = n_rows
        self._event = threading.Event()
        self._tables: Optional[Tuple[np.ndarray, ...]] = None
        self._error: Optional[BaseException] = None

    def fulfil(self, tables: Tuple[np.ndarray, ...]) -> None:
        self._tables = tables
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def tables(self) -> Tuple[np.ndarray, ...]:
        """Block until the flight lands; return this ticket's row slice."""
        self._event.wait()
        if self._error is not None:
            raise self._error
        return self._tables


class BatchCoalescer:
    """Merges concurrent batch submissions of one pool key into flights.

    Parameters
    ----------
    evaluator : MappingEvaluator
        The shared evaluator flights are scored through. Only its
        objective-free table pipeline is used (its objective and
        evaluation counter are never touched), so any request whose
        problem matches this evaluator's pool key can ride, whatever
        its objective.
    window_s : float, optional
        How long a flight lingers for co-travellers before launching
        (default 4 ms). Only applied while :attr:`linger_hint` reports
        other active requests; a lone request's flights launch
        immediately.
    max_flight_rows : int, optional
        Row cap per flight; pending submissions beyond it launch in the
        next flight (values are unaffected — the cap only bounds the
        merged matrix's memory).
    linger_hint : callable, optional
        Zero-argument callable; return True when waiting for
        co-travellers is worthwhile (the core passes "more than one
        request in flight"). Defaults to always lingering.
    """

    def __init__(
        self,
        evaluator: MappingEvaluator,
        window_s: float = 0.004,
        max_flight_rows: int = 65536,
        linger_hint: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.evaluator = evaluator
        self.window_s = float(window_s)
        self.max_flight_rows = int(max_flight_rows)
        self.linger_hint = linger_hint if linger_hint is not None else lambda: True
        self.stats = CoalesceStats()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: List[Tuple[_Ticket, np.ndarray]] = []
        self._closed = False
        self._thread = threading.Thread(
            target=self._flush_loop,
            name=f"coalescer-{evaluator.cg.name}",
            daemon=True,
        )
        self._thread.start()

    def submit(self, assignments: np.ndarray) -> _Ticket:
        """Queue validated assignment rows for the next flight.

        The rows are snapshotted (the caller may reuse its buffer, the
        ``submit_batch`` contract) and the ticket's
        :meth:`_Ticket.tables` blocks until the flight lands.
        """
        block = np.ascontiguousarray(assignments, dtype=np.int64).copy()
        ticket = _Ticket(block.shape[0])
        with self._wakeup:
            if self._closed:
                raise ServiceError(
                    "service is shutting down", status=503, kind="shutting_down"
                )
            self._pending.append((ticket, block))
            self._wakeup.notify_all()
        return ticket

    def close(self, timeout: float = 30.0) -> None:
        """Stop accepting work; flush what is pending, join the flusher."""
        with self._wakeup:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify_all()
        self._thread.join(timeout=timeout)

    # -- flusher thread ----------------------------------------------------

    def _flush_loop(self) -> None:
        while True:
            entries = self._collect_flight()
            if entries is None:
                return
            if entries:
                self._run_flight(entries)

    def _collect_flight(self) -> Optional[List[Tuple[_Ticket, np.ndarray]]]:
        """Wait for work, linger for co-travellers, take one flight's load.

        Returns None when closed and drained (thread exit).
        """
        with self._wakeup:
            while not self._pending and not self._closed:
                self._wakeup.wait()
            if not self._pending:
                return None  # closed and drained
            if not self._closed and self.linger_hint():
                deadline = time.monotonic() + self.window_s
                while (
                    not self._closed
                    and sum(t.n_rows for t, _ in self._pending)
                    < self.max_flight_rows
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._wakeup.wait(remaining)
            take, rows = 0, 0
            while take < len(self._pending) and rows < self.max_flight_rows:
                rows += self._pending[take][0].n_rows
                take += 1
            entries = self._pending[:take]
            del self._pending[:take]
            return entries

    def _run_flight(self, entries: List[Tuple[_Ticket, np.ndarray]]) -> None:
        """Score one merged flight and re-split its tables per ticket."""
        tickets = [ticket for ticket, _ in entries]
        blocks = [block for _, block in entries]
        merged = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        try:
            tables = self.evaluator.submit_batch(merged).tables()
        except BaseException as error:  # noqa: BLE001 — forwarded to callers
            for ticket in tickets:
                ticket.fail(error)
            return
        with self._lock:
            self.stats.record_flight(len(tickets), merged.shape[0])
        offset = 0
        for ticket in tickets:
            stop = offset + ticket.n_rows
            # Copies, so the merged flight tables are freed as soon as
            # every ticket has been consumed.
            ticket.fulfil(tuple(column[offset:stop].copy() for column in tables))
            offset = stop


class CoalescedBatch:
    """A :class:`~repro.core.evaluator.PendingBatch`-shaped handle.

    Wraps one coalescer ticket: :meth:`result` blocks until the merged
    flight lands, applies *this request's* objective to its row slice
    and charges this request's evaluator — exactly the accounting the
    inline ``PendingBatch`` performs, so optimizers cannot tell the
    difference.
    """

    def __init__(self, evaluator: MappingEvaluator, ticket: _Ticket) -> None:
        self._evaluator = evaluator
        self._ticket = ticket
        self._metrics: Optional[BatchMetrics] = None

    def done(self) -> bool:
        """Whether :meth:`result` would return without blocking."""
        return self._metrics is not None or self._ticket.done()

    def result(self) -> BatchMetrics:
        """Collect this request's slice; charge its evaluator once."""
        if self._metrics is None:
            tables = self._ticket.tables()
            self._evaluator.evaluations += self._ticket.n_rows
            score = self._evaluator._score_tables(tables)
            # worst_il / worst_snr lead every table set (BASE_TABLES
            # order); the flight's evaluator shares this request's pool
            # key, so the column layouts agree by construction.
            self._metrics = BatchMetrics(tables[0], tables[1], score)
        return self._metrics


class CoalescingEvaluator(MappingEvaluator):
    """An evaluator whose batch submissions ride shared flights.

    Constructed per request by the service core and bound (via
    :attr:`coalescer`) to the :class:`BatchCoalescer` of the request's
    pool key. All non-batch entry points — single :meth:`evaluate`
    calls, the delta engine's table gathers — stay inline and
    request-local; only ``submit_batch`` / ``evaluate_batch`` coalesce,
    because only their row-local pipeline carries the
    composition-independence guarantee.
    """

    def __init__(self, problem, coalescer: Optional[BatchCoalescer] = None, **kwargs):
        super().__init__(problem, **kwargs)
        self.coalescer = coalescer

    def submit_batch(self, assignments, n_workers=None, min_shard_rows=None):
        """Submit a batch; rows join the pool key's next shared flight."""
        if self.coalescer is None:
            return super().submit_batch(assignments, n_workers, min_shard_rows)
        assignments = self._check_batch(assignments)
        return CoalescedBatch(self, self.coalescer.submit(assignments))
