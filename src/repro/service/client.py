"""A small synchronous client for the mapping service.

Speaks both transports — newline-delimited JSON over a unix socket, or
HTTP POST against the localhost port — and is what the tests, the load
bench and the README quickstart use. One call, one response dict::

    from repro.service import ServiceClient

    with ServiceClient(socket_path="/tmp/phonocmap.sock") as client:
        response = client.request({
            "kind": "optimize", "app": "vopd",
            "strategy": "rs", "budget": 2000, "seed": 7,
        })
    assert response["ok"], response["error"]
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Optional

from repro.errors import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking JSON client for one daemon (unix socket or localhost HTTP).

    Parameters
    ----------
    socket_path : str, optional
        Unix-socket path of the daemon.
    port : int, optional
        Localhost HTTP port of the daemon. Exactly one of the two must
        be given.
    timeout : float, optional
        Per-request *read* timeout in seconds (default 300 — optimize
        requests legitimately run long).
    connect_timeout : float, optional
        Timeout for *dialing* the daemon (default 10). Separate from
        ``timeout`` on purpose: a dead daemon should fail a health
        check in seconds, not block for the read timeout the socket
        default would imply.
    retries : int, optional
        How many times a **reused** connection that failed mid-request
        may be transparently redialed (default 1, the historical
        retry-once). Applies only to idempotent requests
        (:meth:`_idempotent`); retries are spaced by capped exponential
        backoff (0.2 s doubling, capped at 2 s). A *freshly* dialed
        connection failing still raises immediately — the daemon is
        genuinely unreachable, and hammering it helps nobody.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 300.0,
        connect_timeout: float = 10.0,
        retries: int = 1,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ServiceError("exactly one of socket_path / port must be given")
        self.socket_path = socket_path
        self.port = port
        self.timeout = float(timeout)
        self.connect_timeout = float(connect_timeout)
        self.retries = max(0, int(retries))
        self._sock: Optional[socket.socket] = None
        self._reader = None

    #: Backoff shape between idempotent retries.
    _BACKOFF_BASE_S = 0.2
    _BACKOFF_CAP_S = 2.0

    def _backoff(self, retry: int) -> float:
        """Delay before the ``retry``-th redial (1-based), capped."""
        return min(self._BACKOFF_CAP_S, self._BACKOFF_BASE_S * (2 ** (retry - 1)))

    def request(self, payload: dict) -> dict:
        """Send one request object; block for and return its response.

        Transport failures raise :class:`~repro.errors.ServiceError`;
        application-level failures come back as the daemon's structured
        ``{"ok": false, "error": {...}}`` body without raising, so
        callers can branch on ``response["ok"]``.
        """
        if self.socket_path is not None:
            return self._request_unix(payload)
        return self._request_http(payload)

    @staticmethod
    def _idempotent(payload: dict) -> bool:
        """Whether a request may be transparently retried once.

        A retried request must be unable to produce a *different*
        answer or a double side effect. ``stats`` is read-only;
        ``evaluate``/``distribution``/``optimize`` requests are pure
        functions of their body **only when deterministic** — explicit
        mappings, or an explicit seed (a ``seed: null`` request draws
        fresh OS entropy per execution, so it is not retried).
        """
        if not isinstance(payload, dict):
            return False
        if payload.get("kind") == "stats":
            return True
        if payload.get("mappings") is not None:
            return True
        return payload.get("seed") is not None

    def _request_unix(self, payload: dict) -> dict:
        """One request over the persistent unix connection.

        A connection that was reused from an earlier request may have
        been dropped server-side (daemon restart, idle reap) without
        this client noticing; when that happens mid-request the client
        reconnects and retries up to :attr:`retries` times with capped
        backoff, and only for idempotent requests (:meth:`_idempotent`)
        — a freshly dialed connection failing means the daemon is
        genuinely unreachable, so that raises immediately.
        """
        retried = 0
        while True:
            fresh = self._sock is None
            if fresh:
                from repro.service.server import _connect_unix

                try:
                    self._sock = _connect_unix(
                        self.socket_path, self.connect_timeout
                    )
                    self._sock.settimeout(self.timeout)
                except OSError as error:
                    raise ServiceError(
                        f"cannot reach daemon at {self.socket_path}: {error}",
                        status=503,
                        kind="unreachable",
                    ) from None
                self._reader = self._sock.makefile("rb")
            line = None
            try:
                self._sock.sendall(
                    json.dumps(payload, separators=(",", ":")).encode() + b"\n"
                )
                line = self._reader.readline()
            except OSError as error:
                self.close()
                if not fresh and retried < self.retries and self._idempotent(payload):
                    retried += 1
                    time.sleep(self._backoff(retried))
                    continue
                raise ServiceError(
                    f"daemon connection failed: {error}",
                    status=503,
                    kind="unreachable",
                ) from None
            if not line:
                self.close()
                if not fresh and retried < self.retries and self._idempotent(payload):
                    retried += 1
                    time.sleep(self._backoff(retried))
                    continue
                raise ServiceError(
                    "daemon closed the connection", status=503, kind="unreachable"
                )
            return json.loads(line)

    def _request_http(self, payload: dict) -> dict:
        connection = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=self.connect_timeout
        )
        try:
            connection.connect()  # dial under connect_timeout...
            if connection.sock is not None:
                connection.sock.settimeout(self.timeout)  # ...read under timeout
            connection.request(
                "POST",
                "/",
                body=json.dumps(payload, separators=(",", ":")),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return json.loads(response.read())
        except OSError as error:
            raise ServiceError(
                f"cannot reach daemon at 127.0.0.1:{self.port}: {error}",
                status=503,
                kind="unreachable",
            ) from None
        finally:
            connection.close()

    def close(self) -> None:
        """Drop the persistent unix connection (if any); idempotent."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        """Enter a ``with`` block; the connection dials lazily."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the connection on ``with``-block exit."""
        self.close()
