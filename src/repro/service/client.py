"""A small synchronous client for the mapping service.

Speaks both transports — newline-delimited JSON over a unix socket, or
HTTP POST against the localhost port — and is what the tests, the load
bench and the README quickstart use. One call, one response dict::

    from repro.service import ServiceClient

    with ServiceClient(socket_path="/tmp/phonocmap.sock") as client:
        response = client.request({
            "kind": "optimize", "app": "vopd",
            "strategy": "rs", "budget": 2000, "seed": 7,
        })
    assert response["ok"], response["error"]
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Optional

from repro.errors import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking JSON client for one daemon (unix socket or localhost HTTP).

    Parameters
    ----------
    socket_path : str, optional
        Unix-socket path of the daemon.
    port : int, optional
        Localhost HTTP port of the daemon. Exactly one of the two must
        be given.
    timeout : float, optional
        Per-request socket timeout in seconds (default 300 — optimize
        requests legitimately run long).
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 300.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ServiceError("exactly one of socket_path / port must be given")
        self.socket_path = socket_path
        self.port = port
        self.timeout = float(timeout)
        self._sock: Optional[socket.socket] = None
        self._reader = None

    def request(self, payload: dict) -> dict:
        """Send one request object; block for and return its response.

        Transport failures raise :class:`~repro.errors.ServiceError`;
        application-level failures come back as the daemon's structured
        ``{"ok": false, "error": {...}}`` body without raising, so
        callers can branch on ``response["ok"]``.
        """
        if self.socket_path is not None:
            return self._request_unix(payload)
        return self._request_http(payload)

    @staticmethod
    def _idempotent(payload: dict) -> bool:
        """Whether a request may be transparently retried once.

        A retried request must be unable to produce a *different*
        answer or a double side effect. ``stats`` is read-only;
        ``evaluate``/``distribution``/``optimize`` requests are pure
        functions of their body **only when deterministic** — explicit
        mappings, or an explicit seed (a ``seed: null`` request draws
        fresh OS entropy per execution, so it is not retried).
        """
        if not isinstance(payload, dict):
            return False
        if payload.get("kind") == "stats":
            return True
        if payload.get("mappings") is not None:
            return True
        return payload.get("seed") is not None

    def _request_unix(self, payload: dict) -> dict:
        """One request over the persistent unix connection.

        A connection that was reused from an earlier request may have
        been dropped server-side (daemon restart, idle reap) without
        this client noticing; when that happens mid-request the client
        reconnects and retries **once**, and only for idempotent
        requests (:meth:`_idempotent`) — a freshly dialed connection
        failing means the daemon is genuinely unreachable, so that
        raises immediately.
        """
        retried = False
        while True:
            fresh = self._sock is None
            if fresh:
                from repro.service.server import _connect_unix

                try:
                    self._sock = _connect_unix(self.socket_path, self.timeout)
                except OSError as error:
                    raise ServiceError(
                        f"cannot reach daemon at {self.socket_path}: {error}",
                        status=503,
                        kind="unreachable",
                    ) from None
                self._reader = self._sock.makefile("rb")
            line = None
            try:
                self._sock.sendall(
                    json.dumps(payload, separators=(",", ":")).encode() + b"\n"
                )
                line = self._reader.readline()
            except OSError as error:
                self.close()
                if not fresh and not retried and self._idempotent(payload):
                    retried = True
                    continue
                raise ServiceError(
                    f"daemon connection failed: {error}",
                    status=503,
                    kind="unreachable",
                ) from None
            if not line:
                self.close()
                if not fresh and not retried and self._idempotent(payload):
                    retried = True
                    continue
                raise ServiceError(
                    "daemon closed the connection", status=503, kind="unreachable"
                )
            return json.loads(line)

    def _request_http(self, payload: dict) -> dict:
        connection = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "POST",
                "/",
                body=json.dumps(payload, separators=(",", ":")),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return json.loads(response.read())
        except OSError as error:
            raise ServiceError(
                f"cannot reach daemon at 127.0.0.1:{self.port}: {error}",
                status=503,
                kind="unreachable",
            ) from None
        finally:
            connection.close()

    def close(self) -> None:
        """Drop the persistent unix connection (if any); idempotent."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        """Enter a ``with`` block; the connection dials lazily."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the connection on ``with``-block exit."""
        self.close()
