"""Transport-independent request dispatch for the mapping service.

:class:`ServiceCore` owns everything the daemon keeps resident:

* one :class:`~repro.service.coalesce.BatchCoalescer` (plus its shared
  evaluator) per objective-free pool key, created lazily on the first
  request for that key and kept warm afterwards — along with the
  process-wide coupling-model registry, shared-memory exports and the
  persistent worker pools those evaluators create;
* admission control: a bounded queue (structured 429 when full), an
  in-flight concurrency cap, and per-request budget caps
  (:class:`ServiceLimits`);
* the per-kind handlers, each of which is **bit-identical to the
  equivalent offline run for the same seed** (see the handler
  docstrings for the exact offline counterpart).

The transports (:mod:`repro.service.server`) are thin: they decode one
JSON payload, call :meth:`ServiceCore.handle`, and write the response.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core import parallel as _parallel
from repro.core.evaluator import MappingEvaluator
from repro.core.pool import pool_key
from repro.core.registry import create_strategy
from repro.core.result import OptimizationResult
from repro.errors import ExecutorError, ReproError, ServiceError
from repro.service.coalesce import BatchCoalescer, CoalescingEvaluator
from repro.service.schema import (
    ServiceRequest,
    error_response,
    parse_request,
)

__all__ = ["ServiceCore", "ServiceLimits"]


@dataclass(frozen=True)
class ServiceLimits:
    """Admission-control knobs of one daemon instance."""

    #: Requests executing concurrently; beyond this they queue.
    max_inflight: int = 4
    #: Requests waiting for an execution slot; beyond this: 429.
    queue_size: int = 16
    #: Per-request ``optimize`` evaluation-budget cap.
    max_budget: int = 1_000_000
    #: Per-request ``distribution`` sample cap.
    max_samples: int = 2_000_000
    #: Per-request ``evaluate`` row cap (explicit or random).
    max_mappings: int = 100_000


class ServiceCore:
    """Dispatches validated requests against the resident state.

    Parameters
    ----------
    n_workers : int, optional
        Worker processes of the persistent pools the shared evaluators
        shard merged flights across (default 1: flights run inline in
        the coalescer thread — correct everywhere, parallel where it
        pays).
    model_cache_dir : str, optional
        On-disk coupling-model cache kept warm across requests *and
        daemon restarts*; ``None`` uses the process default.
    limits : ServiceLimits, optional
        Admission-control caps.
    coalesce_window_s : float, optional
        Linger window of the batch coalescers (see
        :class:`~repro.service.coalesce.BatchCoalescer`).
    executor : str, optional
        Execution backend spec for the shared evaluators' sharded
        flights — ``"local"`` (default), ``"inline"``, or
        ``"tcp://HOST:PORT"`` to dispatch coalesced flights to
        ``phonocmap worker`` processes. Bit-identical either way.
    on_worker_loss : str, optional
        Worker-loss policy for remote executors — ``"raise"`` (requests
        that exhaust remote retries fail with a structured 503
        ``executor_unavailable``) or ``"degrade"`` (they finish on a
        local fallback backend, bit-identically, and ``stats`` reports
        the degraded state). ``None`` keeps the process default (see
        :func:`repro.core.executor.worker_loss_policy`). Set for the
        whole process while this core is open, restored on
        :meth:`close`.
    default_routes : int, optional
        Route-menu size applied to requests that carry no ``routes``
        field (default 1: mapping-only, bit-identical to the pre-routing
        daemon). Requests may always set their own ``routes``.
    """

    def __init__(
        self,
        n_workers: int = 1,
        model_cache_dir: Optional[str] = None,
        limits: Optional[ServiceLimits] = None,
        coalesce_window_s: float = 0.004,
        executor: str = "local",
        on_worker_loss: Optional[str] = None,
        default_routes: int = 1,
    ) -> None:
        from repro.core.executor import (
            parse_executor_spec,
            set_worker_loss_policy,
            worker_loss_policy,
        )

        self.executor = parse_executor_spec(executor)
        self._saved_policy = (
            set_worker_loss_policy(on_worker_loss)
            if on_worker_loss is not None
            else None
        )
        self._policy_set = on_worker_loss is not None
        self.on_worker_loss = worker_loss_policy(on_worker_loss)
        self.n_workers = max(1, int(n_workers))
        self.default_routes = max(1, int(default_routes))
        self.model_cache_dir = model_cache_dir
        self.limits = limits if limits is not None else ServiceLimits()
        self.coalesce_window_s = float(coalesce_window_s)
        self._started = time.monotonic()
        self._closed = False
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._active = 0
        self._served: Dict[str, int] = {}
        self._served_objectives: Dict[str, int] = {}
        self._rejected_queue_full = 0
        self._queue_slots = threading.BoundedSemaphore(
            self.limits.max_inflight + self.limits.queue_size
        )
        self._run_slots = threading.BoundedSemaphore(self.limits.max_inflight)
        self._build_lock = threading.Lock()
        self._coalescers: Dict[Tuple, BatchCoalescer] = {}
        self._coalescer_meta: Dict[Tuple, dict] = {}

    # -- entry points --------------------------------------------------------

    def handle_json(self, data) -> Tuple[dict, int]:
        """Decode one JSON payload and dispatch it (transport helper)."""
        try:
            payload = json.loads(data)
        except ValueError as error:
            return error_response(
                ServiceError(f"invalid JSON: {error}", kind="invalid_json")
            )
        return self.handle(payload)

    def handle(self, payload: object) -> Tuple[dict, int]:
        """Admit, dispatch and answer one decoded request.

        Returns
        -------
        tuple of (dict, int)
            The JSON-serializable response body and its HTTP-ish status
            (200, 400, 429, 500, 503). Never raises: every failure mode
            becomes a structured error response.
        """
        try:
            request = parse_request(payload, default_routes=self.default_routes)
        except ServiceError as error:
            return error_response(error)
        if request.kind == "stats":
            # Always answered, even when the queue is full or the daemon
            # is draining — it is the observability endpoint.
            return {"ok": True, "kind": "stats", "result": self.stats()}, 200
        if self._closed:
            return error_response(
                ServiceError(
                    "service is shutting down", status=503, kind="shutting_down"
                )
            )
        if not self._queue_slots.acquire(blocking=False):
            with self._lock:
                self._rejected_queue_full += 1
            return error_response(
                ServiceError(
                    f"admission queue is full "
                    f"({self.limits.max_inflight} in flight + "
                    f"{self.limits.queue_size} queued); retry later",
                    status=429,
                    kind="queue_full",
                )
            )
        with self._lock:
            self._active += 1
        try:
            self._run_slots.acquire()
            try:
                result = self._dispatch(request)
            finally:
                self._run_slots.release()
            objective = request.objective.value
            with self._lock:
                self._served[request.kind] = self._served.get(request.kind, 0) + 1
                self._served_objectives[objective] = (
                    self._served_objectives.get(objective, 0) + 1
                )
            return {
                "ok": True,
                "kind": request.kind,
                "objective": objective,
                "result": result,
            }, 200
        except ServiceError as error:
            return error_response(error)
        except ExecutorError as error:
            # The execution backend is gone (remote retries exhausted,
            # no worker ever connected) and the policy said raise:
            # answer a structured 503 instead of hanging the request.
            return error_response(
                ServiceError(
                    f"execution backend unavailable: {error}",
                    status=503,
                    kind="executor_unavailable",
                )
            )
        except ReproError as error:
            return error_response(
                ServiceError(str(error), status=400, kind="repro_error")
            )
        except Exception as error:  # noqa: BLE001 — daemon must survive
            return error_response(
                ServiceError(
                    f"internal error: {error!r}", status=500, kind="internal"
                )
            )
        finally:
            self._queue_slots.release()
            with self._idle:
                self._active -= 1
                self._idle.notify_all()

    def close(self, timeout: float = 60.0) -> None:
        """Drain in-flight requests and flush the coalescers (idempotent).

        New requests are answered 503 from the moment this is called;
        the persistent pools are left to the caller (the server calls
        :func:`repro.core.pool.shutdown_pools` after this returns, so
        workers die before the shared-memory segments unlink).
        """
        self._closed = True
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._active > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(remaining)
        for coalescer in self._coalescers.values():
            coalescer.close()
        if self._policy_set:
            from repro.core.executor import set_worker_loss_policy

            set_worker_loss_policy(self._saved_policy)
            self._policy_set = False

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, request: ServiceRequest) -> dict:
        if request.kind == "optimize":
            return self._handle_optimize(request)
        if request.kind == "distribution":
            return self._handle_distribution(request)
        return self._handle_evaluate(request)

    def _should_linger(self) -> bool:
        """Coalescer hint: linger only while other requests are active."""
        with self._lock:
            return self._active > 1

    def _evaluator_for(self, request: ServiceRequest, problem) -> CoalescingEvaluator:
        """This request's evaluator, bound to its pool key's coalescer.

        Serialized by a build lock so two first requests for the same
        architecture never build the coupling model twice, and the
        coalescer registry stays consistent.
        """
        with self._build_lock:
            evaluator = CoalescingEvaluator(
                problem,
                dtype=request.dtype,
                backend=request.backend,
                model_cache_dir=self.model_cache_dir,
                executor=self.executor,
            )
            # The objective-free pool key (minus n_workers / executor):
            # requests agreeing on it — including the variation
            # fingerprint, which decides the wire table set — can share
            # flights whatever their objective.
            key = pool_key(problem, request.dtype, 1, evaluator.backend)[:5]
            coalescer = self._coalescers.get(key)
            if coalescer is None:
                shared = MappingEvaluator(
                    problem,
                    dtype=request.dtype,
                    n_workers=self.n_workers,
                    backend=evaluator.backend,
                    model_cache_dir=self.model_cache_dir,
                    executor=self.executor,
                )
                coalescer = BatchCoalescer(
                    shared,
                    window_s=self.coalesce_window_s,
                    linger_hint=self._should_linger,
                )
                self._coalescers[key] = coalescer
                self._coalescer_meta[key] = {
                    "application": problem.cg.name,
                    "network": problem.network.signature.split("|params")[0],
                    "params": problem.network.params.content_hash[:12],
                    "dtype": str(np.dtype(request.dtype).name),
                    "backend": evaluator.backend,
                    "variation": problem.variation_fingerprint,
                    "routes": problem.routes,
                }
            evaluator.coalescer = coalescer
        return evaluator

    def _handle_optimize(self, request: ServiceRequest) -> dict:
        """Run one strategy; offline counterpart: ``DesignSpaceExplorer.run``.

        Same strategy construction, the same ``np.random.default_rng``
        stream from the request seed and the same evaluation accounting
        as ``DesignSpaceExplorer(problem, dtype=, backend=,
        use_delta=).run(strategy, budget=, seed=)`` — the coalescing
        evaluator changes where batch rows are scored, never their
        values — so the response is bit-identical to the offline run.
        """
        if request.budget > self.limits.max_budget:
            raise ServiceError(
                f"budget {request.budget} exceeds the per-request cap "
                f"{self.limits.max_budget}",
                kind="over_budget",
            )
        problem = request.problem()
        evaluator = self._evaluator_for(request, problem)
        strategy = create_strategy(request.strategy)
        rng = np.random.default_rng(request.seed)
        result = _parallel.call_optimize(
            strategy, evaluator, request.budget, rng, request.use_delta
        )
        return _serialize_result(result, problem)

    def _handle_distribution(self, request: ServiceRequest) -> dict:
        """Random-mapping sweep; offline: ``random_mapping_distribution``.

        The offline function itself runs the sweep, handed this
        request's coalescing evaluator; generation depends only on the
        request seed, so the sampled arrays are bit-identical to the
        offline call with the same ``(seed, samples, batch_size)``.
        """
        from repro.analysis.distribution import random_mapping_distribution

        if request.samples > self.limits.max_samples:
            raise ServiceError(
                f"samples {request.samples} exceeds the per-request cap "
                f"{self.limits.max_samples}",
                kind="over_budget",
            )
        problem = request.problem()
        evaluator = self._evaluator_for(request, problem)
        result = random_mapping_distribution(
            problem.cg,
            problem.network,
            n_samples=request.samples,
            seed=request.seed,
            batch_size=request.batch_size,
            evaluator=evaluator,
        )
        return {
            "application": result.application,
            "n_samples": result.n_samples,
            "worst_snr_db": result.worst_snr_db.tolist(),
            "worst_loss_db": result.worst_loss_db.tolist(),
            "snr_summary": result.summary("snr"),
            "loss_summary": result.summary("loss"),
        }

    def _handle_evaluate(self, request: ServiceRequest) -> dict:
        """Score explicit or random mappings; offline: ``evaluate_batch``.

        Offline counterpart: ``MappingEvaluator(problem, dtype=,
        backend=).evaluate_batch(assignments)`` with random rows drawn
        by ``random_assignment_batch`` from the request seed — the
        service returns the identical per-row metric vectors.
        """
        problem = request.problem()
        evaluator = self._evaluator_for(request, problem)
        if request.assignments is not None:
            assignments = request.assignments
        else:
            if request.n_random > self.limits.max_mappings:
                raise ServiceError(
                    f"n_random {request.n_random} exceeds the per-request "
                    f"cap {self.limits.max_mappings}",
                    kind="over_budget",
                )
            rng = np.random.default_rng(request.seed)
            assignments = evaluator.random_vector_batch(request.n_random, rng)
        if assignments.shape[0] > self.limits.max_mappings:
            raise ServiceError(
                f"{assignments.shape[0]} mappings exceed the per-request "
                f"cap {self.limits.max_mappings}",
                kind="over_budget",
            )
        heads = assignments[:, : problem.cg.n_tasks]
        if heads.min() < 0 or heads.max() >= problem.n_tiles:
            raise ServiceError(
                f"mapping rows must name tiles in [0, {problem.n_tiles})",
                kind="infeasible",
            )
        metrics = evaluator.evaluate_batch(assignments)
        return {
            "application": problem.cg.name,
            "objective": problem.objective.value,
            "n_mappings": int(assignments.shape[0]),
            "worst_snr_db": metrics.worst_snr_db.tolist(),
            "worst_insertion_loss_db": metrics.worst_insertion_loss_db.tolist(),
            "score": metrics.score.tolist(),
        }

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Counters and coalescing state (the ``stats`` request body)."""
        with self._lock:
            served = dict(self._served)
            served_objectives = dict(self._served_objectives)
            active = self._active
            rejected = self._rejected_queue_full
        per_key = []
        totals = {"flights": 0, "batches": 0, "coalesced_batches": 0, "rows": 0}
        for key, coalescer in list(self._coalescers.items()):
            snapshot = coalescer.stats.as_dict()
            per_key.append({**self._coalescer_meta[key], **snapshot})
            for name in totals:
                totals[name] += snapshot[name]
        totals["coalescing_ratio"] = (
            totals["batches"] / totals["flights"] if totals["flights"] else None
        )
        from repro.core.pool import executor_stats

        executors = executor_stats()
        return {
            "uptime_s": time.monotonic() - self._started,
            "active_requests": active,
            "served": served,
            "served_objectives": served_objectives,
            "rejected_queue_full": rejected,
            "executor": self.executor,
            "executors": executors,
            "on_worker_loss": self.on_worker_loss,
            "degraded": executors["totals"]["degraded"],
            "n_workers": self.n_workers,
            "default_routes": self.default_routes,
            "model_cache_dir": self.model_cache_dir,
            "limits": {
                "max_inflight": self.limits.max_inflight,
                "queue_size": self.limits.queue_size,
                "max_budget": self.limits.max_budget,
                "max_samples": self.limits.max_samples,
                "max_mappings": self.limits.max_mappings,
            },
            "coalescing": {"per_key": per_key, "totals": totals},
        }


def _serialize_result(result: OptimizationResult, problem) -> dict:
    """JSON body of one optimization result (floats round-trip exactly)."""
    metrics = result.best_metrics
    body = {
        "strategy": result.strategy,
        "objective": problem.objective.value,
        "best_score": float(result.best_score),
        "best_mapping": result.best_mapping.as_dict(),
        "assignment": [int(t) for t in result.best_mapping.assignment],
        "evaluations": int(result.evaluations),
        "restarts": int(result.restarts),
        "history": [[int(n), float(s)] for n, s in result.history],
        "worst_snr_db": float(metrics.worst_snr_db),
        "worst_insertion_loss_db": float(metrics.worst_insertion_loss_db),
        "mean_snr_db": float(metrics.mean_snr_db),
        "weighted_loss_db": float(metrics.weighted_loss_db),
    }
    if result.route_genes is not None:
        body["route_genes"] = [int(g) for g in result.route_genes]
    if metrics.laser_power_db is not None:
        body["laser_power_db"] = float(metrics.laser_power_db)
    if metrics.robust_snr_db is not None:
        body["robust_snr_db"] = float(metrics.robust_snr_db)
    if problem.variation is not None:
        body["variation"] = problem.variation_fingerprint
    return body
