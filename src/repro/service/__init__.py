"""Mapping-as-a-service: the long-running ``phonocmap serve`` daemon.

The unit of work becomes a *request* — communication graph + network
spec + objective + budget + seed — instead of a script run. The daemon
keeps the expensive state resident across requests (the on-disk model
cache, the in-process coupling-model registry with its shared-memory
exports, and the warm :class:`~repro.core.pool.PersistentPool`\\ s), and
**coalesces batch-shardable work across concurrent requests** that
resolve to the same objective-free pool key (see
:mod:`repro.service.coalesce`).

Layout
------
* :mod:`repro.service.schema` — request parsing/validation and response
  shaping (JSON in, JSON out; every limit violation is a structured
  error).
* :mod:`repro.service.coalesce` — the cross-request batch coalescer and
  the evaluator subclass that routes ``submit_batch`` through it.
* :mod:`repro.service.core` — transport-independent dispatch: admission
  control, the per-kind handlers, resident-state registries, stats.
* :mod:`repro.service.server` — unix-socket (newline-delimited JSON)
  and localhost-HTTP (POST JSON) transports plus graceful shutdown.
* :mod:`repro.service.client` — a tiny client for tests, benches and
  quickstarts.
"""

from repro.service.client import ServiceClient
from repro.service.coalesce import BatchCoalescer, CoalescingEvaluator
from repro.service.core import ServiceCore, ServiceLimits
from repro.service.server import ServiceServer

__all__ = [
    "BatchCoalescer",
    "CoalescingEvaluator",
    "ServiceClient",
    "ServiceCore",
    "ServiceLimits",
    "ServiceServer",
]
