"""Request schema and validation for the mapping service.

A request is one JSON object. Common fields:

``kind``
    ``"optimize"`` | ``"evaluate"`` | ``"distribution"`` | ``"stats"``.
``app`` / ``cg``
    The application: a built-in benchmark name, or an inline CG
    description in the :func:`repro.appgraph.io.cg_from_dict` format.
    Exactly one must be present (except for ``stats``).
``topology`` / ``side`` / ``router``
    Network spec, same semantics as the CLI: ``mesh`` (default) or
    ``torus``, ``side`` defaulting to the smallest square fitting the
    application, ``router`` defaulting to ``crux``.
``dtype`` / ``backend``
    ``"float64"`` (default) or ``"float32"``; ``"auto"`` (default) /
    ``"dense"`` / ``"sparse"``.
``seed``
    Integer or null. Responses are **bit-identical to the equivalent
    offline run with the same seed** (see ``docs/ARCHITECTURE.md``).
``routes``
    Per-pair route-menu size ``k`` (default 1). ``k > 1`` widens the
    design space to joint mapping x routing: optimize searches route
    genes alongside placements, and evaluate accepts design vectors
    widened by one gene per CG edge. ``routes: 1`` requests are
    bit-identical to requests without the field.

Kind-specific fields: ``optimize`` takes ``strategy`` / ``budget`` /
``objective`` / ``use_delta``; ``distribution`` takes ``samples`` /
``batch_size``; ``evaluate`` takes either explicit ``mappings`` (a list
of task->tile assignment rows) or ``n_random`` + ``seed``, plus
``objective``.

Variation fields (``variation_samples`` / ``variation_sigma`` /
``variation_seed`` / ``variation_quantile``) configure the
process-variation plan used by the ``robust_snr`` objective; they build a
:class:`~repro.photonics.parameters.VariationSpec`. Requesting
``robust_snr`` without them attaches the default plan, exactly like the
offline API.

Validation failures raise :class:`~repro.errors.ServiceError` with an
HTTP-style status, which the transports turn into structured error
responses — a malformed request can never take the daemon down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.appgraph.benchmarks import (
    BENCHMARK_NAMES,
    grid_side_for,
    load_benchmark,
)
from repro.appgraph.graph import CommunicationGraph
from repro.appgraph.io import cg_from_dict
from repro.core.objectives import Objective, objective_names
from repro.core.problem import MappingProblem
from repro.core.registry import available_strategies
from repro.errors import ReproError, ServiceError
from repro.noc.network import PhotonicNoC
from repro.photonics.parameters import VariationSpec

__all__ = ["REQUEST_KINDS", "ServiceRequest", "error_response", "parse_request"]

#: Request kinds the dispatcher understands.
REQUEST_KINDS = ("optimize", "evaluate", "distribution", "stats")

_DTYPES = {"float64": np.float64, "float32": np.float32}


def _require(condition: bool, message: str, kind: str = "bad_request") -> None:
    if not condition:
        raise ServiceError(message, status=400, kind=kind)


def _int_field(payload: dict, name: str, default, minimum: int = 1):
    value = payload.get(name, default)
    if value is None:
        return None
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise ServiceError(
            f"field {name!r} must be an integer, got {value!r}"
        ) from None
    _require(value >= minimum, f"field {name!r} must be >= {minimum}, got {value}")
    return value


@dataclass
class ServiceRequest:
    """One validated service request, with its resolved resources."""

    kind: str
    cg: Optional[CommunicationGraph] = None
    topology: str = "mesh"
    side: Optional[int] = None
    router: str = "crux"
    objective: Objective = Objective.SNR
    variation: Optional[VariationSpec] = None
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))
    backend: str = "auto"
    seed: Optional[int] = None
    routes: int = 1
    # optimize
    strategy: str = "r-pbla"
    budget: int = 20_000
    use_delta: bool = True
    # distribution
    samples: int = 100_000
    batch_size: int = 4096
    # evaluate
    assignments: Optional[np.ndarray] = None
    n_random: int = 1

    def network(self) -> PhotonicNoC:
        """Build (or rebuild) the request's target architecture."""
        from repro.analysis.experiments import build_case_study_network

        side = self.side if self.side is not None else grid_side_for(self.cg)
        return build_case_study_network(self.topology, side, self.router)

    def problem(self) -> MappingProblem:
        """The mapping problem this request describes."""
        try:
            return MappingProblem(
                self.cg,
                self.network(),
                self.objective,
                variation=self.variation,
                routes=self.routes,
            )
        except ReproError as error:
            raise ServiceError(str(error), status=400, kind="infeasible") from None


def _parse_cg(payload: dict) -> CommunicationGraph:
    app = payload.get("app")
    inline = payload.get("cg")
    _require(
        (app is None) != (inline is None),
        "exactly one of 'app' (benchmark name) or 'cg' (inline graph) "
        "must be given",
    )
    if app is not None:
        _require(
            app in BENCHMARK_NAMES,
            f"unknown benchmark {app!r}; known: {list(BENCHMARK_NAMES)}",
            kind="unknown_application",
        )
        return load_benchmark(app)
    try:
        return cg_from_dict(inline)
    except ReproError as error:
        raise ServiceError(f"invalid inline CG: {error}") from None


def parse_request(
    payload: object, default_routes: int = 1
) -> ServiceRequest:
    """Validate one decoded JSON payload into a :class:`ServiceRequest`.

    ``default_routes`` is the menu size applied when the request has no
    ``routes`` field (the daemon's ``--routes`` flag); an explicit field
    always wins.

    Raises
    ------
    ServiceError
        With ``status=400`` on any malformed field; admission limits
        (budget caps, queue bounds) are enforced by the core, not here,
        so the schema stays deployment-independent.
    """
    _require(isinstance(payload, dict), "request must be a JSON object")
    kind = payload.get("kind")
    _require(
        kind in REQUEST_KINDS,
        f"field 'kind' must be one of {list(REQUEST_KINDS)}, got {kind!r}",
        kind="unknown_kind",
    )
    request = ServiceRequest(kind=kind)
    if kind == "stats":
        return request

    request.cg = _parse_cg(payload)
    request.topology = payload.get("topology", "mesh")
    _require(
        request.topology in ("mesh", "torus"),
        f"field 'topology' must be 'mesh' or 'torus', got {request.topology!r}",
    )
    request.side = _int_field(payload, "side", None, minimum=1)
    request.router = str(payload.get("router", "crux"))

    dtype_name = payload.get("dtype", "float64")
    _require(
        dtype_name in _DTYPES,
        f"field 'dtype' must be one of {sorted(_DTYPES)}, got {dtype_name!r}",
    )
    request.dtype = np.dtype(_DTYPES[dtype_name])
    request.backend = payload.get("backend", "auto")
    _require(
        request.backend in ("auto", "dense", "sparse"),
        f"field 'backend' must be 'auto', 'dense' or 'sparse', "
        f"got {request.backend!r}",
    )
    request.seed = _int_field(payload, "seed", None, minimum=0)
    request.routes = _int_field(payload, "routes", default_routes, minimum=1)

    objective = payload.get("objective", "snr")
    try:
        request.objective = Objective.parse(objective)
    except ReproError:
        raise ServiceError(
            f"unknown objective {objective!r}; known: {list(objective_names())}",
            status=400,
            kind="unknown_objective",
        ) from None
    request.variation = _parse_variation(payload)

    if kind == "optimize":
        request.strategy = str(payload.get("strategy", "r-pbla"))
        _require(
            request.strategy in available_strategies(),
            f"unknown strategy {request.strategy!r}; "
            f"known: {list(available_strategies())}",
            kind="unknown_strategy",
        )
        request.budget = _int_field(payload, "budget", 20_000)
        request.use_delta = bool(payload.get("use_delta", True))
    elif kind == "distribution":
        request.samples = _int_field(payload, "samples", 100_000)
        request.batch_size = _int_field(payload, "batch_size", 4096)
    elif kind == "evaluate":
        mappings = payload.get("mappings")
        if mappings is not None:
            request.assignments = _parse_assignments(
                mappings, request.cg, request.routes
            )
        else:
            request.n_random = _int_field(payload, "n_random", 1)
    return request


def _parse_variation(payload: dict) -> Optional[VariationSpec]:
    """Build the request's process-variation plan, if any field is set.

    Absent fields mean "no explicit plan": the problem layer attaches the
    default plan when the objective requires one, so a plain
    ``robust_snr`` request and the offline default agree bit-for-bit.
    """
    names = (
        "variation_samples",
        "variation_sigma",
        "variation_seed",
        "variation_quantile",
    )
    if not any(name in payload for name in names):
        return None
    n_samples = _int_field(payload, "variation_samples", 8, minimum=1)
    seed = _int_field(payload, "variation_seed", 0, minimum=0)
    try:
        sigma = float(payload.get("variation_sigma", 0.02))
        quantile = payload.get("variation_quantile")
        if quantile is not None:
            quantile = float(quantile)
    except (TypeError, ValueError):
        raise ServiceError(
            "variation_sigma / variation_quantile must be numbers"
        ) from None
    try:
        return VariationSpec(
            n_samples=n_samples, sigma=sigma, seed=seed, quantile=quantile
        )
    except ReproError as error:
        raise ServiceError(str(error)) from None


def _parse_assignments(
    mappings: object, cg: CommunicationGraph, routes: int = 1
) -> np.ndarray:
    """Coerce explicit mapping rows to an (M, width) int array.

    Plain rows list ``n_tasks`` tile indices. With ``routes > 1`` rows
    may instead be full design vectors — ``n_tasks`` tiles followed by
    one route gene per CG edge, each gene in ``[0, routes)``; plain rows
    stay accepted (the evaluator pads zero genes, i.e. base routes).
    """
    try:
        assignments = np.asarray(mappings, dtype=np.int64)
    except (TypeError, ValueError):
        raise ServiceError(
            "field 'mappings' must be a list of integer assignment rows"
        ) from None
    assignments = np.atleast_2d(assignments)
    widths = (
        (cg.n_tasks,) if routes == 1 else (cg.n_tasks, cg.n_tasks + cg.n_edges)
    )
    _require(
        assignments.ndim == 2 and assignments.shape[1] in widths,
        f"each mapping row must list {cg.n_tasks} tile indices "
        f"(one per task of {cg.name!r})"
        + (
            f", optionally followed by {cg.n_edges} route genes"
            if routes > 1
            else ""
        ),
    )
    genes = assignments[:, cg.n_tasks:]
    _require(
        genes.size == 0 or (genes.min() >= 0 and genes.max() < routes),
        f"route genes must lie in [0, {routes})",
    )
    for row in assignments[:, : cg.n_tasks]:
        _require(
            len(np.unique(row)) == len(row),
            "mapping rows must assign distinct tiles (injective mapping)",
            kind="infeasible",
        )
    return assignments


def error_response(error: ServiceError) -> Tuple[dict, int]:
    """The structured JSON body + HTTP-ish status of a failed request."""
    return (
        {
            "ok": False,
            "error": {
                "status": error.status,
                "kind": error.kind,
                "message": str(error),
            },
        },
        error.status,
    )
