"""Generic 5x5 crossbar optical routers.

Two variants are provided:

* :func:`build_crossbar` — the classic full optical crossbar: five
  horizontal input guides, five vertical output guides, one ring at every
  useful (input, output) intersection (20 rings; the five same-direction
  U-turn sites stay plain crossings). Supports *every* turn, including the
  Y-to-X turns that Crux omits, so it pairs with any routing algorithm.
* :func:`build_reduced_crossbar` — the same fabric stripped down to the 14
  connections XY dimension-order routing needs (14 rings, 11 plain
  crossings), a DOR-optimized crossbar in the spirit of ODOR. It trades
  Crux's low-loss straight transits for a simpler fabric, which makes it a
  useful ablation point.

Both are compiled from drawings, like every router in this package.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.photonics.elements import ElementKind
from repro.photonics.parameters import PhysicalParameters
from repro.router.geometry import Point
from repro.router.layout import (
    RingSpec,
    RouterLayout,
    RouterSpec,
    WaveguideSpec,
    compile_layout,
)

__all__ = [
    "crossbar_layout",
    "build_crossbar",
    "reduced_crossbar_layout",
    "build_reduced_crossbar",
    "XY_TURNS",
]

_DIRECTIONS = ("W", "N", "E", "S", "L")

#: (input direction, output direction) pairs XY dimension-order routing uses.
XY_TURNS: Tuple[Tuple[str, str], ...] = (
    ("W", "E"), ("E", "W"), ("N", "S"), ("S", "N"),
    ("W", "N"), ("W", "S"), ("E", "N"), ("E", "S"),
    ("L", "N"), ("L", "E"), ("L", "S"), ("L", "W"),
    ("W", "L"), ("E", "L"), ("N", "L"), ("S", "L"),
)


def _crossbar_layout(
    name: str, connections: Iterable[Tuple[str, str]], unit_cm: float
) -> RouterLayout:
    connection_set = set(connections)
    waveguides = []
    for row, direction in enumerate(_DIRECTIONS, start=1):
        waveguides.append(
            WaveguideSpec(
                f"in_{direction}",
                (Point(0, row), Point(6, row)),
                f"{direction}_in",
                None,
            )
        )
    for column, direction in enumerate(_DIRECTIONS, start=1):
        waveguides.append(
            WaveguideSpec(
                f"out_{direction}",
                (Point(column, 0), Point(column, 6)),
                None,
                f"{direction}_out",
            )
        )
    rings = tuple(
        RingSpec(
            f"ring_{src}{dst}",
            f"in_{src}",
            f"out_{dst}",
            ElementKind.CPSE,
        )
        for src, dst in sorted(connection_set)
    )
    return RouterLayout(name, tuple(waveguides), rings, unit_cm)


def crossbar_layout(unit_cm: float = 0.004) -> RouterLayout:
    """Full crossbar drawing: every (input, output) pair except U-turns."""
    connections = [
        (src, dst)
        for src in _DIRECTIONS
        for dst in _DIRECTIONS
        if src != dst
    ]
    return _crossbar_layout("crossbar", connections, unit_cm)


def reduced_crossbar_layout(unit_cm: float = 0.004) -> RouterLayout:
    """Crossbar drawing restricted to the connections XY routing uses."""
    return _crossbar_layout("reduced_crossbar", XY_TURNS, unit_cm)


def build_crossbar(params: PhysicalParameters, unit_cm: float = 0.004) -> RouterSpec:
    """Compile the full 20-ring crossbar."""
    return compile_layout(crossbar_layout(unit_cm), params)


def build_reduced_crossbar(
    params: PhysicalParameters, unit_cm: float = 0.004
) -> RouterSpec:
    """Compile the 14-ring DOR-optimized crossbar."""
    return compile_layout(reduced_crossbar_layout(unit_cm), params)
