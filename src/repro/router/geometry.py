"""Minimal 2-D geometry for describing optical router layouts.

Routers are described as *directed polyline waveguides* on a local grid
(:mod:`repro.router.layout`). This module provides the primitives the layout
compiler needs: points, polylines with arclength parametrization, and
segment/polyline intersection.

Only proper crossings are supported: two waveguides must cross through each
other's interior. Endpoint touching and collinear overlap are layout bugs
and raise :class:`~repro.errors.LayoutError` so the designer fixes the
drawing instead of silently getting a surprising netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import LayoutError

__all__ = ["Point", "Polyline", "segment_intersection"]

#: Tolerance for floating point geometric comparisons (layout grid units).
EPSILON = 1e-9


@dataclass(frozen=True, order=True)
class Point:
    """A point on the router layout grid."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return ((self.x - other.x) ** 2 + (self.y - other.y) ** 2) ** 0.5

    def is_close(self, other: "Point", tolerance: float = EPSILON) -> bool:
        return self.distance_to(other) <= tolerance


def _cross(ox: float, oy: float, ax: float, ay: float, bx: float, by: float) -> float:
    """Z component of (a - o) x (b - o)."""
    return (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)


def segment_intersection(
    p1: Point, p2: Point, q1: Point, q2: Point
) -> Optional[Point]:
    """Intersection point of segments ``p1p2`` and ``q1q2``, if any.

    Returns ``None`` for disjoint segments. Raises
    :class:`~repro.errors.LayoutError` for collinear overlaps and for
    degenerate touching configurations (intersection at a segment endpoint),
    because those indicate a drawing mistake in a router layout.
    """
    d1x, d1y = p2.x - p1.x, p2.y - p1.y
    d2x, d2y = q2.x - q1.x, q2.y - q1.y
    denominator = d1x * d2y - d1y * d2x
    if abs(denominator) <= EPSILON:
        # Parallel. Overlapping collinear segments are an error; disjoint
        # parallel segments simply do not intersect.
        if abs(_cross(p1.x, p1.y, p2.x, p2.y, q1.x, q1.y)) <= EPSILON:
            # Collinear: check for 1-D overlap on the dominant axis.
            if abs(d1x) >= abs(d1y):
                lo1, hi1 = sorted((p1.x, p2.x))
                lo2, hi2 = sorted((q1.x, q2.x))
            else:
                lo1, hi1 = sorted((p1.y, p2.y))
                lo2, hi2 = sorted((q1.y, q2.y))
            if hi1 - lo2 > EPSILON and hi2 - lo1 > EPSILON:
                raise LayoutError(
                    "collinear overlapping waveguide segments: "
                    f"({p1}, {p2}) and ({q1}, {q2})"
                )
        return None
    t = ((q1.x - p1.x) * d2y - (q1.y - p1.y) * d2x) / denominator
    u = ((q1.x - p1.x) * d1y - (q1.y - p1.y) * d1x) / denominator
    if t < -EPSILON or t > 1 + EPSILON or u < -EPSILON or u > 1 + EPSILON:
        return None
    interior_t = EPSILON < t < 1 - EPSILON
    interior_u = EPSILON < u < 1 - EPSILON
    if not (interior_t and interior_u):
        # Touches an endpoint: ambiguous drawing.
        raise LayoutError(
            "waveguide segments touch at an endpoint instead of properly "
            f"crossing: ({p1}, {p2}) and ({q1}, {q2}); extend or shorten one"
        )
    return Point(p1.x + t * d1x, p1.y + t * d1y)


class Polyline:
    """A directed chain of straight segments with arclength parametrization."""

    def __init__(self, points: Sequence[Point]):
        if len(points) < 2:
            raise LayoutError("a polyline needs at least two points")
        for a, b in zip(points, points[1:]):
            if a.is_close(b):
                raise LayoutError(f"zero-length polyline segment at {a}")
        self.points: Tuple[Point, ...] = tuple(points)
        self._prefix_lengths: List[float] = [0.0]
        for a, b in self.segments():
            self._prefix_lengths.append(self._prefix_lengths[-1] + a.distance_to(b))
        self._check_self_intersection()

    def _check_self_intersection(self) -> None:
        segments = list(self.segments())
        for i in range(len(segments)):
            for j in range(i + 2, len(segments)):
                p1, p2 = segments[i]
                q1, q2 = segments[j]
                try:
                    hit = segment_intersection(p1, p2, q1, q2)
                except LayoutError:
                    hit = Point(0.0, 0.0)  # any touch counts as self-intersection
                if hit is not None:
                    raise LayoutError(
                        f"self-intersecting waveguide polyline near segment {i}"
                    )

    def segments(self) -> Iterator[Tuple[Point, Point]]:
        return zip(self.points, self.points[1:])

    @property
    def length(self) -> float:
        """Total arclength in layout grid units."""
        return self._prefix_lengths[-1]

    def arclength_of(self, point: Point) -> float:
        """Arclength coordinate of a point lying on the polyline."""
        for index, (a, b) in enumerate(self.segments()):
            segment_length = a.distance_to(b)
            t = (
                (point.x - a.x) * (b.x - a.x) + (point.y - a.y) * (b.y - a.y)
            ) / (segment_length**2)
            if -EPSILON <= t <= 1 + EPSILON:
                candidate = Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
                if candidate.is_close(point, tolerance=1e-6):
                    return self._prefix_lengths[index] + t * segment_length
        raise LayoutError(f"point {point} does not lie on the polyline")

    def intersections_with(self, other: "Polyline") -> List[Point]:
        """All proper crossing points with another polyline."""
        hits: List[Point] = []
        for p1, p2 in self.segments():
            for q1, q2 in other.segments():
                hit = segment_intersection(p1, p2, q1, q2)
                if hit is not None:
                    hits.append(hit)
        return hits
