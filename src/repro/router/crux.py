"""Crux optical router reconstruction (Xie et al., DAC 2010 — paper ref [12]).

Crux is the 5x5 optical router used by every experiment in the paper. Its
defining characteristics, which this reconstruction preserves:

* 12 microring resonators — exactly one ring is ON for any supported
  connection (injection, ejection, or one of the four XY turns);
* optimized for XY dimension-order routing: only the connections DOR can
  request exist (no Y-to-X turns, no U-turns);
* straight X and Y transits pass only OFF rings (low loss, ~ -0.18 dB
  plus propagation), while turns/injection/ejection cost one ON ring
  (-0.5 dB).

The exact gate-level drawing of the original is not recoverable from the
paper text, so the geometry below is a faithful-by-characteristics
reconstruction (see DESIGN.md §4). Port-to-port loss figures and the
crosstalk phenomenology (ring-drop -20 dB couplings, crossing-grade -40 dB
couplings) land in the ranges the paper's Table II exhibits.

Layout sketch (grid units; L_in / L_out are the gateway = local port)::

        N_in(V1=x4)  N_out(V2=x5)
             |          |
      7.0    |          |  --(LN)--x      inj top run, above the ej spine
      6.5  (NL)---X1--(SL)---------       ej spine (westbound, y=6.5)
      6.0  (LS)---X2--|                   inj middle run (eastbound, y=6)
      5.0  --(ES)---(EN)--(EL x=3)--(LW x=2.2)--  H2: E_in -> W_out
      4.2  --x-------x----x---            inj westward return run
      4.0            (ej jogs west)
      3.0  --(WS)---(WN)--(LE x=5.5)--(WL x=1.5)--  H1: W_in -> E_out
      2.2  --x-------x----                inj eastward run from L_in
      2.0  X4 (ej crosses the inj riser below every ring)
             |          |
          S_out(V1)   S_in(V2)

The gateway guides are routed by two rules that shape the crosstalk
landscape exactly as in the paper's Table II:

* every injection join sits *downstream* of all rings of the joined
  transit guide (H1 joined east of WS/WN at x=5.5, H2 west of ES/EN at
  x=2.2, V2 above SL at y=7), and every ejection ring sits *upstream* of
  the corresponding injection join — so no injected signal ever traverses
  a foreign ring in its drop direction, and ring-grade (-20 dB) couplings
  arise only from multi-hop transits;
* the injection riser crosses the ejection guide's final stub (X4, below
  every ring) and the transit guides at plain crossings — so a tile that
  simultaneously sends and receives always couples with itself at the
  -40 dB crossing grade, which bounds the clean-mapping worst-case SNR at
  the ~38-40 dB regime the paper reports.

Rings (CPSE, coupling A -> B, ON state turns A onto B):

=====  ==========  =========================
ring   couples     function
=====  ==========  =========================
WL     H1 -> ej    ejection from west
LE     inj -> H1   injection heading east
EL     H2 -> ej    ejection from east
LW     inj -> H2   injection heading west
WS     H1 -> V1    X->Y turn west->south
WN     H1 -> V2    X->Y turn west->north
ES     H2 -> V1    X->Y turn east->south
EN     H2 -> V2    X->Y turn east->north
LS     inj -> V1   injection heading south
LN     inj -> V2   injection heading north
NL     V1 -> ej    ejection from north
SL     V2 -> ej    ejection from south
=====  ==========  =========================
"""

from __future__ import annotations

from repro.photonics.elements import ElementKind
from repro.photonics.parameters import PhysicalParameters
from repro.router.geometry import Point
from repro.router.layout import (
    RingSpec,
    RouterLayout,
    RouterSpec,
    WaveguideSpec,
    compile_layout,
)

__all__ = ["crux_layout", "build_crux", "CRUX_CONNECTIONS"]

#: The 16 connections a Crux router supports (XY dimension-order routing).
CRUX_CONNECTIONS = (
    ("W_in", "E_out"),
    ("E_in", "W_out"),
    ("N_in", "S_out"),
    ("S_in", "N_out"),
    ("W_in", "N_out"),
    ("W_in", "S_out"),
    ("E_in", "N_out"),
    ("E_in", "S_out"),
    ("L_in", "N_out"),
    ("L_in", "E_out"),
    ("L_in", "S_out"),
    ("L_in", "W_out"),
    ("W_in", "L_out"),
    ("E_in", "L_out"),
    ("N_in", "L_out"),
    ("S_in", "L_out"),
)


def crux_layout(unit_cm: float = 0.004) -> RouterLayout:
    """The Crux drawing; ``unit_cm`` scales one grid unit to centimetres."""
    waveguides = (
        # X-dimension transit guides
        WaveguideSpec("H1", (Point(0, 3), Point(8, 3)), "W_in", "E_out"),
        WaveguideSpec("H2", (Point(8, 5), Point(0, 5)), "E_in", "W_out"),
        # Y-dimension transit guides
        WaveguideSpec("V1", (Point(4, 8), Point(4, 0)), "N_in", "S_out"),
        WaveguideSpec("V2", (Point(5, 0), Point(5, 8)), "S_in", "N_out"),
        # Injection guide: rises from the gateway and visits the four
        # transit guides so that every join point sits *downstream* of the
        # transit guide's rings in its direction of travel: H1 is joined at
        # x=5.5 (east of the WS/WN turn rings), H2 at x=2.2 (west of the
        # ES/EN turn rings), V1 from the top run at y=6, and V2 at y=7
        # (above the SL ejection ring). Everything else the injection
        # guide meets, it meets at plain crossings, so a tile's transmit
        # side couples to everything else at the -40 dB crossing grade
        # only. Ends in a terminator.
        WaveguideSpec(
            "inj",
            (
                Point(2.2, 0),
                Point(2.2, 2.2),
                Point(5.5, 2.2),
                Point(5.5, 4.2),
                Point(2.2, 4.2),
                Point(2.2, 6),
                Point(4.4, 6),
                Point(4.4, 7),
                Point(6, 7),
            ),
            "L_in",
            None,
        ),
        # Ejection guide: starts blind in the north-east, collects the four
        # ejection rings (each upstream of the corresponding injection
        # join), and descends to the gateway detector. The westward jog at
        # y=4 lets it cross H2 east of the LW injection ring but H1 west of
        # the LE injection ring. The final eastward stub at y=2 crosses the
        # injection riser *below* every injection ring (crossing X4): every
        # signal a tile sends shares one plain crossing with every signal
        # the tile receives — the unavoidable crossing-grade (-40 dB)
        # gateway coupling that bounds the clean-mapping SNR regime at the
        # ~38-40 dB the paper's Table II exhibits.
        WaveguideSpec(
            "ej",
            (
                Point(6, 6.5),
                Point(3, 6.5),
                Point(3, 4),
                Point(1.5, 4),
                Point(1.5, 2),
                Point(2.5, 2),
                Point(2.5, 0),
            ),
            None,
            "L_out",
        ),
    )
    rings = (
        RingSpec("ring_WL", "H1", "ej", ElementKind.CPSE),
        RingSpec("ring_LE", "inj", "H1", ElementKind.CPSE, at=Point(5.5, 3)),
        RingSpec("ring_EL", "H2", "ej", ElementKind.CPSE),
        RingSpec("ring_LW", "inj", "H2", ElementKind.CPSE, at=Point(2.2, 5)),
        RingSpec("ring_WS", "H1", "V1", ElementKind.CPSE),
        RingSpec("ring_WN", "H1", "V2", ElementKind.CPSE),
        RingSpec("ring_ES", "H2", "V1", ElementKind.CPSE),
        RingSpec("ring_EN", "H2", "V2", ElementKind.CPSE),
        RingSpec("ring_LS", "inj", "V1", ElementKind.CPSE, at=Point(4, 6)),
        RingSpec("ring_LN", "inj", "V2", ElementKind.CPSE, at=Point(5, 7)),
        RingSpec("ring_NL", "V1", "ej", ElementKind.CPSE),
        RingSpec("ring_SL", "V2", "ej", ElementKind.CPSE),
    )
    return RouterLayout("crux", waveguides, rings, unit_cm)


def build_crux(params: PhysicalParameters, unit_cm: float = 0.004) -> RouterSpec:
    """Compile the Crux router against a physical parameter set."""
    return compile_layout(crux_layout(unit_cm), params)
