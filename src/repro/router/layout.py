"""Router layout compiler: waveguide drawings -> photonic netlists.

A router microarchitecture is described *declaratively* as:

* a set of directed waveguide polylines (:class:`WaveguideSpec`), each
  optionally attached to an external input/output port of the router, and
* a set of microring placements (:class:`RingSpec`) coupling one guide to
  another (crossing PSEs sit at a geometric intersection of the two guides;
  parallel PSEs are placed at explicit arclength positions).

:func:`compile_layout` turns a drawing into a :class:`RouterSpec` netlist:

* every geometric intersection between two guides becomes either the
  declared ring (CPSE) or a plain waveguide crossing,
* guide stretches between intersections become waveguide elements with a
  physical length (``unit_cm`` scales grid units to centimetres),
* the port-to-port *connections* (which elements a signal traverses, and
  which ring it turns at) are derived automatically with a shortest-loss
  path search.

This realizes the paper's extensibility claim: "new topologies, routing
algorithms, optical router architectures ... can be added without any
changes in the tool core" — a new router is just a new drawing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, LayoutError
from repro.photonics.elements import (
    A_IN,
    A_OUT,
    B_IN,
    B_OUT,
    ElementKind,
    TraversalState,
    passive_loss_db,
    straight_output,
    traversal_loss_db,
)
from repro.photonics.parameters import PhysicalParameters
from repro.router.geometry import Point, Polyline

__all__ = [
    "WaveguideSpec",
    "RingSpec",
    "RouterLayout",
    "LocalElement",
    "LocalTraversal",
    "RouterSpec",
    "compile_layout",
]

_SITE_MERGE_TOLERANCE = 1e-6
_MIN_SITE_SPACING = 1e-6


@dataclass(frozen=True)
class WaveguideSpec:
    """A directed waveguide polyline of a router layout.

    ``start_port``/``end_port`` name the external router port the guide
    starts from / ends at; ``None`` means the guide begins blind or ends in
    an absorbing terminator.
    """

    name: str
    points: Tuple[Point, ...]
    start_port: Optional[str] = None
    end_port: Optional[str] = None


@dataclass(frozen=True)
class RingSpec:
    """A microring coupling ``guide_a`` (input/through) to ``guide_b`` (drop).

    For a crossing PSE the location is the geometric intersection of the two
    guides (pass ``at`` to disambiguate when they cross more than once).
    For a parallel PSE there is no intersection, so explicit arclength
    positions on both guides are required.
    """

    name: str
    guide_a: str
    guide_b: str
    kind: ElementKind = ElementKind.CPSE
    at: Optional[Point] = None
    pos_a: Optional[float] = None
    pos_b: Optional[float] = None


@dataclass(frozen=True)
class RouterLayout:
    """A complete router drawing, ready to be compiled."""

    name: str
    waveguides: Tuple[WaveguideSpec, ...]
    rings: Tuple[RingSpec, ...] = ()
    unit_cm: float = 0.004  # one grid unit = 40 um by default


@dataclass(frozen=True)
class LocalElement:
    """One compiled netlist element, local to a router."""

    index: int
    kind: ElementKind
    label: str
    length_cm: float = 0.0
    location: Optional[Point] = None


@dataclass(frozen=True)
class LocalTraversal:
    """One step of a port-to-port connection through a router."""

    element: int
    in_port: int
    out_port: int
    state: TraversalState


class RouterSpec:
    """A compiled router netlist with precomputed port-to-port connections."""

    def __init__(
        self,
        name: str,
        elements: Sequence[LocalElement],
        wiring: Mapping[Tuple[int, int], Tuple[int, int]],
        inputs: Mapping[str, Tuple[int, int]],
        outputs: Mapping[Tuple[int, int], str],
        params: PhysicalParameters,
    ) -> None:
        self.name = name
        self.elements: Tuple[LocalElement, ...] = tuple(elements)
        self.wiring: Dict[Tuple[int, int], Tuple[int, int]] = dict(wiring)
        self.inputs: Dict[str, Tuple[int, int]] = dict(inputs)
        self.outputs: Dict[Tuple[int, int], str] = dict(outputs)
        self.params = params
        self._connections: Dict[Tuple[str, str], Tuple[LocalTraversal, ...]] = {}
        self._compute_all_connections()

    # -- public queries ------------------------------------------------------

    @property
    def input_ports(self) -> Tuple[str, ...]:
        return tuple(sorted(self.inputs))

    @property
    def output_ports(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.outputs.values())))

    @property
    def ring_count(self) -> int:
        """Number of microring resonators (CPSE + PPSE elements)."""
        return sum(
            1
            for e in self.elements
            if e.kind in (ElementKind.CPSE, ElementKind.PPSE)
        )

    @property
    def crossing_count(self) -> int:
        """Number of plain waveguide crossings."""
        return sum(1 for e in self.elements if e.kind is ElementKind.CROSSING)

    def has_connection(self, in_port: str, out_port: str) -> bool:
        return (in_port, out_port) in self._connections

    def connection(self, in_port: str, out_port: str) -> Tuple[LocalTraversal, ...]:
        """The element traversal sequence realizing ``in_port -> out_port``."""
        try:
            return self._connections[(in_port, out_port)]
        except KeyError:
            raise ConfigurationError(
                f"router {self.name!r} has no connection {in_port} -> {out_port}; "
                f"available: {sorted(self._connections)}"
            ) from None

    def connections(self) -> Dict[Tuple[str, str], Tuple[LocalTraversal, ...]]:
        """All reachable (input, output) connections (copy)."""
        return dict(self._connections)

    def connection_loss_db(self, in_port: str, out_port: str) -> float:
        """Total insertion loss of one port-to-port connection."""
        total = 0.0
        for step in self.connection(in_port, out_port):
            element = self.elements[step.element]
            total += traversal_loss_db(
                element.kind, step.in_port, step.out_port, step.state,
                self.params, element.length_cm,
            )
        return total

    # -- connection computation ----------------------------------------------

    def _traversal_options(
        self, element: LocalElement, in_port: int
    ) -> List[Tuple[int, TraversalState, float]]:
        """(out_port, state, loss_db) choices for a signal at ``in_port``."""
        options: List[Tuple[int, TraversalState, float]] = []
        out = straight_output(element.kind, in_port)
        options.append(
            (
                out,
                TraversalState.PASSIVE,
                passive_loss_db(element.kind, in_port, self.params, element.length_cm),
            )
        )
        # Only drop-direction ring turns (A_IN -> B_OUT) are used when
        # deriving connections; add-direction turns exist physically but are
        # not used by router designs.
        if element.kind in (ElementKind.CPSE, ElementKind.PPSE) and in_port == A_IN:
            loss = traversal_loss_db(
                element.kind, A_IN, B_OUT, TraversalState.ON, self.params
            )
            options.append((B_OUT, TraversalState.ON, loss))
        return options

    def _compute_all_connections(self) -> None:
        for port_name in self.inputs:
            self._dijkstra_from(port_name)

    def _dijkstra_from(self, in_port_name: str) -> None:
        start = self.inputs[in_port_name]
        distances: Dict[Tuple[int, int], float] = {start: 0.0}
        previous: Dict[Tuple[int, int], Tuple[Tuple[int, int], LocalTraversal]] = {}
        best_exit: Dict[str, Tuple[float, Tuple[int, int], LocalTraversal]] = {}
        counter = 0
        heap: List[Tuple[float, int, Tuple[int, int]]] = [(0.0, counter, start)]
        visited = set()
        while heap:
            weight, _tick, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            element_index, in_port = node
            element = self.elements[element_index]
            for out_port, state, loss_db in self._traversal_options(element, in_port):
                step = LocalTraversal(element_index, in_port, out_port, state)
                new_weight = weight - loss_db  # losses are <= 0
                exit_key = (element_index, out_port)
                exit_port_name = self.outputs.get(exit_key)
                if exit_port_name is not None:
                    known = best_exit.get(exit_port_name)
                    if known is None or new_weight < known[0]:
                        best_exit[exit_port_name] = (new_weight, node, step)
                    continue
                follow = self.wiring.get(exit_key)
                if follow is None:
                    continue  # absorbing terminator
                if follow not in distances or new_weight < distances[follow]:
                    distances[follow] = new_weight
                    previous[follow] = (node, step)
                    counter += 1
                    heapq.heappush(heap, (new_weight, counter, follow))
        for out_port_name, (_weight, last_node, last_step) in best_exit.items():
            traversals = [last_step]
            node = last_node
            while node in previous:
                node, step = previous[node]
                traversals.append(step)
            traversals.reverse()
            self._connections[(in_port_name, out_port_name)] = tuple(traversals)


# ---------------------------------------------------------------------------
# Layout compilation
# ---------------------------------------------------------------------------


@dataclass
class _Site:
    """An element instance pinned onto one or two guides during compilation."""

    kind: ElementKind
    label: str
    location: Optional[Point]
    index: int = -1  # assigned when materialized


def compile_layout(layout: RouterLayout, params: PhysicalParameters) -> RouterSpec:
    """Compile a router drawing into a :class:`RouterSpec` netlist."""
    _validate_layout(layout)
    polylines = {w.name: Polyline(w.points) for w in layout.waveguides}
    order = {w.name: i for i, w in enumerate(layout.waveguides)}

    # guide name -> list of (arclength, site, 'A'|'B')
    guide_sites: Dict[str, List[Tuple[float, _Site, str]]] = {
        w.name: [] for w in layout.waveguides
    }

    matched_rings = _place_rings(layout, polylines, guide_sites)
    _place_plain_crossings(layout, polylines, guide_sites, matched_rings)
    _validate_sites(layout, polylines, guide_sites)

    elements: List[LocalElement] = []
    wiring: Dict[Tuple[int, int], Tuple[int, int]] = {}
    inputs: Dict[str, Tuple[int, int]] = {}
    outputs: Dict[Tuple[int, int], str] = {}

    def materialize(site: _Site, length_cm: float = 0.0) -> int:
        if site.index >= 0:
            return site.index
        index = len(elements)
        elements.append(
            LocalElement(index, site.kind, site.label, length_cm, site.location)
        )
        site.index = index
        return index

    for guide in layout.waveguides:
        polyline = polylines[guide.name]
        sites = sorted(guide_sites[guide.name], key=lambda item: item[0])
        # Chain: [start] wg0 site1 wg1 site2 ... wgN [end]
        previous_exit: Optional[Tuple[int, int]] = None
        position = 0.0
        for arclength, site, role in sites:
            segment_length_cm = (arclength - position) * layout.unit_cm
            wg_site = _Site(
                ElementKind.WAVEGUIDE,
                f"{layout.name}.{guide.name}.wg@{position:.3f}",
                None,
            )
            wg_index = materialize(wg_site, segment_length_cm)
            _wire_segment(
                wiring, inputs, previous_exit, (wg_index, A_IN),
                guide, is_first=position == 0.0,
            )
            previous_exit = (wg_index, A_OUT)
            site_index = materialize(site)
            in_port = A_IN if role == "A" else B_IN
            out_port = A_OUT if role == "A" else B_OUT
            wiring[previous_exit] = (site_index, in_port)
            previous_exit = (site_index, out_port)
            position = arclength
        # trailing waveguide to the guide end
        tail_length_cm = (polyline.length - position) * layout.unit_cm
        wg_site = _Site(
            ElementKind.WAVEGUIDE,
            f"{layout.name}.{guide.name}.wg@{position:.3f}",
            None,
        )
        wg_index = materialize(wg_site, tail_length_cm)
        _wire_segment(
            wiring, inputs, previous_exit, (wg_index, A_IN),
            guide, is_first=position == 0.0,
        )
        if guide.end_port is not None:
            outputs[(wg_index, A_OUT)] = guide.end_port
        # else: absorbing terminator -> no wiring entry

    return RouterSpec(layout.name, elements, wiring, inputs, outputs, params)


def _wire_segment(
    wiring: Dict[Tuple[int, int], Tuple[int, int]],
    inputs: Dict[str, Tuple[int, int]],
    previous_exit: Optional[Tuple[int, int]],
    target: Tuple[int, int],
    guide: WaveguideSpec,
    is_first: bool,
) -> None:
    if previous_exit is not None:
        wiring[previous_exit] = target
    elif is_first and guide.start_port is not None:
        inputs[guide.start_port] = target
    # else: blind guide start; the stretch is only reachable via a ring.


def _validate_layout(layout: RouterLayout) -> None:
    if layout.unit_cm <= 0:
        raise LayoutError(f"unit_cm must be positive, got {layout.unit_cm}")
    names = [w.name for w in layout.waveguides]
    if len(set(names)) != len(names):
        raise LayoutError(f"duplicate waveguide names in layout {layout.name!r}")
    in_ports = [w.start_port for w in layout.waveguides if w.start_port]
    out_ports = [w.end_port for w in layout.waveguides if w.end_port]
    if len(set(in_ports)) != len(in_ports):
        raise LayoutError(f"duplicate input port names in layout {layout.name!r}")
    if len(set(out_ports)) != len(out_ports):
        raise LayoutError(f"duplicate output port names in layout {layout.name!r}")
    ring_names = [r.name for r in layout.rings]
    if len(set(ring_names)) != len(ring_names):
        raise LayoutError(f"duplicate ring names in layout {layout.name!r}")
    known = set(names)
    for ring in layout.rings:
        for guide_name in (ring.guide_a, ring.guide_b):
            if guide_name not in known:
                raise LayoutError(
                    f"ring {ring.name!r} references unknown waveguide {guide_name!r}"
                )
        if ring.guide_a == ring.guide_b:
            raise LayoutError(f"ring {ring.name!r} must couple two distinct guides")
        if ring.kind not in (ElementKind.CPSE, ElementKind.PPSE):
            raise LayoutError(f"ring {ring.name!r} must be a CPSE or a PPSE")
        if ring.kind is ElementKind.PPSE and (ring.pos_a is None or ring.pos_b is None):
            raise LayoutError(
                f"parallel PSE {ring.name!r} needs explicit pos_a and pos_b"
            )


def _place_rings(
    layout: RouterLayout,
    polylines: Dict[str, Polyline],
    guide_sites: Dict[str, List[Tuple[float, _Site, str]]],
) -> Dict[Tuple[str, str], List[Point]]:
    """Place declared rings; return consumed intersection points per pair."""
    consumed: Dict[Tuple[str, str], List[Point]] = {}
    for ring in layout.rings:
        site = _Site(ring.kind, f"{layout.name}.{ring.name}", ring.at)
        if ring.kind is ElementKind.PPSE:
            guide_sites[ring.guide_a].append((float(ring.pos_a), site, "A"))
            guide_sites[ring.guide_b].append((float(ring.pos_b), site, "B"))
            continue
        hits = polylines[ring.guide_a].intersections_with(polylines[ring.guide_b])
        if not hits:
            raise LayoutError(
                f"ring {ring.name!r}: guides {ring.guide_a!r} and "
                f"{ring.guide_b!r} do not cross"
            )
        if ring.at is not None:
            hits = [h for h in hits if h.is_close(ring.at, tolerance=1e-6)]
            if not hits:
                raise LayoutError(
                    f"ring {ring.name!r}: no crossing at {ring.at}"
                )
        if len(hits) > 1:
            raise LayoutError(
                f"ring {ring.name!r}: guides cross {len(hits)} times; "
                "disambiguate with RingSpec.at"
            )
        location = hits[0]
        site.location = location
        pair = _ordered_pair(ring.guide_a, ring.guide_b)
        consumed.setdefault(pair, []).append(location)
        guide_sites[ring.guide_a].append(
            (polylines[ring.guide_a].arclength_of(location), site, "A")
        )
        guide_sites[ring.guide_b].append(
            (polylines[ring.guide_b].arclength_of(location), site, "B")
        )
    return consumed


def _place_plain_crossings(
    layout: RouterLayout,
    polylines: Dict[str, Polyline],
    guide_sites: Dict[str, List[Tuple[float, _Site, str]]],
    consumed: Dict[Tuple[str, str], List[Point]],
) -> None:
    names = [w.name for w in layout.waveguides]
    crossing_counter = 0
    for i, name_a in enumerate(names):
        for name_b in names[i + 1 :]:
            hits = polylines[name_a].intersections_with(polylines[name_b])
            taken = consumed.get(_ordered_pair(name_a, name_b), [])
            for hit in hits:
                if any(hit.is_close(t, tolerance=1e-6) for t in taken):
                    continue
                site = _Site(
                    ElementKind.CROSSING,
                    f"{layout.name}.x{crossing_counter}:{name_a}*{name_b}",
                    hit,
                )
                crossing_counter += 1
                guide_sites[name_a].append(
                    (polylines[name_a].arclength_of(hit), site, "A")
                )
                guide_sites[name_b].append(
                    (polylines[name_b].arclength_of(hit), site, "B")
                )


def _validate_sites(
    layout: RouterLayout,
    polylines: Dict[str, Polyline],
    guide_sites: Dict[str, List[Tuple[float, _Site, str]]],
) -> None:
    for guide in layout.waveguides:
        polyline = polylines[guide.name]
        sites = sorted(guide_sites[guide.name], key=lambda item: item[0])
        previous = None
        for arclength, site, _role in sites:
            if arclength < _MIN_SITE_SPACING or arclength > polyline.length - _MIN_SITE_SPACING:
                raise LayoutError(
                    f"element {site.label!r} sits at the end of guide "
                    f"{guide.name!r}; extend the guide past it"
                )
            if previous is not None and arclength - previous < _MIN_SITE_SPACING:
                raise LayoutError(
                    f"two elements coincide on guide {guide.name!r} at "
                    f"arclength {arclength:.6f}"
                )
            previous = arclength


def _ordered_pair(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)
