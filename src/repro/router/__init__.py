"""Optical router microarchitectures and the layout compiler.

Routers are described as waveguide drawings (:mod:`repro.router.layout`)
and compiled into netlists whose port-to-port connections, insertion losses
and crosstalk interactions are derived automatically. Built-ins: Crux
(the router of the paper's experiments), a full 5x5 crossbar, and a
DOR-optimized reduced crossbar.
"""

from repro.router.crossbar import (
    XY_TURNS,
    build_crossbar,
    build_reduced_crossbar,
    crossbar_layout,
    reduced_crossbar_layout,
)
from repro.router.crux import CRUX_CONNECTIONS, build_crux, crux_layout
from repro.router.geometry import Point, Polyline, segment_intersection
from repro.router.layout import (
    LocalElement,
    LocalTraversal,
    RingSpec,
    RouterLayout,
    RouterSpec,
    WaveguideSpec,
    compile_layout,
)
from repro.router.registry import (
    RouterFactory,
    available_routers,
    build_router,
    register_router,
)

__all__ = [
    "XY_TURNS",
    "build_crossbar",
    "build_reduced_crossbar",
    "crossbar_layout",
    "reduced_crossbar_layout",
    "CRUX_CONNECTIONS",
    "build_crux",
    "crux_layout",
    "Point",
    "Polyline",
    "segment_intersection",
    "LocalElement",
    "LocalTraversal",
    "RingSpec",
    "RouterLayout",
    "RouterSpec",
    "WaveguideSpec",
    "compile_layout",
    "RouterFactory",
    "available_routers",
    "build_router",
    "register_router",
]
