"""Router registry: optical router microarchitectures by name.

Mirrors the paper's plug-in philosophy: a router is a factory taking the
physical parameters and returning a compiled :class:`RouterSpec`; new
microarchitectures register here without touching the tool core.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError
from repro.photonics.parameters import PhysicalParameters
from repro.router.crossbar import build_crossbar, build_reduced_crossbar
from repro.router.crux import build_crux
from repro.router.layout import RouterSpec

__all__ = [
    "RouterFactory",
    "register_router",
    "build_router",
    "available_routers",
]

RouterFactory = Callable[[PhysicalParameters], RouterSpec]

_REGISTRY: Dict[str, RouterFactory] = {}


def register_router(name: str, factory: RouterFactory, overwrite: bool = False) -> None:
    """Register a router factory under ``name``."""
    if not name:
        raise ConfigurationError("router name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"router {name!r} is already registered; pass overwrite=True to replace"
        )
    _REGISTRY[name] = factory


def build_router(name: str, params: PhysicalParameters) -> RouterSpec:
    """Build a registered router against a physical parameter set."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown router {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(params)


def available_routers() -> Tuple[str, ...]:
    """Names of all registered routers, sorted."""
    return tuple(sorted(_REGISTRY))


register_router("crux", build_crux)
register_router("crossbar", build_crossbar)
register_router("reduced_crossbar", build_reduced_crossbar)
