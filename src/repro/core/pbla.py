"""Randomized Priority-Based List Algorithm (R-PBLA) — paper §II-D.2.

The paper's purpose-built heuristic: "the priority-based list approach
tries, at each step, to make the best move as possible within a list of
admitted moves, i.e. the moves consisting on swapping the tasks mapped onto
two different tiles. The list is ordered according to the worst-case power
loss or SNR associated with any potential move. The algorithm does not
allow uphill moves ... when the algorithm finds a local minimum, it records
the solution and generates another random starting point."

Implementation notes:

* the admitted moves are all tile-content swaps: two mapped tasks exchange
  tiles, or one task moves to an empty tile;
* the full move list is evaluated as one batch (the "priority list" is the
  score-ordered batch) and the best strictly improving move is taken —
  steepest descent;
* at a local minimum the incumbent is recorded and the search restarts
  from a fresh random mapping (the "randomized" part), until the
  evaluation budget is exhausted;
* moves are scored through the incremental
  :class:`~repro.core.delta.DeltaEvaluator` by default (identical scores
  and evaluation counts, O(E * affected) per move); ``use_delta=False``
  restores the full batched evaluation;
* the restarts are independent: no state carries across them except the
  incumbent record, so a budget-``B`` run decomposes into ``k`` merged
  runs of budget ``~B/k`` (``chain_decomposable``), which is what
  parallel DSE exploits to spread one run across worker processes;
* with a routed evaluator (``routes > 1``) the admitted moves also
  include the reroute moves of every multi-route CG edge
  (:meth:`~repro.core.evaluator.MappingEvaluator.moves_for`), so the
  descent jointly refines placement and route choice; at ``routes == 1``
  the move list, RNG draws and results are unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.core.delta import delta_engine, incumbent_score, score_neighbourhood
from repro.core.evaluator import MappingEvaluator
from repro.core.moves import Move, apply_move, swap_moves
from repro.core.result import OptimizationResult
from repro.core.strategy import BestTracker, MappingStrategy

__all__ = ["PriorityBasedListAlgorithm", "Move", "swap_moves", "apply_move"]


class PriorityBasedListAlgorithm(MappingStrategy):
    """Steepest-descent over tile swaps with random restarts (R-PBLA)."""

    name = "r-pbla"
    chain_decomposable = True  # restarts share nothing but the incumbent

    def _run(
        self,
        evaluator: MappingEvaluator,
        budget: int,
        rng: np.random.Generator,
    ) -> OptimizationResult:
        tracker = BestTracker(evaluator)
        engine = delta_engine(evaluator, self._use_delta)
        restarts = -1  # the first start is not a restart
        current = None
        current_score = -np.inf
        while evaluator.evaluations < budget:
            if current is None:
                restarts += 1
                current = evaluator.random_vector(rng)
                current_score = incumbent_score(engine, evaluator, current)
                tracker.offer(current, current_score)
                continue
            moves = evaluator.moves_for(current)
            remaining = budget - evaluator.evaluations
            if remaining <= 0:
                break
            if len(moves) > remaining:
                # Not enough budget for a full step: evaluate a random
                # subset so the budget is honoured exactly.
                picks = rng.choice(len(moves), size=remaining, replace=False)
                moves = [moves[int(p)] for p in picks]
            scores = score_neighbourhood(engine, evaluator, current, moves)
            best_index = int(np.argmax(scores))
            if scores[best_index] > current_score:
                current = apply_move(current, moves[best_index])
                if engine is not None:
                    engine.commit(moves[best_index])
                current_score = float(scores[best_index])
                tracker.offer(current, current_score)
            else:
                # Local minimum: record and restart from a random point.
                current = None
        return tracker.result(self.name, restarts=max(restarts, 0))
