"""Randomized Priority-Based List Algorithm (R-PBLA) — paper §II-D.2.

The paper's purpose-built heuristic: "the priority-based list approach
tries, at each step, to make the best move as possible within a list of
admitted moves, i.e. the moves consisting on swapping the tasks mapped onto
two different tiles. The list is ordered according to the worst-case power
loss or SNR associated with any potential move. The algorithm does not
allow uphill moves ... when the algorithm finds a local minimum, it records
the solution and generates another random starting point."

Implementation notes:

* the admitted moves are all tile-content swaps: two mapped tasks exchange
  tiles, or one task moves to an empty tile;
* the full move list is evaluated as one batch (the "priority list" is the
  score-ordered batch) and the best strictly improving move is taken —
  steepest descent;
* at a local minimum the incumbent is recorded and the search restarts
  from a fresh random mapping (the "randomized" part), until the
  evaluation budget is exhausted.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.core.mapping import random_assignment
from repro.core.result import OptimizationResult
from repro.core.strategy import BestTracker, MappingStrategy

__all__ = ["PriorityBasedListAlgorithm", "swap_moves", "apply_move"]

Move = Tuple[int, int, int]  # (task, new tile, other task or -1)


def swap_moves(assignment: np.ndarray, n_tiles: int) -> List[Move]:
    """All admitted moves from an assignment.

    Returns (task, target_tile, other_task) triples; ``other_task`` is -1
    when the target tile is empty (a relocation) and the partner task index
    otherwise (a swap).
    """
    n_tasks = len(assignment)
    occupied = {int(tile): task for task, tile in enumerate(assignment)}
    empty_tiles = [t for t in range(n_tiles) if t not in occupied]
    moves: List[Move] = []
    for task in range(n_tasks):
        for tile in empty_tiles:
            moves.append((task, tile, -1))
    for task_a in range(n_tasks):
        for task_b in range(task_a + 1, n_tasks):
            moves.append((task_a, int(assignment[task_b]), task_b))
    return moves


def apply_move(assignment: np.ndarray, move: Move) -> np.ndarray:
    """A copy of ``assignment`` with one move applied."""
    task, tile, other = move
    result = assignment.copy()
    if other >= 0:
        result[other] = assignment[task]
    result[task] = tile
    return result


class PriorityBasedListAlgorithm(MappingStrategy):
    """Steepest-descent over tile swaps with random restarts (R-PBLA)."""

    name = "r-pbla"

    def _run(
        self,
        evaluator: MappingEvaluator,
        budget: int,
        rng: np.random.Generator,
    ) -> OptimizationResult:
        tracker = BestTracker(evaluator)
        restarts = -1  # the first start is not a restart
        current = None
        current_score = -np.inf
        while evaluator.evaluations < budget:
            if current is None:
                restarts += 1
                current = random_assignment(
                    evaluator.n_tasks, evaluator.n_tiles, rng
                )
                current_score = float(
                    evaluator.evaluate_batch(current[None, :]).score[0]
                )
                tracker.offer(current, current_score)
                continue
            moves = swap_moves(current, evaluator.n_tiles)
            remaining = budget - evaluator.evaluations
            if remaining <= 0:
                break
            if len(moves) > remaining:
                # Not enough budget for a full step: evaluate a random
                # subset so the budget is honoured exactly.
                picks = rng.choice(len(moves), size=remaining, replace=False)
                moves = [moves[int(p)] for p in picks]
            candidates = np.stack([apply_move(current, m) for m in moves])
            scores = evaluator.evaluate_batch(candidates).score
            best_index = int(np.argmax(scores))
            if scores[best_index] > current_score:
                current = candidates[best_index]
                current_score = float(scores[best_index])
                tracker.offer(current, current_score)
            else:
                # Local minimum: record and restart from a random point.
                current = None
        return tracker.result(self.name, restarts=max(restarts, 0))
