"""Persistent, reusable executor backends for parallel evaluation and DSE.

PR 2 introduced multi-process design-space exploration, but every
``compare()`` call and every chain-decomposed ``run()`` built — and tore
down — its own :class:`~concurrent.futures.ProcessPoolExecutor`. That is
cheap under Linux ``fork`` but repays caching under ``spawn`` /
``forkserver`` start methods (each worker re-imports numpy, ~1 s) and in
many-cell sweeps such as ``reproduce_table2`` (32 problem instances, each
formerly paying two pool builds).

This module owns the executors instead:

* :func:`get_pool` returns a lazily created
  :class:`~repro.core.executor.ExecutorBackend` keyed on
  ``(communication graph, network signature, coupling dtype, backend,
  n_workers, executor spec)`` — everything the worker-side evaluator
  depends on *except* the objective. Workers cache one evaluator per
  objective (see :func:`repro.core.parallel.worker_evaluator`), so the
  two objective passes of a Table II cell reuse one warm pool. The
  executor spec (``"local"`` / ``"inline"`` / ``"tcp://HOST:PORT"``)
  selects the implementation; ``"local"`` keeps the historical
  :class:`PersistentPool` behaviour.
* A small LRU (:data:`MAX_POOLS`) bounds the number of live pools;
  evicted pools are shut down deterministically.
* :func:`shutdown_pools` tears everything down; it is registered with
  :mod:`atexit` the first time a pool is created, *after* the coupling
  model's shared-memory export hook, so at interpreter exit the workers
  terminate before the segments they attach are unlinked and the
  resource tracker never sees a leaked segment.
* :func:`executor_stats` snapshots every live backend's
  :meth:`~repro.core.executor.ExecutorBackend.info` — the service
  ``stats`` endpoint's executor section.

Determinism
-----------
Pools never change results: every entry point that uses them
(:meth:`repro.core.evaluator.MappingEvaluator.evaluate_batch` sharding,
:meth:`repro.core.dse.DesignSpaceExplorer.compare` / ``run``) is
bit-identical to its sequential path for any ``n_workers`` and any
executor backend; the pool only decides *where* the arithmetic runs.
"""

from __future__ import annotations

import atexit
import hashlib
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Tuple

import numpy as np

from repro.core.executor import (
    ExecutorBackend,
    InlineBackend,
    LocalProcessBackend,
    _ProcessBackendBase,
    parse_executor_spec,
)
from repro.core.problem import MappingProblem

__all__ = [
    "MAX_POOLS",
    "BuildPool",
    "PersistentPool",
    "executor_stats",
    "get_build_pool",
    "get_pool",
    "pool_key",
    "release_pools",
    "shutdown_pools",
]

#: Maximum number of live pools; the least recently used one is shut down
#: when the cap is hit. Each pool holds ``n_workers`` idle processes, so
#: the cap bounds resident worker count during many-problem sweeps.
MAX_POOLS = 3

#: key -> pool, in least-recently-used-first order.
_POOLS: "OrderedDict[Tuple, ExecutorBackend]" = OrderedDict()

#: Guards the registry: the ``serve`` daemon hits :func:`get_pool` /
#: :func:`release_pools` from concurrent request-handler and coalescer
#: threads, and an OrderedDict mutated during eviction is not
#: thread-safe on its own. Reentrant because eviction closes pools
#: while the lock is held.
_LOCK = threading.RLock()

_ATEXIT_REGISTERED = False

#: First element of every :class:`BuildPool` key; problem-pool keys
#: start with a CG content hash, which can never collide with this.
_BUILD_POOL_TAG = "model-build"

#: The historical name of the local process backend (PR 3–6 API).
PersistentPool = LocalProcessBackend


def _cg_fingerprint(problem: MappingProblem) -> str:
    """Content hash of the communication graph a pool's workers serve.

    Two :class:`~repro.appgraph.graph.CommunicationGraph` instances with
    the same tasks, edges and bandwidths are interchangeable for pool
    purposes even when they are distinct objects (e.g. re-loaded
    benchmarks), so the key hashes content, not identity.
    """
    cg = problem.cg
    digest = hashlib.sha1()
    digest.update(cg.name.encode())
    digest.update("\x00".join(cg.tasks).encode())
    digest.update(np.ascontiguousarray(cg.edge_array()).tobytes())
    digest.update(np.ascontiguousarray(cg.bandwidth_array()).tobytes())
    return digest.hexdigest()


def _network_key(problem: MappingProblem) -> str:
    """The network component of a pool key.

    Joint mapping x routing problems (``routes > 1``) append the route
    count: their workers hold the widened routed coupling model, so a
    routed pool must never serve (or be served by) a mapping-only one.
    Single-route keys are byte-identical to the historical layout.
    """
    signature = problem.network.signature
    if problem.routes > 1:
        signature += f"|routes={problem.routes}"
    return signature


def pool_key(
    problem: MappingProblem,
    dtype,
    n_workers: int,
    backend: str = "dense",
    executor: str = "local",
) -> Tuple:
    """The cache key of the pool serving ``problem`` at ``dtype``.

    Parameters
    ----------
    problem : MappingProblem
        The problem whose CG and network the workers must hold. The
        objective is deliberately **excluded**: workers evaluate any
        objective on demand, so objective flips reuse the warm pool.
    dtype : numpy dtype-like
        Coupling-matrix dtype of the evaluators the workers build.
    n_workers : int
        Pool size; pools of different sizes never alias.
    backend : str, optional
        Resolved contraction backend of the worker evaluators
        (``"dense"`` or ``"sparse"``, never ``"auto"`` — callers resolve
        first so worker results are bit-identical to the parent's).
        Pools of different backends never alias: their workers attach
        different shared-memory layouts.
    executor : str, optional
        Executor spec (``"local"`` / ``"inline"`` / ``"tcp://…"``,
        see :func:`repro.core.executor.parse_executor_spec`). Appended
        as the *last* key component, so the objective-free prefix
        ``key[:5]`` the service coalescer groups on — and every
        key-index filter of :func:`release_pools` — keeps its shape.

    Returns
    -------
    tuple
        Hashable key for :data:`_POOLS`.

    Notes
    -----
    The problem's **variation fingerprint** (empty string when no
    variation plan is attached) sits at index 4: it is objective-free in
    the same sense as the rest of the key — workers score any objective
    from the metric tables — but it decides *which* tables the workers
    produce (the robust column exists only under a variation plan), so
    pools and coalesced flights must never mix plans.
    """
    return (
        _cg_fingerprint(problem),
        _network_key(problem),
        np.dtype(dtype).name,
        str(backend),
        problem.variation_fingerprint,
        int(n_workers),
        parse_executor_spec(executor),
    )


class BuildPool(_ProcessBackendBase):
    """A problem-free executor for CouplingModel column-build tasks.

    Unlike :class:`PersistentPool` the workers carry no initializer
    state: each build task ships the (small, flat-array) build tables of
    its network plus a column range (see
    :func:`repro.models.coupling._build_columns_task`), so one pool
    serves the model builds of any number of architectures in a sweep.
    Registered in the same LRU/atexit registry as the problem pools, and
    always local — model builds never dispatch remotely.

    Not instantiated directly; use :func:`get_build_pool`.
    """

    kind = "build"

    def __init__(self, key: Tuple, n_workers: int):
        super().__init__(key, n_workers)
        self._executor = ProcessPoolExecutor(max_workers=self.n_workers)

    def __repr__(self) -> str:
        state = "closed" if self._executor is None else f"{self.n_workers} workers"
        return f"BuildPool({state})"


def _register_pool(key: Tuple, pool) -> None:
    """Insert a pool into the LRU registry, evicting and hooking atexit.

    Callers hold :data:`_LOCK` (reentrant, so the nested acquisition is
    free); eviction closes with ``wait=True`` under the lock, which is
    safe because a closing pool never re-enters the registry.
    """
    global _ATEXIT_REGISTERED
    with _LOCK:
        _POOLS[key] = pool
        while len(_POOLS) > MAX_POOLS:
            _, evicted = _POOLS.popitem(last=False)
            evicted.close(wait=True)
        if not _ATEXIT_REGISTERED:
            # Registered after CouplingModel's export-unlink hook, so LIFO
            # atexit order shuts workers down before segments are unlinked.
            atexit.register(shutdown_pools)
            _ATEXIT_REGISTERED = True


def _build_backend(
    key: Tuple,
    problem: MappingProblem,
    dtype,
    n_workers: int,
    backend: str,
    model_cache_dir: Optional[str],
    executor: str,
) -> ExecutorBackend:
    """Instantiate the backend class an executor spec names."""
    if executor == "inline":
        return InlineBackend(
            key, problem, dtype, n_workers, backend, model_cache_dir
        )
    if executor.startswith("tcp://"):
        from repro.distributed.scheduler import RemoteTcpBackend

        return RemoteTcpBackend(
            key, problem, dtype, n_workers, backend, model_cache_dir, executor
        )
    return LocalProcessBackend(
        key, problem, dtype, n_workers, backend, model_cache_dir
    )


def get_pool(
    problem: MappingProblem,
    dtype,
    n_workers: int,
    backend: str = "dense",
    model_cache_dir: Optional[str] = None,
    executor: str = "local",
) -> ExecutorBackend:
    """Fetch (or lazily create) the persistent executor for a problem.

    Parameters
    ----------
    problem : MappingProblem
        Problem the workers should serve; only its CG and network enter
        the key (see :func:`pool_key`).
    dtype : numpy dtype-like
        Coupling-matrix dtype of the worker evaluators.
    n_workers : int
        Logical worker count; must be >= 1. For the local backend this
        is the pool's process count; for remote backends it stays the
        shard/chain decomposition knob (the determinism contract's
        ``n_workers``) while the number of *connected* workers only
        affects placement.
    backend : str, optional
        Resolved contraction backend for the worker evaluators
        (``"dense"`` or ``"sparse"``); decides which shared-memory
        flavour local workers attach.
    model_cache_dir : str, optional
        On-disk model cache directory handed to the worker initializer
        (so spawn-mode workers without shared memory load the coupling
        model from disk instead of rebuilding it). Not part of the pool
        key — it cannot change any result.
    executor : str, optional
        Executor spec selecting the backend implementation (default
        ``"local"``; see :func:`repro.core.executor.parse_executor_spec`).

    Returns
    -------
    ExecutorBackend
        A warm backend, freshly created only on the first call for this
        key (or after the previous one broke / was evicted).

    Notes
    -----
    At most :data:`MAX_POOLS` pools stay alive; the least recently used
    one is shut down (``wait=True``) to make room. All remaining pools
    are shut down at interpreter exit, before the shared-memory segments
    they attach are unlinked.
    """
    executor = parse_executor_spec(executor)
    key = pool_key(problem, dtype, n_workers, backend, executor)
    with _LOCK:
        pool = _POOLS.get(key)
        if pool is not None:
            if not pool.broken:
                _POOLS.move_to_end(key)
                return pool
            _POOLS.pop(key, None)
            # wait=True: a dying worker must be reaped before its
            # replacement attaches the same shared-memory segments — a
            # straggler outliving the registry entry could otherwise
            # hold attachments past the exporter's unlink.
            pool.close(wait=True)
        pool = _build_backend(
            key, problem, dtype, n_workers, backend, model_cache_dir, executor
        )
        _register_pool(key, pool)
        return pool


def get_build_pool(n_workers: int) -> BuildPool:
    """Fetch (or lazily create) the model-build pool of ``n_workers``.

    Serves the aggressor-sharded parallel builds of
    :class:`~repro.models.coupling.CouplingModel`; lives in the same
    LRU/atexit registry as the problem pools, under a key no problem
    pool can collide with.
    """
    key = (_BUILD_POOL_TAG, int(n_workers))
    with _LOCK:
        pool = _POOLS.get(key)
        if pool is not None:
            if not pool.broken:
                _POOLS.move_to_end(key)
                return pool
            _POOLS.pop(key, None)
            pool.close(wait=True)  # see get_pool: reap before replacing
        pool = BuildPool(key, n_workers)
        _register_pool(key, pool)
        return pool


def release_pools(
    problem: Optional[MappingProblem] = None,
    dtype=None,
    backend: Optional[str] = None,
    include_build_pools: bool = False,
) -> int:
    """Shut down pools matching the given filters (all pools when none).

    A resident daemon uses this to evict one tenant's warm state without
    killing unrelated pools: every component of the pool key can be
    filtered on, and the problem-free :class:`BuildPool` — otherwise
    only reachable through :func:`shutdown_pools` — is released on
    request too.

    Parameters
    ----------
    problem : MappingProblem, optional
        When given, only pools whose key matches this problem's CG and
        network are closed; pools for other problems stay warm.
    dtype : numpy dtype-like, optional
        Restrict the match to pools of this coupling dtype.
    backend : str, optional
        Restrict the match to pools of this resolved contraction
        backend (``"dense"`` or ``"sparse"`` — backend is part of the
        pool key, so mixed-backend tenants can be evicted selectively).
    include_build_pools : bool, optional
        Also close the model-build pools (default False: build pools
        are problem-free and shared, so targeted releases leave them
        warm). With no other filter set, everything — build pools
        included — is released regardless, preserving the historical
        ``release_pools()`` contract.

    Returns
    -------
    int
        Number of pools shut down.
    """
    unfiltered = problem is None and dtype is None and backend is None
    fingerprint = signature = None
    if problem is not None:
        fingerprint = _cg_fingerprint(problem)
        signature = _network_key(problem)
    dtype_name = None if dtype is None else np.dtype(dtype).name
    backend_name = None if backend is None else str(backend)
    with _LOCK:
        victims = []
        for key in _POOLS:
            if key[0] == _BUILD_POOL_TAG:
                if include_build_pools or unfiltered:
                    victims.append(key)
                continue
            if fingerprint is not None and (
                key[0] != fingerprint or key[1] != signature
            ):
                continue
            if dtype_name is not None and key[2] != dtype_name:
                continue
            if backend_name is not None and key[3] != backend_name:
                continue
            victims.append(key)
        pools = [_POOLS.pop(key) for key in victims]
    for pool in pools:
        pool.close(wait=True)
    return len(pools)


def shutdown_pools() -> None:
    """Deterministically shut down every live pool (idempotent).

    Called automatically at interpreter exit; call it explicitly (or use
    ``DesignSpaceExplorer.close()`` / ``MappingEvaluator.close()``) to
    reclaim the worker processes earlier, e.g. between pytest sessions.
    """
    while True:
        with _LOCK:
            if not _POOLS:
                return
            _, pool = _POOLS.popitem(last=False)
        pool.close(wait=True)


def executor_stats() -> dict:
    """Observability snapshot of every live executor backend.

    One :meth:`~repro.core.executor.ExecutorBackend.info` dict per
    registered backend plus cross-backend totals — the executor section
    of the service ``stats`` endpoint. Registry stand-ins without an
    ``info`` method (tests plant fakes) are skipped.
    """
    with _LOCK:
        pools = list(_POOLS.values())
    backends = []
    totals = {
        "tasks_dispatched": 0,
        "tasks_retried": 0,
        "tasks_degraded": 0,
        "workers": 0,
        "degraded": False,
    }
    for pool in pools:
        info_method = getattr(pool, "info", None)
        if info_method is None:
            continue
        info = info_method()
        backends.append(info)
        totals["tasks_dispatched"] += info.get("tasks_dispatched", 0)
        totals["tasks_retried"] += info.get("tasks_retried", 0)
        totals["tasks_degraded"] += info.get("tasks_degraded", 0)
        totals["workers"] += info.get("workers_connected", info.get("n_workers", 0))
        if info.get("degraded"):
            totals["degraded"] = True
    return {"backends": backends, "totals": totals}
