"""Strategy base class and shared optimizer utilities (paper §II-D.2).

"PhoNoCMap is designed to allow users to choose between a number of mapping
optimization algorithms, or extend the library themselves with other
algorithms" — a strategy is a class with a ``name``, hyperparameters set in
``__init__``, and an :meth:`MappingStrategy.optimize` method driven purely
by the evaluator and an evaluation budget. New strategies plug in through
:mod:`repro.core.registry`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.core.mapping import Mapping
from repro.core.result import OptimizationResult
from repro.errors import OptimizationError

__all__ = ["MappingStrategy", "BestTracker"]


class BestTracker:
    """Tracks the incumbent solution and the convergence history."""

    def __init__(self, evaluator: MappingEvaluator):
        self._evaluator = evaluator
        self.best_assignment: Optional[np.ndarray] = None
        self.best_score = -np.inf
        self.history = []

    def offer(self, assignment: np.ndarray, score: float) -> bool:
        """Submit a candidate; returns True when it becomes the incumbent."""
        if score > self.best_score:
            self.best_score = float(score)
            self.best_assignment = np.array(assignment, dtype=np.int64)
            self.history.append((self._evaluator.evaluations, self.best_score))
            return True
        return False

    def offer_batch(self, assignments: np.ndarray, scores: np.ndarray) -> bool:
        """Submit a batch; returns True when the incumbent improved."""
        index = int(np.argmax(scores))
        return self.offer(assignments[index], float(scores[index]))

    def result(self, strategy_name: str, restarts: int = 0) -> OptimizationResult:
        """Package the incumbent into an :class:`OptimizationResult`."""
        if self.best_assignment is None:
            raise OptimizationError(
                f"{strategy_name}: no candidate was ever evaluated"
            )
        evaluator = self._evaluator
        vector = self.best_assignment
        mapping = Mapping(
            evaluator.cg, vector[: evaluator.n_tasks], evaluator.n_tiles
        )
        if len(vector) > evaluator.n_tasks:
            # Joint search: the tail of the vector is the route genes; the
            # metrics must be re-scored under them, not the base routes.
            metrics = evaluator.evaluate(vector)
            route_genes = vector[evaluator.n_tasks :].copy()
        else:
            metrics = evaluator.evaluate(mapping)
            route_genes = None
        evaluator.evaluations -= 1  # bookkeeping: re-scoring is not search
        return OptimizationResult(
            strategy=strategy_name,
            best_mapping=mapping,
            best_metrics=metrics,
            evaluations=evaluator.evaluations,
            history=list(self.history),
            restarts=restarts,
            route_genes=route_genes,
        )


class MappingStrategy:
    """Base class for mapping optimization strategies."""

    #: Registry name; subclasses must override.
    name = "abstract"

    #: Whether local-search strategies may score neighbourhoods through the
    #: incremental :class:`~repro.core.delta.DeltaEvaluator` instead of the
    #: full ``evaluate_batch`` path. Population strategies (RS, GA) have no
    #: incumbent-relative moves and ignore the flag. Evaluation counts are
    #: identical either way, so budget comparisons stay fair.
    _use_delta = True

    #: Whether a budget-``B`` run of this strategy is equivalent to ``k``
    #: independent runs of budget ``~B/k`` whose results are merged —
    #: true for multi-start searches whose state does not span restarts
    #: (R-PBLA's random restarts, independent SA chains), false when one
    #: stateful trajectory or population consumes the whole budget (GA,
    #: tabu). Parallel DSE (``DesignSpaceExplorer.run(n_workers=k)``)
    #: only fans out strategies that set this; the rest run sequentially.
    chain_decomposable = False

    #: Smallest per-chain budget under which one chain still spends no
    #: more than its budget (SA's temperature calibration needs 2
    #: evaluations, for example). Chain decomposition never splits a
    #: budget below this floor, so merged evaluation counts stay within
    #: the requested budget and comparisons stay fair.
    min_chain_budget = 1

    #: Whether this strategy scores large candidate batches that are
    #: worth sharding across the persistent worker pool — true for the
    #: population strategies (RS, GA), whose ``evaluate_batch`` calls
    #: span thousands of rows; false for local searches, whose small
    #: neighbourhood batches would be dominated by IPC overhead.
    #: ``DesignSpaceExplorer.run(n_workers=k)`` sets the evaluator's
    #: shard width only for strategies that set this; results stay
    #: bit-identical either way.
    batch_shardable = False

    def optimize(
        self,
        evaluator: MappingEvaluator,
        budget: int,
        rng: Optional[np.random.Generator] = None,
        use_delta: bool = True,
    ) -> OptimizationResult:
        """Search for the best mapping within ``budget`` evaluations.

        Parameters
        ----------
        evaluator : MappingEvaluator
            The evaluator to score candidates with (and charge the
            budget to). If its ``n_workers`` is above one, batch
            strategies shard their scoring across the persistent worker
            pool — results are bit-identical for any shard width.
        budget : int
            Maximum mapping evaluations to spend; must be >= 1.
        rng : numpy.random.Generator, optional
            Source of all randomness; ``None`` draws fresh OS entropy.
        use_delta : bool, optional
            ``False`` is the escape hatch that forces every candidate
            through the full evaluator (bitwise-reference scoring at
            O(E^2) per candidate).

        Returns
        -------
        OptimizationResult
            Best mapping found, its metrics, the convergence history and
            the exact evaluation spend.

        Notes
        -----
        The delta flag is stashed on the instance for ``_run`` (keeping
        the subclass contract unchanged), so a single strategy instance
        is **not re-entrant** across concurrent ``optimize`` calls —
        parallel DSE uses one instance per worker.
        """
        if budget < 1:
            raise OptimizationError(f"budget must be >= 1, got {budget}")
        rng = rng if rng is not None else np.random.default_rng()
        self._use_delta = bool(use_delta)
        evaluator.reset_count()
        return self._run(evaluator, budget, rng)

    def _run(
        self,
        evaluator: MappingEvaluator,
        budget: int,
        rng: np.random.Generator,
    ) -> OptimizationResult:
        raise NotImplementedError
