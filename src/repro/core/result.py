"""Optimization run results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.evaluator import MappingMetrics
from repro.core.mapping import Mapping

__all__ = ["OptimizationResult"]


@dataclass
class OptimizationResult:
    """Outcome of one optimization-strategy run.

    ``history`` records (evaluations used, best score so far) waypoints, so
    convergence can be plotted and budgets compared across strategies.

    ``route_genes`` is the per-CG-edge route choice of the best design
    vector when the search was joint (``routes > 1``); ``None`` for
    mapping-only runs.
    """

    strategy: str
    best_mapping: Mapping
    best_metrics: MappingMetrics
    evaluations: int
    history: List[Tuple[int, float]] = field(default_factory=list)
    restarts: int = 0
    route_genes: Optional[np.ndarray] = None

    @property
    def best_score(self) -> float:
        """Objective score of the best mapping found."""
        return self.best_metrics.score

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.strategy}: score={self.best_score:.3f} "
            f"(worst SNR {self.best_metrics.worst_snr_db:.2f} dB, "
            f"worst loss {self.best_metrics.worst_insertion_loss_db:.2f} dB) "
            f"after {self.evaluations} evaluations"
        )
