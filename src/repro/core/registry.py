"""Strategy registry: mapping optimization algorithms by name.

The paper ships RS, GA and R-PBLA and invites users to "extend the library
themselves with other algorithms" — new strategies register here and
become available to the explorer, the CLI and the benchmark harnesses
without touching the tool core.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.annealing import SimulatedAnnealing
from repro.core.genetic import GeneticAlgorithm
from repro.core.pbla import PriorityBasedListAlgorithm
from repro.core.random_search import RandomSearch
from repro.core.strategy import MappingStrategy
from repro.core.tabu import TabuSearch
from repro.errors import ConfigurationError

__all__ = [
    "register_strategy",
    "create_strategy",
    "available_strategies",
    "PAPER_STRATEGIES",
]

StrategyFactory = Callable[..., MappingStrategy]

_REGISTRY: Dict[str, StrategyFactory] = {}

#: The three strategies compared in the paper's Table II, in column order.
PAPER_STRATEGIES: Tuple[str, ...] = ("rs", "ga", "r-pbla")


def register_strategy(
    name: str, factory: StrategyFactory, overwrite: bool = False
) -> None:
    """Register a strategy factory (usually the class itself)."""
    if not name:
        raise ConfigurationError("strategy name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"strategy {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[name] = factory


def create_strategy(name: str, **hyperparameters) -> MappingStrategy:
    """Instantiate a registered strategy with hyperparameters."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown strategy {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**hyperparameters)


def available_strategies() -> Tuple[str, ...]:
    """Names of all registered strategies, sorted."""
    return tuple(sorted(_REGISTRY))


register_strategy(RandomSearch.name, RandomSearch)
register_strategy(GeneticAlgorithm.name, GeneticAlgorithm)
register_strategy(PriorityBasedListAlgorithm.name, PriorityBasedListAlgorithm)
register_strategy(SimulatedAnnealing.name, SimulatedAnnealing)
register_strategy(TabuSearch.name, TabuSearch)
