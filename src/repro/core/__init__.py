"""The PhoNoCMap core: problem formulation, evaluation, optimization.

Box (4) of the paper's Fig. 1 — the design space exploration engine: the
mapping problem of §II-D.1, the mapping evaluator computing worst-case
power loss and SNR, and the pluggable optimization strategies (RS, GA and
R-PBLA from the paper, plus simulated annealing and tabu search
extensions).
"""

from repro.core.annealing import SimulatedAnnealing
from repro.core.delta import DeltaEvaluator, delta_engine
from repro.core.dse import DesignSpaceExplorer
from repro.core.evaluator import (
    BatchMetrics,
    EdgeMetrics,
    MappingEvaluator,
    MappingMetrics,
    PendingBatch,
)
from repro.core.genetic import GeneticAlgorithm, pmx_crossover
from repro.core.mapping import Mapping, random_assignment, random_assignment_batch
from repro.core.objectives import (
    SNR_CAP_DB,
    Objective,
    ObjectiveSpec,
    objective_names,
    spec_for,
)
from repro.core.parallel import merge_chain_results, split_budget, spawn_seeds
from repro.core.pbla import PriorityBasedListAlgorithm, apply_move, swap_moves
from repro.core.pool import get_pool, release_pools, shutdown_pools
from repro.core.problem import MappingProblem
from repro.core.random_search import RandomSearch
from repro.core.registry import (
    PAPER_STRATEGIES,
    available_strategies,
    create_strategy,
    register_strategy,
)
from repro.core.result import OptimizationResult
from repro.core.strategy import BestTracker, MappingStrategy
from repro.core.tabu import TabuSearch

__all__ = [
    "SimulatedAnnealing",
    "DeltaEvaluator",
    "delta_engine",
    "DesignSpaceExplorer",
    "BatchMetrics",
    "EdgeMetrics",
    "MappingEvaluator",
    "MappingMetrics",
    "PendingBatch",
    "GeneticAlgorithm",
    "pmx_crossover",
    "Mapping",
    "random_assignment",
    "random_assignment_batch",
    "SNR_CAP_DB",
    "Objective",
    "ObjectiveSpec",
    "objective_names",
    "spec_for",
    "PriorityBasedListAlgorithm",
    "apply_move",
    "swap_moves",
    "merge_chain_results",
    "split_budget",
    "spawn_seeds",
    "get_pool",
    "release_pools",
    "shutdown_pools",
    "MappingProblem",
    "RandomSearch",
    "PAPER_STRATEGIES",
    "available_strategies",
    "create_strategy",
    "register_strategy",
    "OptimizationResult",
    "BestTracker",
    "MappingStrategy",
    "TabuSearch",
]
