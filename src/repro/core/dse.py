"""The Design Space Exploration engine (paper Fig. 1, box 4).

:class:`DesignSpaceExplorer` wires a :class:`MappingProblem` to the
strategy registry and the mapping evaluator: it runs a strategy by name
under an evaluation budget, or runs several strategies under the *same*
budget for a fair comparison — which is exactly the experiment of the
paper's Table II.

Parallel execution and the determinism contract
-----------------------------------------------

Both entry points accept ``n_workers`` (constructor default, per-call
override). The guarantees, enforced by
``tests/core/test_parallel_dse.py`` on top of the sequential guarantees
of ``tests/core/test_dse_determinism.py``:

* :meth:`compare` fans one worker task out per strategy. Every strategy's
  RNG stream is spawned from ``np.random.SeedSequence(seed)`` by its
  position in the strategy list — never from the worker count or the
  scheduling order — so for a fixed seed the best scores, best
  assignments, histories and evaluation counts are **bit-identical for
  every** ``n_workers`` (including the sequential ``n_workers=1`` path).
* :meth:`run` with ``n_workers > 1`` decomposes strategies that declare
  :attr:`~repro.core.strategy.MappingStrategy.chain_decomposable`
  (R-PBLA's random restarts, independent SA chains) into up to
  ``n_workers`` independent chains over a near-even budget split (capped
  so every chain covers the strategy's
  :attr:`~repro.core.strategy.MappingStrategy.min_chain_budget` and the
  merged spend never exceeds the budget), each chain seeded by
  its spawn index; the merge (see
  :func:`~repro.core.parallel.merge_chain_results`) is deterministic, so
  results are bit-identical for a given ``(seed, n_workers)``.
  ``n_workers=1`` takes today's sequential path unchanged. Strategies
  without a chain decomposition (GA's single population, tabu's single
  trajectory, RS's already-batched sampling) run sequentially whatever
  ``n_workers`` says.
* evaluation counts aggregate across workers into the returned
  :class:`~repro.core.result.OptimizationResult`\\ s (chains sum), so
  budget comparisons stay fair in every configuration.

Workers share the read-only coupling matrices through
``multiprocessing.shared_memory`` (fork inheritance as the fallback) and
each worker builds its own strategy instance — ``optimize`` is documented
non-reentrant, one instance must never serve two concurrent runs.

Since PR 3 the executors are *persistent* (:mod:`repro.core.pool`): one
lazily created pool per (CG, network, dtype, n_workers) key serves
``compare()`` fan-outs, chain decompositions **and** the row sharding of
giant ``evaluate_batch`` calls, instead of a fresh pool per call. Batch
strategies (random search, the GA) declare
:attr:`~repro.core.strategy.MappingStrategy.batch_shardable`; for those,
``run(n_workers=k)`` shards their population scoring across the pool and
overlaps candidate generation with evaluation via
:meth:`~repro.core.evaluator.MappingEvaluator.submit_batch` — still
bit-identical to the sequential run for any worker count. Call
:meth:`DesignSpaceExplorer.close` (or use the explorer as a context
manager) to release the pools deterministically.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from typing import Dict, Iterable, Optional, Union

import numpy as np

from repro.core import parallel as _parallel
from repro.core import pool as _pool
from repro.core.evaluator import MappingEvaluator
from repro.core.problem import MappingProblem
from repro.core.registry import PAPER_STRATEGIES, create_strategy
from repro.core.result import OptimizationResult
from repro.core.strategy import MappingStrategy
from repro.errors import OptimizationError

__all__ = ["DesignSpaceExplorer"]


class DesignSpaceExplorer:
    """Runs mapping optimization strategies on one problem instance.

    ``use_delta`` (default True) lets local-search strategies score
    neighbourhoods through the incremental
    :class:`~repro.core.delta.DeltaEvaluator`; pass ``use_delta=False``
    (or override per call) as the escape hatch that forces every
    candidate through the full evaluator. Evaluation counting is
    identical either way, so budgets stay comparable.

    ``n_workers`` (default 1, per-call override) fans work out across a
    process pool — per-strategy runs in :meth:`compare`, independent
    chains of decomposable strategies in :meth:`run`; see the module
    docstring for the determinism contract.

    ``backend`` selects the noise-contraction implementation of the
    underlying :class:`~repro.core.evaluator.MappingEvaluator`
    (``"auto"``, ``"dense"`` or ``"sparse"``); the resolved choice also
    decides which shared-memory flavour pool workers attach, so parallel
    runs stay bit-identical to sequential ones per backend.

    ``model_cache_dir`` names an on-disk coupling-model cache: the
    explorer's evaluator loads the precomputed matrices as memory maps
    when the architecture was built before (and persists fresh builds),
    and the worker pools it creates inherit the directory. Purely a
    speed knob — cached and rebuilt models are bit-identical.
    """

    def __init__(
        self,
        problem: MappingProblem,
        dtype=np.float64,
        use_delta: bool = True,
        n_workers: int = 1,
        backend: str = "auto",
        model_cache_dir: Optional[str] = None,
        executor: str = "local",
    ) -> None:
        self.problem = problem
        self.dtype = np.dtype(dtype)
        self.evaluator = MappingEvaluator(
            problem,
            dtype=dtype,
            backend=backend,
            model_cache_dir=model_cache_dir,
            executor=executor,
        )
        # The evaluator resolves the process-wide default; mirror it so
        # the pools this explorer creates get the same directory. Same
        # for the normalized executor spec.
        self.model_cache_dir = self.evaluator.model_cache_dir
        self.executor = self.evaluator.executor
        self.use_delta = bool(use_delta)
        self.n_workers = self._check_workers(n_workers)

    @property
    def backend(self) -> str:
        """The resolved contraction backend (``"dense"`` or ``"sparse"``)."""
        return self.evaluator.backend

    @staticmethod
    def _check_workers(n_workers: int) -> int:
        n_workers = int(n_workers)
        if n_workers < 1:
            raise OptimizationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        return n_workers

    def _resolve_workers(self, n_workers: Optional[int]) -> int:
        if n_workers is None:
            return self.n_workers
        return self._check_workers(n_workers)

    def run(
        self,
        strategy: Union[str, MappingStrategy],
        budget: int = 20_000,
        seed: Optional[int] = None,
        use_delta: Optional[bool] = None,
        n_workers: Optional[int] = None,
        **hyperparameters,
    ) -> OptimizationResult:
        """Run one strategy within ``budget`` mapping evaluations.

        Parameters
        ----------
        strategy : str or MappingStrategy
            Registry name (``"rs"``, ``"ga"``, ``"r-pbla"``, ``"sa"``,
            ``"tabu"``, or a user-registered one) or an instance.
        budget : int, optional
            Mapping-evaluation budget, the fair-comparison currency
            (default 20,000, the paper's Table II budget).
        seed : int, optional
            RNG seed; ``None`` draws fresh OS entropy.
        use_delta : bool, optional
            Override the explorer's delta-evaluation default for this
            run.
        n_workers : int, optional
            Override the explorer's worker count for this run.
        **hyperparameters
            Forwarded to the strategy constructor (only when ``strategy``
            is a name).

        Returns
        -------
        OptimizationResult
            Best mapping, metrics, convergence history and the exact
            evaluation spend.

        Notes
        -----
        With ``n_workers > 1`` and a
        :attr:`~repro.core.strategy.MappingStrategy.chain_decomposable`
        strategy, the budget is split into ``n_workers`` independent
        seeded chains executed in parallel and merged (bit-identical per
        ``(seed, n_workers)``); ``evaluations`` on the merged result is
        the summed per-chain spend. For
        :attr:`~repro.core.strategy.MappingStrategy.batch_shardable`
        strategies (RS, GA) the population scoring is sharded across the
        persistent pool instead — **bit-identical to the sequential run
        for any** ``n_workers``. Other strategies run sequentially
        whatever ``n_workers`` says.
        """
        if isinstance(strategy, str):
            strategy = create_strategy(strategy, **hyperparameters)
        elif hyperparameters:
            raise OptimizationError(
                "pass hyperparameters only when naming the strategy"
            )
        flag = self.use_delta if use_delta is None else bool(use_delta)
        workers = self._resolve_workers(n_workers)
        # Every chain must get at least the strategy's minimum spend, so
        # the merged evaluation count never exceeds the budget. getattr:
        # third-party strategies predating MappingStrategy's chain
        # attributes are plain non-decomposable callables.
        min_chain = getattr(strategy, "min_chain_budget", 1)
        decomposable = getattr(strategy, "chain_decomposable", False)
        n_chains = min(workers, budget // max(1, min_chain))
        if workers > 1 and decomposable and n_chains >= 2:
            return self._run_chains(strategy, budget, seed, flag, n_chains)
        rng = np.random.default_rng(seed)
        shardable = getattr(strategy, "batch_shardable", False)
        if workers > 1 and shardable:
            # Batch strategies (RS, GA) shard their population scoring
            # across the persistent pool instead: set the evaluator's
            # default shard width for the duration of this run.
            # Bit-identical to sequential for any worker count.
            previous = self.evaluator.n_workers
            self.evaluator.n_workers = workers
            try:
                return _parallel.call_optimize(
                    strategy, self.evaluator, budget, rng, flag
                )
            finally:
                self.evaluator.n_workers = previous
        return _parallel.call_optimize(
            strategy, self.evaluator, budget, rng, flag
        )

    def _run_chains(
        self,
        strategy: MappingStrategy,
        budget: int,
        seed,
        use_delta: bool,
        n_chains: int,
    ) -> OptimizationResult:
        """Fan ``n_chains`` independent chains of one strategy out and merge."""
        budgets = _parallel.split_budget(budget, n_chains)
        seeds = _parallel.spawn_seeds(seed, n_chains)
        tasks = [
            (strategy, chain_budget, chain_seed, use_delta, self.problem.objective)
            for chain_budget, chain_seed in zip(budgets, seeds)
        ]
        chain_results = self._run_tasks(n_chains, tasks)
        return _parallel.merge_chain_results(chain_results)

    def _dispatch_tasks(self, n_workers: int, tasks, retrying: bool = False):
        """Submit one :func:`run_strategy_task` per argument tuple.

        ``get_pool`` hands back a fresh backend whenever the cached one
        broke, so calling this again after a worker death re-dispatches
        the *same* argument tuples against a healthy pool — and since
        each task's RNG stream depends only on its seed, a re-dispatched
        task is bit-identical to the lost one.
        """
        pool = _pool.get_pool(
            self.problem,
            self.dtype,
            n_workers,
            self.backend,
            model_cache_dir=self.model_cache_dir,
            executor=self.executor,
        )
        if retrying:
            pool.note_retry(len(tasks))
        futures = [
            pool.submit(_parallel.run_strategy_task, *task_args)
            for task_args in tasks
        ]
        return futures, pool

    def _run_tasks(self, n_workers: int, tasks) -> list:
        """Dispatch strategy tasks; resubmit once on an executor failure.

        The backend marks itself broken when its workers die
        (:class:`~concurrent.futures.BrokenExecutor` flavours); exactly
        one automatic resubmission against the rebuilt pool absorbs a
        transient worker loss, while a second failure — or any
        deterministic task-level exception — surfaces immediately.
        """
        pool = None
        try:
            futures, pool = self._dispatch_tasks(n_workers, tasks)
            return [future.result() for future in futures]
        except Exception as error:
            # Submit-time failures (a pool whose workers died between
            # batches) and result-time failures (workers died mid-task)
            # both land here; only executor-level breakage is retried.
            broken = isinstance(error, BrokenExecutor) or (
                pool is not None and pool.broken
            )
            if not broken:
                raise
            futures, _fresh = self._dispatch_tasks(n_workers, tasks, retrying=True)
            return [future.result() for future in futures]

    def compare(
        self,
        strategies: Iterable[str] = PAPER_STRATEGIES,
        budget: int = 20_000,
        seed: Optional[int] = None,
        use_delta: Optional[bool] = None,
        n_workers: Optional[int] = None,
    ) -> Dict[str, OptimizationResult]:
        """Run several strategies under the same budget and seed base.

        Parameters
        ----------
        strategies : iterable of str, optional
            Strategy registry names (default: the paper's RS, GA,
            R-PBLA).
        budget : int, optional
            Evaluation budget granted to *each* strategy (default
            20,000).
        seed : int, optional
            Base seed; every strategy receives its own stream spawned
            from ``np.random.SeedSequence(seed)`` by list position.
        use_delta : bool, optional
            Override the explorer's delta-evaluation default.
        n_workers : int, optional
            Override the explorer's worker count.

        Returns
        -------
        dict of str to OptimizationResult
            One result per strategy name, in input order.

        Notes
        -----
        This is the reproducible analogue of the paper's
        equal-running-time comparison (Table II). With ``n_workers > 1``
        the strategies run concurrently, one persistent-pool task each;
        results are **bit-identical for every** ``n_workers`` because
        the RNG streams depend only on the seed and the list position,
        never on the worker count or scheduling order.
        """
        names = list(strategies)
        seeds = _parallel.spawn_seeds(seed, len(names))
        flag = self.use_delta if use_delta is None else bool(use_delta)
        workers = self._resolve_workers(n_workers)
        results: Dict[str, OptimizationResult] = {}
        if workers <= 1 or len(names) <= 1:
            for name, strategy_seed in zip(names, seeds):
                results[name] = self.run(
                    name,
                    budget=budget,
                    seed=strategy_seed,
                    use_delta=flag,
                    n_workers=1,
                )
            return results
        pool_size = min(workers, len(names))
        tasks = [
            (name, budget, strategy_seed, flag, self.problem.objective)
            for name, strategy_seed in zip(names, seeds)
        ]
        return dict(zip(names, self._run_tasks(pool_size, tasks)))

    def close(self) -> None:
        """Release the persistent worker pools serving this problem.

        Pools created by parallel :meth:`run` / :meth:`compare` calls (or
        by sharded batch evaluation through this explorer's evaluator)
        stay warm for reuse; ``close()`` shuts the ones keyed to this
        problem down deterministically — worker processes exit and their
        shared-memory attachments are dropped before the exporting
        process unlinks the segments at interpreter exit, so no
        resource-tracker warning is ever emitted. Idempotent, and the
        explorer remains usable afterwards (the next parallel call builds
        a fresh pool). Also available as a context manager::

            with DesignSpaceExplorer(problem, n_workers=4) as explorer:
                results = explorer.compare(budget=20_000, seed=2016)
        """
        _pool.release_pools(self.problem)

    def __enter__(self) -> "DesignSpaceExplorer":
        """Enter a ``with`` block; :meth:`close` runs on exit."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Release this problem's pools on ``with``-block exit."""
        self.close()
