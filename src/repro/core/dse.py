"""The Design Space Exploration engine (paper Fig. 1, box 4).

:class:`DesignSpaceExplorer` wires a :class:`MappingProblem` to the
strategy registry and the mapping evaluator: it runs a strategy by name
under an evaluation budget, or runs several strategies under the *same*
budget for a fair comparison — which is exactly the experiment of the
paper's Table II.
"""

from __future__ import annotations

import inspect
from typing import Dict, Iterable, Optional, Union

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.core.problem import MappingProblem
from repro.core.registry import PAPER_STRATEGIES, create_strategy
from repro.core.result import OptimizationResult
from repro.core.strategy import MappingStrategy
from repro.errors import OptimizationError

__all__ = ["DesignSpaceExplorer"]


class DesignSpaceExplorer:
    """Runs mapping optimization strategies on one problem instance.

    ``use_delta`` (default True) lets local-search strategies score
    neighbourhoods through the incremental
    :class:`~repro.core.delta.DeltaEvaluator`; pass ``use_delta=False``
    (or override per call) as the escape hatch that forces every
    candidate through the full evaluator. Evaluation counting is
    identical either way, so budgets stay comparable.
    """

    def __init__(
        self, problem: MappingProblem, dtype=np.float64, use_delta: bool = True
    ) -> None:
        self.problem = problem
        self.evaluator = MappingEvaluator(problem, dtype=dtype)
        self.use_delta = bool(use_delta)

    def run(
        self,
        strategy: Union[str, MappingStrategy],
        budget: int = 20_000,
        seed: Optional[int] = None,
        use_delta: Optional[bool] = None,
        **hyperparameters,
    ) -> OptimizationResult:
        """Run one strategy within ``budget`` mapping evaluations."""
        if isinstance(strategy, str):
            strategy = create_strategy(strategy, **hyperparameters)
        elif hyperparameters:
            raise OptimizationError(
                "pass hyperparameters only when naming the strategy"
            )
        rng = np.random.default_rng(seed)
        flag = self.use_delta if use_delta is None else bool(use_delta)
        # Third-party strategies registered before the delta engine may
        # implement the original optimize(evaluator, budget, rng)
        # contract; only pass the flag to strategies that accept it.
        parameters = inspect.signature(strategy.optimize).parameters
        accepts_flag = "use_delta" in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in parameters.values()
        )
        if accepts_flag:
            return strategy.optimize(
                self.evaluator, budget, rng, use_delta=flag
            )
        return strategy.optimize(self.evaluator, budget, rng)

    def compare(
        self,
        strategies: Iterable[str] = PAPER_STRATEGIES,
        budget: int = 20_000,
        seed: Optional[int] = None,
        use_delta: Optional[bool] = None,
    ) -> Dict[str, OptimizationResult]:
        """Run several strategies under the same budget and seed base.

        Every strategy receives its own deterministic RNG stream derived
        from ``seed``, and exactly the same evaluation budget — the
        reproducible analogue of the paper's equal-running-time comparison.
        """
        results: Dict[str, OptimizationResult] = {}
        for index, name in enumerate(strategies):
            strategy_seed = None if seed is None else seed + 7919 * index
            results[name] = self.run(
                name, budget=budget, seed=strategy_seed, use_delta=use_delta
            )
        return results
