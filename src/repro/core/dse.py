"""The Design Space Exploration engine (paper Fig. 1, box 4).

:class:`DesignSpaceExplorer` wires a :class:`MappingProblem` to the
strategy registry and the mapping evaluator: it runs a strategy by name
under an evaluation budget, or runs several strategies under the *same*
budget for a fair comparison — which is exactly the experiment of the
paper's Table II.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.core.problem import MappingProblem
from repro.core.registry import PAPER_STRATEGIES, create_strategy
from repro.core.result import OptimizationResult
from repro.core.strategy import MappingStrategy
from repro.errors import OptimizationError

__all__ = ["DesignSpaceExplorer"]


class DesignSpaceExplorer:
    """Runs mapping optimization strategies on one problem instance."""

    def __init__(self, problem: MappingProblem, dtype=np.float64) -> None:
        self.problem = problem
        self.evaluator = MappingEvaluator(problem, dtype=dtype)

    def run(
        self,
        strategy: Union[str, MappingStrategy],
        budget: int = 20_000,
        seed: Optional[int] = None,
        **hyperparameters,
    ) -> OptimizationResult:
        """Run one strategy within ``budget`` mapping evaluations."""
        if isinstance(strategy, str):
            strategy = create_strategy(strategy, **hyperparameters)
        elif hyperparameters:
            raise OptimizationError(
                "pass hyperparameters only when naming the strategy"
            )
        rng = np.random.default_rng(seed)
        return strategy.optimize(self.evaluator, budget, rng)

    def compare(
        self,
        strategies: Iterable[str] = PAPER_STRATEGIES,
        budget: int = 20_000,
        seed: Optional[int] = None,
    ) -> Dict[str, OptimizationResult]:
        """Run several strategies under the same budget and seed base.

        Every strategy receives its own deterministic RNG stream derived
        from ``seed``, and exactly the same evaluation budget — the
        reproducible analogue of the paper's equal-running-time comparison.
        """
        results: Dict[str, OptimizationResult] = {}
        for index, name in enumerate(strategies):
            strategy_seed = None if seed is None else seed + 7919 * index
            results[name] = self.run(name, budget=budget, seed=strategy_seed)
        return results
