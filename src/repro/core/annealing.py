"""Simulated annealing — an "Other Strategies" extension (paper Fig. 1).

The paper's R-PBLA explicitly forbids uphill moves and compensates with
restarts; simulated annealing is the classic alternative that escapes local
minima by accepting uphill moves with a temperature-controlled probability.
Included as one of the pluggable extension strategies the tool invites.

The initial temperature is calibrated from the score spread of a small
random sample, so the strategy works untouched across objectives whose
scales differ (dB of SNR vs dB of loss).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.core.mapping import random_assignment, random_assignment_batch
from repro.core.result import OptimizationResult
from repro.core.strategy import BestTracker, MappingStrategy
from repro.errors import OptimizationError

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing(MappingStrategy):
    """Metropolis search over tile swaps with geometric cooling."""

    name = "sa"

    def __init__(
        self,
        calibration_samples: int = 32,
        final_temperature_ratio: float = 1e-3,
        batch_size: int = 64,
    ):
        if calibration_samples < 2:
            raise OptimizationError("SA needs at least 2 calibration samples")
        if not (0 < final_temperature_ratio < 1):
            raise OptimizationError("final temperature ratio must be in (0, 1)")
        self.calibration_samples = int(calibration_samples)
        self.final_temperature_ratio = float(final_temperature_ratio)
        self.batch_size = int(batch_size)

    def _propose(self, assignment: np.ndarray, n_tiles: int,
                 rng: np.random.Generator) -> np.ndarray:
        """One random swap/relocation neighbour."""
        proposal = assignment.copy()
        task = int(rng.integers(0, len(assignment)))
        tile = int(rng.integers(0, n_tiles))
        if tile == assignment[task]:
            # Proposed its own tile: swap with another random task instead.
            other = int(
                (task + 1 + rng.integers(0, len(assignment) - 1))
                % len(assignment)
            )
            proposal[task], proposal[other] = assignment[other], assignment[task]
            return proposal
        holder = np.nonzero(assignment == tile)[0]
        if len(holder):
            proposal[int(holder[0])] = assignment[task]
        proposal[task] = tile
        return proposal

    def _run(
        self,
        evaluator: MappingEvaluator,
        budget: int,
        rng: np.random.Generator,
    ) -> OptimizationResult:
        tracker = BestTracker(evaluator)
        samples = min(self.calibration_samples, max(2, budget // 4))
        calibration = random_assignment_batch(
            samples, evaluator.n_tasks, evaluator.n_tiles, rng
        )
        calibration_scores = evaluator.evaluate_batch(calibration).score
        tracker.offer_batch(calibration, calibration_scores)
        spread = float(np.std(calibration_scores))
        initial_temperature = max(spread, 1e-3)
        current = calibration[int(np.argmax(calibration_scores))].copy()
        current_score = float(calibration_scores.max())

        total_steps = max(1, budget - samples)
        cooling = self.final_temperature_ratio ** (1.0 / total_steps)
        temperature = initial_temperature
        step = 0
        while evaluator.evaluations < budget:
            count = min(self.batch_size, budget - evaluator.evaluations)
            proposals = np.stack(
                [self._propose(current, evaluator.n_tiles, rng)
                 for _ in range(count)]
            )
            scores = evaluator.evaluate_batch(proposals).score
            for k in range(count):
                delta = float(scores[k]) - current_score
                if delta >= 0 or rng.random() < math.exp(delta / temperature):
                    current = proposals[k]
                    current_score = float(scores[k])
                    tracker.offer(current, current_score)
                temperature = max(
                    temperature * cooling,
                    initial_temperature * self.final_temperature_ratio,
                )
                step += 1
        return tracker.result(self.name)
