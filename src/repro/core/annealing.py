"""Simulated annealing — an "Other Strategies" extension (paper Fig. 1).

The paper's R-PBLA explicitly forbids uphill moves and compensates with
restarts; simulated annealing is the classic alternative that escapes local
minima by accepting uphill moves with a temperature-controlled probability.
Included as one of the pluggable extension strategies the tool invites.

The initial temperature is calibrated from the score spread of a small
random sample, so the strategy works untouched across objectives whose
scales differ (dB of SNR vs dB of loss). Each run is one self-contained
chain (calibration included), so a budget splits into independent chains
(``chain_decomposable``) that parallel DSE can merge across workers.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.delta import delta_engine, score_neighbourhood
from repro.core.evaluator import MappingEvaluator
from repro.core.moves import REROUTE, Move, apply_move
from repro.core.result import OptimizationResult
from repro.core.strategy import BestTracker, MappingStrategy
from repro.errors import OptimizationError

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing(MappingStrategy):
    """Metropolis search over tile swaps with geometric cooling.

    With a routed evaluator (``routes > 1``) the proposal distribution
    widens to the joint neighbourhood: move sites cover the tasks plus
    every reroutable CG edge, so one chain explores placements and route
    choices together. At ``routes == 1`` proposals, RNG consumption and
    results are bit-identical to mapping-only search.
    """

    name = "sa"
    chain_decomposable = True  # chains are independent, calibration included
    min_chain_budget = 2  # a chain pays >= 2 calibration evaluations

    def __init__(
        self,
        calibration_samples: int = 32,
        final_temperature_ratio: float = 1e-3,
        batch_size: int = 64,
    ):
        if calibration_samples < 2:
            raise OptimizationError("SA needs at least 2 calibration samples")
        if not (0 < final_temperature_ratio < 1):
            raise OptimizationError("final temperature ratio must be in (0, 1)")
        self.calibration_samples = int(calibration_samples)
        self.final_temperature_ratio = float(final_temperature_ratio)
        self.batch_size = int(batch_size)

    def _propose_move(self, assignment: np.ndarray, n_tiles: int,
                      rng: np.random.Generator) -> Move:
        """One random swap/relocation move (task, target tile, other)."""
        task = int(rng.integers(0, len(assignment)))
        tile = int(rng.integers(0, n_tiles))
        if tile == assignment[task]:
            # Proposed its own tile: swap with another random task instead.
            other = int(
                (task + 1 + rng.integers(0, len(assignment) - 1))
                % len(assignment)
            )
            return (task, int(assignment[other]), other)
        holder = np.nonzero(assignment == tile)[0]
        if len(holder):
            return (task, tile, int(holder[0]))
        return (task, tile, -1)

    def _propose_joint_move(
        self,
        vector: np.ndarray,
        menus: np.ndarray,
        n_tasks: int,
        n_tiles: int,
        rng: np.random.Generator,
    ) -> Move:
        """One random move over the joint mapping x routing neighbourhood.

        A move site is drawn uniformly over the tasks plus the edges
        whose current tile pair offers more than one route; a task site
        delegates to the mapping proposer, an edge site redraws that
        edge's route gene uniformly among the other menu entries. Only
        reached when ``routes > 1``, so mapping-only runs consume the
        RNG exactly as before.
        """
        rerouteable = np.flatnonzero(menus > 1)
        site = int(rng.integers(0, n_tasks + len(rerouteable)))
        if site < n_tasks:
            return self._propose_move(vector[:n_tasks], n_tiles, rng)
        edge = int(rerouteable[site - n_tasks])
        menu = int(menus[edge])
        gene = int(rng.integers(0, menu - 1))
        if gene >= int(vector[n_tasks + edge]) % menu:
            gene += 1
        return (n_tasks + edge, gene, REROUTE)

    def _propose(self, assignment: np.ndarray, n_tiles: int,
                 rng: np.random.Generator) -> np.ndarray:
        """One random swap/relocation neighbour."""
        return apply_move(
            assignment, self._propose_move(assignment, n_tiles, rng)
        )

    def _run(
        self,
        evaluator: MappingEvaluator,
        budget: int,
        rng: np.random.Generator,
    ) -> OptimizationResult:
        tracker = BestTracker(evaluator)
        engine = delta_engine(evaluator, self._use_delta)
        # Clamp to the budget too: a budget of 1 must not pay a
        # 2-evaluation calibration (std of one sample is simply 0).
        samples = min(self.calibration_samples, max(2, budget // 4), budget)
        calibration = evaluator.random_vector_batch(samples, rng)
        calibration_scores = evaluator.evaluate_batch(calibration).score
        tracker.offer_batch(calibration, calibration_scores)
        spread = float(np.std(calibration_scores))
        initial_temperature = max(spread, 1e-3)
        current = calibration[int(np.argmax(calibration_scores))].copy()
        current_score = float(calibration_scores.max())
        if engine is not None:
            # The incumbent's score was already paid for by the
            # calibration batch; don't charge the reset again.
            engine.reset(current, count=False)

        total_steps = max(1, budget - samples)
        cooling = self.final_temperature_ratio ** (1.0 / total_steps)
        temperature = initial_temperature
        while evaluator.evaluations < budget:
            count = min(self.batch_size, budget - evaluator.evaluations)
            base = current
            if evaluator.routes > 1:
                menus = evaluator.edge_menu_sizes(base)
                moves = [
                    self._propose_joint_move(
                        base, menus, evaluator.n_tasks, evaluator.n_tiles, rng
                    )
                    for _ in range(count)
                ]
            else:
                moves = [self._propose_move(base, evaluator.n_tiles, rng)
                         for _ in range(count)]
            scores = score_neighbourhood(engine, evaluator, base, moves)
            # Every proposal is a neighbour of the batch's base, so an
            # acceptance replaces the incumbent with base + that move;
            # only the last accepted move survives the batch and only it
            # needs committing to the delta engine.
            accepted = None
            for k in range(count):
                gain = float(scores[k]) - current_score
                if gain >= 0 or rng.random() < math.exp(gain / temperature):
                    accepted = k
                    current = apply_move(base, moves[k])
                    current_score = float(scores[k])
                    tracker.offer(current, current_score)
                temperature = max(
                    temperature * cooling,
                    initial_temperature * self.final_temperature_ratio,
                )
            if engine is not None and accepted is not None:
                engine.commit(moves[accepted])
        return tracker.result(self.name)
