"""Multi-process plumbing for the design-space exploration engine.

:class:`~repro.core.dse.DesignSpaceExplorer` parallelizes two workloads:

* the per-strategy runs of ``compare()`` — one worker task per strategy,
  so the results are bit-identical to the sequential loop for *any*
  worker count (each strategy's RNG stream depends only on the seed and
  its position in the strategy list, never on scheduling);
* the chain decomposition of a single ``run()`` for strategies that
  declare ``chain_decomposable`` (R-PBLA's random restarts, independent
  SA chains): the budget is split across ``n_workers`` independent
  chains, each with its own spawned RNG stream, and the chain results are
  merged deterministically — bit-identical for a given
  ``(seed, n_workers)``.

The heavy read-only state — the :class:`~repro.models.coupling.CouplingModel`
matrices — is exported once into :mod:`multiprocessing.shared_memory` and
attached by every worker (see :meth:`CouplingModel.export_shared`), so
workers never pickle or rebuild the O(n_pairs^2) coupling matrix. When
shared-memory segments are unavailable the pool falls back to plain fork
inheritance (the parent's model cache is copy-on-write visible to forked
children) or, at worst, a per-worker rebuild.

Since PR 3 the executors themselves are owned by :mod:`repro.core.pool`
and persist across calls: workers are initialized with a *problem* (not
an evaluator) and build evaluators lazily per objective via
:func:`worker_evaluator`, and :func:`evaluate_shard_task` lets the same
pool score row shards of one giant ``evaluate_batch`` call (see
:meth:`repro.core.evaluator.MappingEvaluator.evaluate_batch`).

Budget accounting: every worker task returns an
:class:`~repro.core.result.OptimizationResult` whose ``evaluations`` field
counts that task's actual spend; :func:`merge_chain_results` sums them, so
a merged parallel run reports exactly what it consumed and budget
comparisons against sequential runs stay fair.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.core.problem import MappingProblem
from repro.core.registry import create_strategy
from repro.core.result import OptimizationResult
from repro.core.strategy import MappingStrategy
from repro.errors import OptimizationError
from repro.models.coupling import CouplingModel

__all__ = [
    "WorkerContext",
    "activate_context",
    "call_optimize",
    "current_context",
    "hydrate_model",
    "split_budget",
    "spawn_seeds",
    "merge_chain_results",
    "worker_pool",
    "worker_evaluator",
    "run_strategy_task",
    "evaluate_shard_task",
]


def call_optimize(
    strategy: MappingStrategy,
    evaluator: MappingEvaluator,
    budget: int,
    rng: np.random.Generator,
    use_delta: bool,
) -> OptimizationResult:
    """Invoke ``strategy.optimize`` honouring the legacy signature.

    Third-party strategies registered before the delta engine may
    implement the original ``optimize(evaluator, budget, rng)`` contract;
    only pass the flag to strategies that accept it.
    """
    import inspect

    parameters = inspect.signature(strategy.optimize).parameters
    accepts_flag = "use_delta" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    if accepts_flag:
        return strategy.optimize(evaluator, budget, rng, use_delta=use_delta)
    return strategy.optimize(evaluator, budget, rng)


def spawn_seeds(
    seed: Optional[int], n: int
) -> List[Optional[np.random.SeedSequence]]:
    """``n`` independent child seed sequences of ``seed``.

    ``np.random.SeedSequence.spawn`` gives statistically independent
    streams whatever the parent seed is — unlike arithmetic schemes such
    as ``seed + 7919 * index``, whose streams collide across nearby
    seeds. ``seed=None`` yields ``None`` children (fresh OS entropy per
    run, the sequential convention).
    """
    if seed is None:
        return [None] * n
    return list(np.random.SeedSequence(seed).spawn(n))


def split_budget(budget: int, n_chains: int) -> List[int]:
    """Near-even budget split; earlier chains absorb the remainder."""
    if n_chains < 1:
        raise OptimizationError(f"need at least one chain, got {n_chains}")
    base, extra = divmod(budget, n_chains)
    return [base + (1 if i < extra else 0) for i in range(n_chains)]


def merge_chain_results(
    chain_results: Sequence[OptimizationResult],
) -> OptimizationResult:
    """Merge independent chains as if they had run back to back.

    * the winner is the first chain reaching the maximum best score (ties
      break on chain order, which is deterministic);
    * ``evaluations`` sums the per-chain spends, so the merged result
      reports exactly the budget consumed;
    * ``history`` replays the chains in order with cumulative evaluation
      offsets, keeping only strictly improving waypoints — the
      convergence curve an equivalent sequential multi-start run would
      have recorded;
    * ``restarts`` sums the per-chain restarts plus one per extra chain
      (every chain after the first began from a fresh random point).
    """
    if not chain_results:
        raise OptimizationError("no chain produced a result")
    winner = max(chain_results, key=lambda r: r.best_score)
    history = []
    best_so_far = -np.inf
    offset = 0
    for result in chain_results:
        for evaluations, score in result.history:
            if score > best_so_far:
                best_so_far = score
                history.append((offset + evaluations, score))
        offset += result.evaluations
    return OptimizationResult(
        strategy=winner.strategy,
        best_mapping=winner.best_mapping,
        best_metrics=winner.best_metrics,
        evaluations=offset,
        history=history,
        restarts=sum(r.restarts for r in chain_results)
        + (len(chain_results) - 1),
    )


# ---------------------------------------------------------------------------
# Worker contexts
# ---------------------------------------------------------------------------


class WorkerContext:
    """The state one executor worker holds to evaluate a problem.

    A context is everything :func:`run_strategy_task` and
    :func:`evaluate_shard_task` need to run: the problem, the coupling
    dtype, the resolved contraction backend, and a per-objective
    evaluator cache (evaluators are built lazily — one warm context
    serves e.g. both the SNR and the power-loss pass of a Table II
    cell, because executors are keyed objective-free).

    Where a context lives depends on the backend: a pool worker process
    holds exactly one (installed by :func:`_init_worker`); the inline
    backend holds one per backend instance and activates it
    thread-locally around each task; a ``phonocmap worker`` process
    holds one per scheduler-initialized pool key.
    """

    def __init__(self, problem: MappingProblem, dtype, backend: str = "dense"):
        self.problem = problem
        self.dtype = np.dtype(dtype)
        self.backend = str(backend)
        self.evaluators: Dict[object, MappingEvaluator] = {}

    def evaluator(self, objective=None) -> MappingEvaluator:
        """This context's evaluator for ``objective`` (built once, cached)."""
        from repro.core.objectives import Objective

        problem = self.problem
        objective = (
            problem.objective if objective is None else Objective.parse(objective)
        )
        evaluator = self.evaluators.get(objective)
        if evaluator is None:
            if problem.objective is objective:
                target = problem
            else:
                # Keep the variation plan on objective flips: the pool
                # key includes it, so every evaluator of this context
                # must produce the same metric-table set.
                target = problem.with_objective(objective)
            evaluator = MappingEvaluator(
                target, dtype=self.dtype, backend=self.backend
            )
            self.evaluators[objective] = evaluator
        return evaluator


#: The process-wide default context (a pool worker's, set by
#: :func:`_init_worker`); thread-locally overridden via
#: :func:`activate_context` by backends running tasks in-process.
_PROCESS_CONTEXT: Optional[WorkerContext] = None

_THREAD_CONTEXT = threading.local()


@contextlib.contextmanager
def activate_context(context: WorkerContext):
    """Make ``context`` the current one on this thread for the block.

    Thread-local, so concurrent inline submitters (the service daemon's
    coalescer threads) never see each other's contexts; nesting restores
    the previous context on exit.
    """
    previous = getattr(_THREAD_CONTEXT, "context", None)
    _THREAD_CONTEXT.context = context
    try:
        yield context
    finally:
        _THREAD_CONTEXT.context = previous


def current_context() -> WorkerContext:
    """The context task functions resolve against on this thread.

    Resolution order: the thread-locally activated context (inline and
    remote-worker execution), then the process-wide one (pool worker
    processes). Raises when neither exists — a task function was called
    outside any executor.
    """
    context = getattr(_THREAD_CONTEXT, "context", None)
    if context is None:
        context = _PROCESS_CONTEXT
    if context is None:
        raise RuntimeError(
            "no active worker context: task functions run inside an "
            "executor backend (or under parallel.activate_context)"
        )
    return context


def hydrate_model(
    problem: MappingProblem,
    dtype,
    spec=None,
    model_cache_dir: Optional[str] = None,
) -> None:
    """Make the problem's coupling model resolvable in this process.

    The backend-independent half of worker initialization. When a
    :class:`~repro.models.coupling.SharedModelSpec` is provided (local
    pool workers on the same host) the matrices are attached from shared
    memory and seeded into the process cache, so evaluator construction
    resolves to them instead of rebuilding. Sparse-backend pools ship a
    CSR-flavoured spec, so the attached model carries the sparse arrays
    too. Without a spec the cache may already hold the model through
    fork inheritance; a spawned worker with neither loads the model from
    the on-disk cache when ``model_cache_dir`` names one (installed here
    as this process's default, so lazy evaluator builds resolve against
    it), or rebuilds it (correct, just slower). Remote workers skip this
    function entirely: they hydrate by cache key, with a streamed
    transfer as the miss fallback (:mod:`repro.distributed.worker`).
    """
    if model_cache_dir:
        from repro.models.coupling import set_model_cache_dir

        set_model_cache_dir(model_cache_dir)
    if spec is not None:
        model = CouplingModel.attach_shared(spec, problem.network)
        CouplingModel.register(spec.cache_key, model)


def _init_worker(
    problem: MappingProblem,
    dtype_name: str,
    spec,
    backend: str = "dense",
    model_cache_dir=None,
) -> None:
    """Pool initializer: hydrate the model, install the process context.

    ``backend`` is the parent evaluator's *resolved* contraction backend
    (never ``"auto"``): worker evaluators must run the same kernel as the
    parent for shard results to be bit-identical to the inline path.
    """
    global _PROCESS_CONTEXT
    dtype = np.dtype(dtype_name)
    hydrate_model(problem, dtype, spec, model_cache_dir)
    _PROCESS_CONTEXT = WorkerContext(problem, dtype, backend)


def worker_evaluator(objective=None) -> MappingEvaluator:
    """The current context's evaluator for ``objective``.

    Parameters
    ----------
    objective : Objective or str, optional
        Objective of the evaluator; defaults to the objective of the
        problem the context was initialized with. Building an evaluator
        for a second objective is cheap — the coupling model is shared
        through the process cache.

    Returns
    -------
    MappingEvaluator
        The cached per-objective evaluator of the current
        :class:`WorkerContext` (see :func:`current_context`).
    """
    return current_context().evaluator(objective)


def run_strategy_task(
    strategy: Union[str, MappingStrategy],
    budget: int,
    seed,
    use_delta: bool,
    objective=None,
) -> OptimizationResult:
    """One worker task: run one strategy (or one chain of one) to completion.

    Parameters
    ----------
    strategy : str or MappingStrategy
        A registry name (instantiated here, so hyperparameter defaults
        apply) or a pickled strategy instance — either way this worker
        gets its own instance, which is what makes the non-reentrant
        ``optimize`` contract (the ``_use_delta`` stash) safe under
        parallelism.
    budget : int
        Evaluation budget for this run or chain.
    seed : int, SeedSequence or None
        Exactly as ``np.random.default_rng`` accepts.
    use_delta : bool
        Whether local-search strategies may use the incremental
        delta evaluator.
    objective : Objective or str, optional
        Objective to optimize; defaults to the pool's initial problem
        objective. Passed explicitly by the DSE because persistent pools
        are shared across objectives.

    Returns
    -------
    OptimizationResult
        The completed run, with its actual evaluation spend.
    """
    evaluator = worker_evaluator(objective)
    if isinstance(strategy, str):
        strategy = create_strategy(strategy)
    rng = np.random.default_rng(seed)
    return call_optimize(strategy, evaluator, budget, rng, use_delta)


def evaluate_shard_task(assignments: np.ndarray):
    """One worker task: score one shard of an ``evaluate_batch`` call.

    Parameters
    ----------
    assignments : numpy.ndarray
        ``(m, n_tasks)`` slice of the parent's batch (rows are trusted
        valid, exactly like ``evaluate_batch``).

    Returns
    -------
    tuple of numpy.ndarray
        Per-row metric vectors, one per name in the worker evaluator's
        ``table_names`` (the base tables, plus the robust column when
        the pool's problem carries a variation plan — identical to the
        parent's set because the variation fingerprint is part of the
        pool key). The objective-dependent score is applied by the
        parent, which keeps this task — and therefore the pool —
        objective-free.

    Notes
    -----
    Row results are independent of chunking and of shard boundaries
    (every reduction runs within a row), so the parent's concatenation
    is bit-identical to evaluating the whole batch sequentially.
    """
    evaluator = worker_evaluator()
    return evaluator._evaluate_rows(np.asarray(assignments, dtype=np.int64))


@contextlib.contextmanager
def worker_pool(problem: MappingProblem, dtype, n_workers: int):
    """A process pool wired for DSE worker tasks (persistent since PR 3).

    Yields the executor of the persistent pool from
    :func:`repro.core.pool.get_pool`; the pool is *not* shut down when
    the context exits — it stays warm for the next call and is closed by
    the pool registry's LRU eviction, ``shutdown_pools()`` or interpreter
    exit. Kept as a context manager for backward compatibility.
    """
    from repro.core import pool as _pool

    yield _pool.get_pool(problem, dtype, n_workers).executor
