"""Multi-process plumbing for the design-space exploration engine.

:class:`~repro.core.dse.DesignSpaceExplorer` parallelizes two workloads:

* the per-strategy runs of ``compare()`` — one worker task per strategy,
  so the results are bit-identical to the sequential loop for *any*
  worker count (each strategy's RNG stream depends only on the seed and
  its position in the strategy list, never on scheduling);
* the chain decomposition of a single ``run()`` for strategies that
  declare ``chain_decomposable`` (R-PBLA's random restarts, independent
  SA chains): the budget is split across ``n_workers`` independent
  chains, each with its own spawned RNG stream, and the chain results are
  merged deterministically — bit-identical for a given
  ``(seed, n_workers)``.

The heavy read-only state — the :class:`~repro.models.coupling.CouplingModel`
matrices — is exported once into :mod:`multiprocessing.shared_memory` and
attached by every worker (see :meth:`CouplingModel.export_shared`), so
workers never pickle or rebuild the O(n_pairs^2) coupling matrix. When
shared-memory segments are unavailable the pool falls back to plain fork
inheritance (the parent's model cache is copy-on-write visible to forked
children) or, at worst, a per-worker rebuild.

Budget accounting: every worker task returns an
:class:`~repro.core.result.OptimizationResult` whose ``evaluations`` field
counts that task's actual spend; :func:`merge_chain_results` sums them, so
a merged parallel run reports exactly what it consumed and budget
comparisons against sequential runs stay fair.
"""

from __future__ import annotations

import contextlib
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.core.problem import MappingProblem
from repro.core.registry import create_strategy
from repro.core.result import OptimizationResult
from repro.core.strategy import MappingStrategy
from repro.errors import OptimizationError
from repro.models.coupling import CouplingModel

__all__ = [
    "call_optimize",
    "split_budget",
    "spawn_seeds",
    "merge_chain_results",
    "worker_pool",
    "run_strategy_task",
]


def call_optimize(
    strategy: MappingStrategy,
    evaluator: MappingEvaluator,
    budget: int,
    rng: np.random.Generator,
    use_delta: bool,
) -> OptimizationResult:
    """Invoke ``strategy.optimize`` honouring the legacy signature.

    Third-party strategies registered before the delta engine may
    implement the original ``optimize(evaluator, budget, rng)`` contract;
    only pass the flag to strategies that accept it.
    """
    import inspect

    parameters = inspect.signature(strategy.optimize).parameters
    accepts_flag = "use_delta" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    if accepts_flag:
        return strategy.optimize(evaluator, budget, rng, use_delta=use_delta)
    return strategy.optimize(evaluator, budget, rng)


def spawn_seeds(
    seed: Optional[int], n: int
) -> List[Optional[np.random.SeedSequence]]:
    """``n`` independent child seed sequences of ``seed``.

    ``np.random.SeedSequence.spawn`` gives statistically independent
    streams whatever the parent seed is — unlike arithmetic schemes such
    as ``seed + 7919 * index``, whose streams collide across nearby
    seeds. ``seed=None`` yields ``None`` children (fresh OS entropy per
    run, the sequential convention).
    """
    if seed is None:
        return [None] * n
    return list(np.random.SeedSequence(seed).spawn(n))


def split_budget(budget: int, n_chains: int) -> List[int]:
    """Near-even budget split; earlier chains absorb the remainder."""
    if n_chains < 1:
        raise OptimizationError(f"need at least one chain, got {n_chains}")
    base, extra = divmod(budget, n_chains)
    return [base + (1 if i < extra else 0) for i in range(n_chains)]


def merge_chain_results(
    chain_results: Sequence[OptimizationResult],
) -> OptimizationResult:
    """Merge independent chains as if they had run back to back.

    * the winner is the first chain reaching the maximum best score (ties
      break on chain order, which is deterministic);
    * ``evaluations`` sums the per-chain spends, so the merged result
      reports exactly the budget consumed;
    * ``history`` replays the chains in order with cumulative evaluation
      offsets, keeping only strictly improving waypoints — the
      convergence curve an equivalent sequential multi-start run would
      have recorded;
    * ``restarts`` sums the per-chain restarts plus one per extra chain
      (every chain after the first began from a fresh random point).
    """
    if not chain_results:
        raise OptimizationError("no chain produced a result")
    winner = max(chain_results, key=lambda r: r.best_score)
    history = []
    best_so_far = -np.inf
    offset = 0
    for result in chain_results:
        for evaluations, score in result.history:
            if score > best_so_far:
                best_so_far = score
                history.append((offset + evaluations, score))
        offset += result.evaluations
    return OptimizationResult(
        strategy=winner.strategy,
        best_mapping=winner.best_mapping,
        best_metrics=winner.best_metrics,
        evaluations=offset,
        history=history,
        restarts=sum(r.restarts for r in chain_results)
        + (len(chain_results) - 1),
    )


# ---------------------------------------------------------------------------
# Worker process state
# ---------------------------------------------------------------------------

#: Per-worker-process state, populated once by :func:`_init_worker`.
_WORKER: Dict[str, object] = {}


def _init_worker(problem: MappingProblem, dtype_name: str, spec) -> None:
    """Pool initializer: build this worker's evaluator exactly once.

    When a :class:`~repro.models.coupling.SharedModelSpec` is provided the
    coupling matrices are attached from shared memory and seeded into the
    model cache, so the :class:`MappingEvaluator` constructor resolves to
    them instead of rebuilding. Without a spec the cache may already hold
    the model through fork inheritance; a spawned worker without either
    rebuilds it (correct, just slower).
    """
    dtype = np.dtype(dtype_name)
    if spec is not None:
        model = CouplingModel.attach_shared(spec, problem.network)
        CouplingModel.register(spec.cache_key, model)
    _WORKER["evaluator"] = MappingEvaluator(problem, dtype=dtype)


def run_strategy_task(
    strategy: Union[str, MappingStrategy],
    budget: int,
    seed,
    use_delta: bool,
) -> OptimizationResult:
    """One worker task: run one strategy (or one chain of one) to completion.

    ``strategy`` is a registry name (instantiated here, so hyperparameter
    defaults apply) or a pickled strategy instance — either way this
    worker gets its own instance, which is what makes the non-reentrant
    ``optimize`` contract (the ``_use_delta`` stash) safe under
    parallelism. ``seed`` is an int, a ``SeedSequence`` or ``None``,
    exactly as ``np.random.default_rng`` accepts.
    """
    evaluator = _WORKER["evaluator"]
    if isinstance(strategy, str):
        strategy = create_strategy(strategy)
    rng = np.random.default_rng(seed)
    return call_optimize(strategy, evaluator, budget, rng, use_delta)


@contextlib.contextmanager
def worker_pool(problem: MappingProblem, dtype, n_workers: int):
    """A :class:`ProcessPoolExecutor` wired for DSE worker tasks.

    Exports the coupling model to shared memory for the workers to
    attach (falling back to fork inheritance when segments are
    unavailable). The export is cached on the model and reused by later
    pools; it outlives the pool and is unlinked by
    :func:`repro.models.coupling.clear_model_cache` or at interpreter
    exit.
    """
    model = CouplingModel.for_network(problem.network, dtype=dtype)
    try:
        spec = model.shared_export().spec
    except Exception:  # segments unavailable: fork inheritance fallback
        spec = None
    executor = ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=_init_worker,
        initargs=(problem, np.dtype(dtype).name, spec),
    )
    try:
        yield executor
    finally:
        executor.shutdown(wait=True)
