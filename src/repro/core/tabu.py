"""Tabu search — an "Other Strategies" extension (paper Fig. 1).

A sampled-neighbourhood tabu search over the same move set as R-PBLA:
each iteration evaluates a random sample of swap/relocation moves, discards
recently reversed moves (the tabu list, keyed by (task, target tile))
unless they beat the incumbent (aspiration), and takes the best admissible
move even when it is uphill.

Neighbourhoods are scored through the incremental
:class:`~repro.core.delta.DeltaEvaluator` by default (identical scores and
evaluation counts, O(E * affected) per move); ``use_delta=False`` restores
the full batched evaluation.

With a routed evaluator (``routes > 1``) the sampled neighbourhood also
covers the reroute moves of every multi-route CG edge
(:meth:`~repro.core.evaluator.MappingEvaluator.moves_for`), and the tabu
list keys reroute reversals on (gene slot, previous gene). At
``routes == 1`` the move list, RNG draws and results are unchanged.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.delta import (
    delta_engine,
    incumbent_score,
    score_neighbourhood,
)
from repro.core.evaluator import MappingEvaluator
from repro.core.moves import apply_move, reroute_moves, swap_moves
from repro.core.result import OptimizationResult
from repro.core.strategy import BestTracker, MappingStrategy
from repro.errors import OptimizationError

__all__ = ["TabuSearch"]


class TabuSearch(MappingStrategy):
    """Best-admissible-move search with a fixed-tenure tabu list."""

    name = "tabu"

    def __init__(self, neighbourhood_size: int = 64, tenure: int = 24):
        if neighbourhood_size < 1:
            raise OptimizationError("neighbourhood size must be >= 1")
        if tenure < 1:
            raise OptimizationError("tabu tenure must be >= 1")
        self.neighbourhood_size = int(neighbourhood_size)
        self.tenure = int(tenure)

    @staticmethod
    def _reversal_keys(move, current: np.ndarray):
        """The (task, target tile) keys that would undo ``move``.

        For a relocation that is the moved task returning to its old
        tile; for a swap *both* tasks' returns go tabu. The same swap
        can be expressed with either task as the primary ((a, old_a, b)
        and (b, old_b, a) are one move), so keying only the primary
        leaves the partner orientation admissible — today's
        ``swap_moves`` happens to enumerate swaps lower-index-first,
        which hides the exact next-iteration undo, but the ``Move``
        contract allows either orientation (SA's proposer emits both).
        While in tenure the partner's key also blocks any move it
        *leads* back to its old tile (a relocation, or a swap with a
        third task where it is the primary); admissibility keys on the
        primary only, so it can still return as the partner of a third
        task's move. Each swap consumes two tenure slots.

        A reroute move keys on (gene slot, current gene) — the same
        shape, since gene slots (``n_tasks + edge``) never collide with
        task indices — so undoing a route choice is tabu exactly like
        undoing a relocation.
        """
        keys = [(move[0], int(current[move[0]]))]
        if move[2] >= 0:
            keys.append((move[2], int(current[move[2]])))
        return keys

    def _run(
        self,
        evaluator: MappingEvaluator,
        budget: int,
        rng: np.random.Generator,
    ) -> OptimizationResult:
        tracker = BestTracker(evaluator)
        engine = delta_engine(evaluator, self._use_delta)
        current = evaluator.random_vector(rng)
        current_score = incumbent_score(engine, evaluator, current)
        tracker.offer(current, current_score)
        tabu: deque = deque(maxlen=self.tenure)
        tabu_set = set()

        def push_tabu(key) -> None:
            if len(tabu) == tabu.maxlen:
                tabu_set.discard(tabu[0])
            tabu.append(key)
            tabu_set.add(key)

        while evaluator.evaluations < budget:
            # The mapping moves stay a module-level swap_moves call (a
            # patchable seam); reroutes extend them when routed.
            moves = swap_moves(
                current[: evaluator.n_tasks], evaluator.n_tiles
            )
            if evaluator.routes > 1:
                moves += reroute_moves(
                    current,
                    evaluator.n_tasks,
                    evaluator.edge_menu_sizes(current),
                )
            sample_size = min(
                self.neighbourhood_size,
                len(moves),
                budget - evaluator.evaluations,
            )
            if sample_size < 1:
                break
            picks = rng.choice(len(moves), size=sample_size, replace=False)
            sampled = [moves[int(p)] for p in picks]
            scores = score_neighbourhood(engine, evaluator, current, sampled)
            order = np.argsort(scores)[::-1]
            chosen = None
            for index in order:
                move = sampled[int(index)]
                key = (move[0], move[1])
                aspiration = scores[index] > tracker.best_score
                if key not in tabu_set or aspiration:
                    chosen = int(index)
                    break
            if chosen is None:
                chosen = int(order[0])  # everything tabu: take the best anyway
            move = sampled[chosen]
            for key in self._reversal_keys(move, current):
                push_tabu(key)
            current = apply_move(current, move)
            if engine is not None:
                engine.commit(move)
            current_score = float(scores[chosen])
            tracker.offer(current, current_score)
        return tracker.result(self.name)
