"""Incremental (delta) mapping evaluation for local-search strategies.

The full :class:`~repro.core.evaluator.MappingEvaluator` scores a mapping
by gathering an ``(M, E, E)`` coupling grid and contracting it against the
serialization mask — every candidate pays O(E^2) even when it differs from
the incumbent by a single swap. Local-search strategies (R-PBLA, tabu,
simulated annealing) only ever look at such one-move neighbours, and a
move touching one or two tasks only changes the tile pairs of the CG edges
*incident* to those tasks. :class:`DeltaEvaluator` exploits that locality
so scoring a move costs O(E * |affected edges|) instead of O(E^2).

State kept for the incumbent assignment (all shape ``(E,)`` unless noted):

* ``_pairs``    — flat tile-pair index of every CG edge;
* ``_il``       — per-edge insertion loss in dB (eq. 3 terms);
* ``_signal``   — per-edge end-to-end linear transmission;
* ``_noise``    — per-edge crosstalk-noise accumulator: the masked sum
  ``noise[v] = sum_a mask[v, a] * C[pairs[v], pairs[a]]``.

Update rule for a move (relocation or swap) with affected edge set ``A``
(the edges incident to the moved task(s), deduplicated):

* an *unaffected* victim ``v`` keeps its pair, so only the aggressor terms
  of edges in ``A`` change::

      noise'[v] = noise[v] + sum_{a in A} mask[v, a]
                  * (C[pairs[v], pairs'[a]] - C[pairs[v], pairs[a]])

* an *affected* victim changed its own pair, so its whole row is
  recomputed against the moved pair table::

      noise'[v] = sum_a mask[v, a] * C[pairs'[v], pairs'[a]]

  factored, to avoid an O(E) gather per affected edge, as the
  precomputed dense row sum ``R[q] = sum_a C[q, pairs[a]]`` at the
  victim's new pair, plus the cross terms the move displaced, minus the
  victim's serialized/self columns (the zeros of its mask row).

No symmetry of the serialization mask is assumed: both directions use the
victim's own mask row, which is what keeps the delta path numerically
identical to the full einsum (the mask happens to be symmetric today, but
the update rule would survive an asymmetric one).

:meth:`DeltaEvaluator.score_moves` applies the rule to a whole sampled
neighbourhood in one vectorized pass (padded per-task incident-edge
tables, dummy-column scatters), and :meth:`DeltaEvaluator.commit` applies
it to the incumbent state in place.

Fallback to full evaluation happens in exactly three places:

* :meth:`DeltaEvaluator.reset` — a new incumbent (or a restart) rebuilds
  every table from the coupling matrices;
* every ``refresh_interval`` commits the tables are rebuilt from scratch,
  which bounds floating-point drift of the noise accumulators (the
  unaffected-victim rule is a running ``+=``; with float64 the drift over
  hundreds of commits is ~1e-13 dB, and the periodic rebuild makes it
  impossible for it to ever matter);
* strategies constructed with ``use_delta=False`` skip this module
  entirely and score candidates through ``evaluate_batch``.

Backend awareness (PR 4): when the wrapped evaluator resolved to the
sparse contraction backend, the dense row sums ``R[q] = sum_e C[q,
pairs[e]]`` are produced by consuming the CSR rows of the coupling model
(:meth:`~repro.models.coupling.CouplingCSR.row_dots` against the
incumbent's pair counts) instead of walking rows of the dense transpose,
and the per-commit updates read the affected coupling columns with a
strided gather of the dense matrix. The ``O(n_pairs^2)`` contiguous
transpose is therefore never built in sparse mode — on a 64-tile mesh
that is 134 MB per process (3.4 GB on a 144-tile mesh) the delta path no
longer costs.

Evaluation accounting is unchanged: scoring ``k`` moves charges ``k``
evaluations to the wrapped evaluator, a reset charges one (it replaces the
full evaluation a strategy would otherwise spend on the new incumbent),
and a commit charges nothing (the committed move was already scored) — so
budget comparisons between delta and full runs stay fair.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

import repro.core.evaluator as _evaluator_module
from repro.core.evaluator import MappingEvaluator, _row_sum
from repro.core.moves import REROUTE, Move, apply_move
from repro.core.objectives import SNR_CAP_DB, spec_for
from repro.errors import MappingError

__all__ = [
    "DeltaEvaluator",
    "delta_engine",
    "incumbent_score",
    "score_neighbourhood",
]


def delta_engine(
    evaluator: MappingEvaluator,
    use_delta: bool = True,
    refresh_interval: Optional[int] = 64,
) -> "Optional[DeltaEvaluator]":
    """A :class:`DeltaEvaluator` when the objective supports one, else None.

    The single construction seam strategies use: objectives whose
    :class:`~repro.core.objectives.ObjectiveSpec` declares
    ``supports_delta=False`` (e.g. ``robust_snr``, whose score depends on
    every variation sample's noise field) silently fall back to full
    batch evaluation — the same path ``use_delta=False`` takes — instead
    of raising deep inside a strategy.
    """
    if not use_delta or not spec_for(evaluator.objective).supports_delta:
        return None
    return DeltaEvaluator(evaluator, refresh_interval=refresh_interval)


def incumbent_score(engine, evaluator, assignment) -> float:
    """Score a fresh incumbent via the engine (reset) or the full path.

    Both branches charge exactly one evaluation, so strategies can call
    this wherever they previously evaluated a single new starting point.
    """
    if engine is not None:
        return engine.reset(assignment)
    return float(evaluator.evaluate_batch(assignment[None, :]).score[0])


def score_neighbourhood(engine, evaluator, current, moves) -> np.ndarray:
    """Score ``moves`` against ``current`` via the engine or the full path.

    The engine must already hold ``current`` as its incumbent. Both
    branches charge ``len(moves)`` evaluations.
    """
    if engine is not None:
        return engine.score_moves(moves)
    candidates = np.stack([apply_move(current, m) for m in moves])
    return evaluator.evaluate_batch(candidates).score


class DeltaEvaluator:
    """Incremental evaluator wrapping a :class:`MappingEvaluator`.

    Maintains per-edge pair indices, signal/IL tables and noise
    accumulators for one incumbent assignment; see the module docstring
    for the state kept and the update rule.
    """

    def __init__(
        self, evaluator: MappingEvaluator, refresh_interval: Optional[int] = 64
    ) -> None:
        if refresh_interval is not None and refresh_interval < 1:
            raise MappingError("refresh_interval must be >= 1 or None")
        spec = spec_for(evaluator.objective)
        if not spec.supports_delta:
            raise MappingError(
                f"objective {evaluator.objective.value!r} declares no "
                "incremental (delta) support; use delta_engine() to fall "
                "back to full batch evaluation"
            )
        self._score_table = spec.table
        self._ev = evaluator
        self._model = evaluator.model
        self._n_tiles = evaluator.n_tiles
        self._routes = evaluator.routes
        self._edges = evaluator._edges
        self._E = len(self._edges)
        # Sparse-backend evaluators share their CSR arrays: row sums come
        # from CSR row dots instead of dense-transpose walks, so the
        # O(n_pairs^2) transpose is never materialized in sparse mode.
        self._csr = evaluator._csr if evaluator.backend == "sparse" else None
        self._maskf = evaluator._mask_linear  # read-only share, hoisted there
        # The mask is gathered both by victim row and by aggressor column;
        # a contiguous transpose keeps the column walk row-local (and does
        # not assume the serialization mask is symmetric).
        self._maskfT = np.ascontiguousarray(self._maskf.T)
        self._bw = evaluator._bandwidth_weights
        self._refresh_interval = refresh_interval
        self._commits = 0
        self._assignment: Optional[np.ndarray] = None

        # Padded incident-edge table: row t lists the CG edges touching
        # task t; the extra last row is all-padding and stands in for the
        # missing partner of a relocation (other == -1).
        n_tasks = evaluator.n_tasks
        incident = [[] for _ in range(n_tasks)]
        for e, (s, d) in enumerate(self._edges):
            incident[int(s)].append(e)
            incident[int(d)].append(e)
        width = max((len(lst) for lst in incident), default=1) or 1
        self._inc = np.full((n_tasks + 1, width), -1, dtype=np.int64)
        for t, lst in enumerate(incident):
            self._inc[t, : len(lst)] = lst

        # Padded conflict table: row v lists the aggressor columns a with
        # mask[v, a] == 0 (the serialized edges, plus v itself) — the only
        # terms by which v's masked noise row differs from the full row
        # sum. Padding points at the dummy column E and carries weight 0.
        n_edges = self._E
        conflicts = [np.nonzero(~evaluator._mask[v, :])[0] for v in range(n_edges)]
        k_width = max(1, max(len(c) for c in conflicts))
        self._conf_row = np.full((n_edges, k_width), n_edges, dtype=np.int64)
        self._conf_w = np.zeros((n_edges, k_width), dtype=self._maskf.dtype)
        for v, c in enumerate(conflicts):
            self._conf_row[v, : len(c)] = c
            self._conf_w[v, : len(c)] = 1.0

    # -- incumbent state ---------------------------------------------------------

    @property
    def evaluator(self) -> MappingEvaluator:
        """The wrapped full evaluator (budget counting happens there)."""
        return self._ev

    @property
    def assignment(self) -> np.ndarray:
        """A copy of the incumbent assignment."""
        self._require_incumbent()
        return self._assignment.copy()

    @property
    def score(self) -> float:
        """The incumbent's score under the problem objective."""
        self._require_incumbent()
        return float(
            self._scores_from(
                self._il[None, :], self._signal[None, :], self._noise[None, :]
            )[0]
        )

    def _require_incumbent(self) -> None:
        if self._assignment is None:
            raise MappingError(
                "DeltaEvaluator has no incumbent; call reset(assignment) first"
            )

    def reset(self, assignment: np.ndarray, count: bool = True) -> float:
        """Set a new incumbent, rebuilding all tables (full evaluation).

        Charges one evaluation unless ``count=False`` (use that when the
        incumbent's score was already paid for, e.g. SA calibration).
        """
        array = np.array(assignment, dtype=np.int64, copy=True)
        if array.shape == (self._ev.n_tasks,) and self._routes > 1:
            # Plain assignment on a routed engine: base route everywhere.
            array = np.concatenate(
                [array, np.zeros(self._E, dtype=np.int64)]
            )
        if array.shape != (self._ev.vector_width,):
            raise MappingError(
                f"assignment must have one tile per task "
                f"({self._ev.n_tasks}), got shape {array.shape}"
            )
        self._assignment = array
        self._commits = 0
        self._rebuild_tables()
        if count:
            self._ev.evaluations += 1
        return self.score

    def _rebuild_tables(self) -> None:
        """Full fallback: recompute every per-edge table exactly."""
        a = self._assignment
        edges = self._edges
        pairs = self._model.pair_indices(a[edges[:, 0]], a[edges[:, 1]])
        if self._routes > 1:
            pairs = pairs + a[self._ev.n_tasks:]
        self._pairs = pairs.astype(np.int64)
        self._il = self._model.insertion_loss_db[self._pairs].copy()
        self._signal = self._model.signal_linear[self._pairs].copy()
        grid = self._model.coupling_linear[
            self._pairs[:, None], self._pairs[None, :]
        ]
        self._noise = np.einsum("ve,ve->v", grid, self._maskf)
        # Victim-column matrix: cols[q, v] = C[pairs[v], q] — the noise a
        # candidate aggressor pair q injects into each incumbent edge.
        # Row-contiguous, so the per-move gathers below are memcpy-like
        # row copies instead of scattered reads of the full matrix.
        self._cols_inc = np.ascontiguousarray(
            self._model.coupling_linear[self._pairs].T
        )
        # Row sums of the coupling matrix over the incumbent's pair
        # columns: R[q] = sum_e C[q, pairs[e]], the dense part of an
        # affected victim's recomputed noise row. Sparse mode consumes
        # the CSR rows (one O(nnz) stream against the incumbent's pair
        # counts); dense mode walks rows of the contiguous transpose.
        if self._csr is not None:
            # Reuse the evaluator's lazy (nnz,) scratch: delta and full
            # evaluation never run concurrently within one evaluator, so
            # one buffer serves both instead of doubling ~nnz * 8 bytes.
            if self._ev._value_scratch is None and self._csr.nnz:
                self._ev._value_scratch = np.empty(
                    self._csr.nnz, dtype=np.float64
                )
            counts = np.bincount(
                self._pairs, minlength=self._model.n_pairs
            ).astype(np.float64)
            self._rowsum = self._csr.row_dots(
                counts, scratch=self._ev._value_scratch
            )
        else:
            self._rowsum = self._model.coupling_linear_T[self._pairs].sum(axis=0)
        # Magnitude of the terms the delta updates add and subtract —
        # the cancellation guard's scale. Captured here, where the row
        # sums are exact, NOT from per-move quantities (which may
        # themselves be cancellation residue near zero).
        self._noise_scale = float(self._rowsum.max(initial=0.0))

    # -- scoring ---------------------------------------------------------------

    def score_moves(self, moves: Iterable[Move]) -> np.ndarray:
        """Score a batch of moves against the incumbent.

        Returns one score per move (same objective and same numbers as
        ``evaluate_batch`` on the moved assignments, up to float
        associativity) and charges ``len(moves)`` evaluations.
        """
        self._require_incumbent()
        moves = list(moves)
        n_moves = len(moves)
        if n_moves == 0:
            return np.empty(0, dtype=np.float64)
        tasks = np.fromiter((m[0] for m in moves), dtype=np.int64, count=n_moves)
        tiles = np.fromiter((m[1] for m in moves), dtype=np.int64, count=n_moves)
        others = np.fromiter((m[2] for m in moves), dtype=np.int64, count=n_moves)
        n_edges = self._E
        aff = self._affected_edges(tasks, others)
        # Process moves in descending order of affected-set size: each
        # chunk is padded to its own maximum, so a few high-degree moves
        # don't widen the whole batch.
        order = np.argsort(-(aff >= 0).sum(axis=1), kind="stable")
        width = aff.shape[1]
        per_move = 8 * max(1, n_edges * width) * 6
        chunk = max(1, _evaluator_module._CHUNK_BYTES // per_move)
        scores = np.empty(n_moves, dtype=np.float64)
        for start in range(0, n_moves, chunk):
            sel = order[start : start + chunk]
            il, signal, noise, _, _, _ = self._move_tables(
                tasks[sel], tiles[sel], others[sel], aff[sel]
            )
            scores[sel] = self._scores_from(
                il[:, :n_edges], signal[:, :n_edges], noise[:, :n_edges]
            )
        self._ev.evaluations += n_moves
        return scores

    def commit(self, move: Move) -> float:
        """Apply a move to the incumbent state in place; returns the new score.

        Charges no evaluation: the move was already scored when its
        neighbourhood was. Every ``refresh_interval`` commits the tables
        are rebuilt from scratch to bound accumulator drift.
        """
        self._require_incumbent()
        task, tile, other = int(move[0]), int(move[1]), int(move[2])
        il, signal, noise, aff, new_pa, _ = self._move_tables(
            np.array([task]), np.array([tile]), np.array([other])
        )
        n_edges = self._E
        valid = aff[0] >= 0
        idx = aff[0][valid]
        old_pairs = self._pairs[idx]
        self._pairs[idx] = new_pa[0][valid]
        self._il = il[0, :n_edges].copy()
        self._signal = signal[0, :n_edges].copy()
        self._noise = noise[0, :n_edges].copy()
        coupling = self._model.coupling_linear
        # The moved edges changed their pair, so their victim columns and
        # their contribution to the dense row sums must follow. Dense
        # mode reads the changed columns as rows of the contiguous
        # transpose; sparse mode (which never builds the transpose) uses
        # a strided column gather of the dense matrix — a few columns per
        # commit, so the stride cost is negligible.
        self._cols_inc[:, idx] = coupling[self._pairs[idx], :].T
        if self._csr is not None:
            self._rowsum += coupling[:, self._pairs[idx]].sum(
                axis=1, dtype=np.float64
            )
            self._rowsum -= coupling[:, old_pairs].sum(axis=1, dtype=np.float64)
        else:
            coupling_T = self._model.coupling_linear_T
            self._rowsum += coupling_T[self._pairs[idx]].sum(axis=0)
            self._rowsum -= coupling_T[old_pairs].sum(axis=0)
        if other >= 0:
            self._assignment[other] = self._assignment[task]
        self._assignment[task] = tile
        self._commits += 1
        if (
            self._refresh_interval is not None
            and self._commits % self._refresh_interval == 0
        ):
            self._rebuild_tables()
        return self.score

    # -- internals -------------------------------------------------------------

    def _affected_edges(self, tasks, others) -> np.ndarray:
        """(M, L) table of CG edges whose slot a move changes, -1 padded,
        valid entries first.

        A reroute move (``other == REROUTE``, ``task`` = gene slot
        index) affects exactly the rerouted edge; its first element
        indexes past the task range, so it reads the all-pad incident
        row and the edge is patched in afterwards.
        """
        n_tasks = self._ev.n_tasks
        is_reroute = others == REROUTE
        block1 = self._inc[np.where(is_reroute, n_tasks, tasks)]
        block2 = self._inc[np.where(others >= 0, others, n_tasks)]
        # An edge joining the two moved tasks appears in both incident
        # lists; drop the second copy so its delta isn't applied twice.
        safe2 = np.where(block2 >= 0, block2, 0)
        duplicate = (self._edges[safe2, 0] == tasks[:, None]) | (
            self._edges[safe2, 1] == tasks[:, None]
        )
        block2 = np.where((block2 >= 0) & ~duplicate, block2, -1)
        aff = np.concatenate([block1, block2], axis=1)
        aff = -np.sort(-aff, axis=1)
        if is_reroute.any():
            aff[is_reroute, 0] = tasks[is_reroute] - n_tasks
        return aff

    def _move_tables(self, tasks, tiles, others, aff=None):
        """Per-move ``(M, E+1)`` IL/signal/noise tables (column E is a
        dummy scatter target for padding entries; callers slice it off)."""
        a = self._assignment
        n_edges = self._E
        coupling = self._model.coupling_linear
        n_moves = len(tasks)

        if aff is None:
            aff = self._affected_edges(tasks, others)
        # Compact: trailing all-pad columns dropped.
        width = max(1, int((aff >= 0).sum(axis=1).max()))
        aff = aff[:, :width]
        pad = aff < 0
        aff0 = np.where(pad, 0, aff)

        src = self._edges[aff0, 0]
        dst = self._edges[aff0, 1]
        t = tasks[:, None]
        o = others[:, None]
        target = tiles[:, None]
        task_tile = a[tasks][:, None]
        swap = o >= 0
        src_tiles = np.where(
            src == t, target, np.where(swap & (src == o), task_tile, a[src])
        )
        dst_tiles = np.where(
            dst == t, target, np.where(swap & (dst == o), task_tile, a[dst])
        )
        old_pa = self._pairs[aff0]
        if self._routes == 1:
            new_pa = np.where(pad, old_pa, src_tiles * self._n_tiles + dst_tiles)
        else:
            # Mapping moves carry the edge's gene to its new tile pair;
            # a reroute keeps the pair and overwrites the gene.
            new_pa = np.where(
                pad,
                old_pa,
                (src_tiles * self._n_tiles + dst_tiles) * self._routes
                + old_pa % self._routes,
            )
            is_reroute = others == REROUTE
            if is_reroute.any():
                rr = np.nonzero(is_reroute)[0]
                rr_new = (
                    old_pa[rr] // self._routes
                ) * self._routes + tiles[rr][:, None]
                new_pa[rr] = np.where(pad[rr], old_pa[rr], rr_new)

        # Unaffected victims: aggressor terms of the affected edges change
        # under the victim's unchanged pair. Both coupling gathers are
        # contiguous row copies of the per-incumbent victim-column matrix
        # (new aggressor pair row minus old aggressor pair row). Padding
        # entries contribute 0 because their new pair equals their old
        # one.
        diff = self._cols_inc[new_pa] - self._cols_inc[old_pa]  # (M, L, E)
        base = np.einsum("mle,mle->me", self._maskfT[aff0], diff)
        noise = np.empty((n_moves, n_edges + 1), dtype=base.dtype)
        noise[:, :n_edges] = self._noise[None, :] + base

        # Affected victims: recompute the full masked row sum, but as the
        # dense precomputed row sum R[new pair] plus two sparse terms —
        # the columns the move itself displaced (cross terms among the
        # affected edges; zero for padding, whose new pair is its old
        # one), minus the victim's serialized/self columns at their moved
        # pairs. Padding and duplicates scatter into the dummy column.
        scatter = np.where(pad, n_edges, aff)
        pairs_moved = np.empty((n_moves, n_edges + 1), dtype=np.int64)
        pairs_moved[:, :n_edges] = self._pairs[None, :]
        pairs_moved[:, n_edges] = 0  # dummy column: weight-0 gathers land here
        np.put_along_axis(pairs_moved, scatter, new_pa, axis=1)
        cross = (
            coupling[new_pa[:, :, None], new_pa[:, None, :]]
            - coupling[new_pa[:, :, None], old_pa[:, None, :]]
        ).sum(axis=2)
        conf = self._conf_row[aff0]  # (M, L, K) serialized columns, pad -> E
        conf_pairs = pairs_moved[
            np.arange(n_moves)[:, None, None], conf
        ]
        conf_term = np.einsum(
            "mlk,mlk->ml",
            coupling[new_pa[:, :, None], conf_pairs],
            self._conf_w[aff0],
        )
        dense = self._rowsum[new_pa]
        full = dense + cross - conf_term
        np.put_along_axis(noise, scatter, full, axis=1)

        # Cancellation guard: both the incremental update and the
        # dense-minus-sparse reconstruction subtract equal-magnitude
        # terms, so a victim whose true masked noise is exactly zero
        # (isolated communications) can come out as ~1e-19 residue — and
        # the SNR cap in _scores_from keys on noise > 0. Any entry that
        # is tiny relative to the magnitude of the summed terms (the
        # exact row-sum scale captured at the last rebuild) is recomputed
        # as the cancellation-free masked sum of non-negative couplings,
        # which is exactly 0.0 when the true noise is.
        tolerance = 1e-12 * self._noise_scale
        suspect_m, suspect_v = np.nonzero(noise[:, :n_edges] <= tolerance)
        if len(suspect_m):
            victim_pairs = pairs_moved[suspect_m, suspect_v]
            grid_rows = coupling[
                victim_pairs[:, None], pairs_moved[suspect_m, :n_edges]
            ]
            noise[suspect_m, suspect_v] = np.einsum(
                "ke,ke->k", grid_rows, self._maskf[suspect_v]
            )

        il = np.empty((n_moves, n_edges + 1), dtype=np.float64)
        il[:, :n_edges] = self._il[None, :]
        np.put_along_axis(il, scatter, self._model.insertion_loss_db[new_pa], axis=1)
        signal = np.empty((n_moves, n_edges + 1), dtype=np.float64)
        signal[:, :n_edges] = self._signal[None, :]
        np.put_along_axis(signal, scatter, self._model.signal_linear[new_pa], axis=1)
        return il, signal, noise, aff, new_pa, scatter

    def _scores_from(self, il, signal, noise) -> np.ndarray:
        """Objective scores from (M, E) tables — mirrors ``_tables_from_pairs``.

        Only the objective's own table is materialized (the spec's
        ``table`` name, resolved at construction); every transform below
        is row-local, so the scores are bit-identical to the full
        pipeline's for the same rows.
        """
        if self._score_table == "worst_il":
            return il.min(axis=1)
        if self._score_table == "weighted_il":
            return _row_sum(il * self._bw)
        if self._score_table == "laser_power":
            return self._ev._laser_power_table(il)
        with np.errstate(divide="ignore"):
            snr = 10.0 * np.log10(signal / np.where(noise > 0.0, noise, 1.0))
        snr = np.where(noise > 0.0, snr, SNR_CAP_DB)
        if self._score_table == "mean_snr":
            return _row_sum(snr) / snr.shape[1]
        return snr.min(axis=1)
