"""The Mapping Evaluator (paper Fig. 1, box 4).

Computes, for one mapping or a batch of mappings, the worst-case insertion
loss (eq. 3) and the worst-case SNR (eq. 4) of every CG edge, using the
precomputed :class:`~repro.models.coupling.CouplingModel` matrices — a
mapping evaluation reduces to numpy gathers, so the optimizers and the
100,000-random-mapping experiment stay fast.

Noise aggregation honours the concurrency model of DESIGN.md §3: the noise
of a victim edge sums the couplings from every other CG edge except those
sharing the victim's source task (one transmitter) or destination task
(one receiver), which the hardware serializes.

The evaluator also counts evaluations: the paper compares optimization
algorithms under the same search effort, and the evaluation count is this
reproduction's effort currency (DESIGN.md §4).

This is the *full* evaluator: every candidate pays the O(E^2) masked
noise contraction regardless of how similar it is to the previous one.
Local-search strategies exploring one-move neighbourhoods should prefer
:class:`~repro.core.delta.DeltaEvaluator`, which wraps this class,
maintains per-edge state for one incumbent, and scores a move in
O(E * affected edges) — falling back to the full path here on resets,
periodic refreshes, and ``use_delta=False``. Evaluation counts are
charged to this evaluator either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.appgraph.graph import CommunicationGraph
from repro.core.mapping import Mapping
from repro.core.objectives import SNR_CAP_DB, Objective
from repro.core.problem import MappingProblem
from repro.errors import MappingError
from repro.models.coupling import CouplingModel

__all__ = ["EdgeMetrics", "MappingMetrics", "BatchMetrics", "MappingEvaluator"]

#: Target bytes per evaluation chunk (keeps the (M, E, E) gather bounded).
_CHUNK_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class EdgeMetrics:
    """Per-edge physical metrics of one evaluated mapping."""

    insertion_loss_db: np.ndarray
    snr_db: np.ndarray
    noise_linear: np.ndarray
    signal_linear: np.ndarray


@dataclass(frozen=True)
class MappingMetrics:
    """Scalar metrics of one evaluated mapping."""

    worst_insertion_loss_db: float
    worst_snr_db: float
    mean_snr_db: float
    weighted_loss_db: float
    score: float
    edges: Optional[EdgeMetrics] = None


@dataclass(frozen=True)
class BatchMetrics:
    """Vector metrics of a batch of evaluated mappings."""

    worst_insertion_loss_db: np.ndarray
    worst_snr_db: np.ndarray
    score: np.ndarray


class MappingEvaluator:
    """Matrix-backed evaluator for a :class:`MappingProblem`."""

    def __init__(self, problem: MappingProblem, dtype=np.float64) -> None:
        self.problem = problem
        self.cg = problem.cg
        self.network = problem.network
        self.objective = problem.objective
        self.model = CouplingModel.for_network(problem.network, dtype=dtype)
        self._edges = self.cg.edge_array()
        self._mask = self.cg.serialization_mask()
        # The noise contraction needs the mask at the coupling dtype;
        # cast once here instead of once per evaluated chunk.
        self._mask_linear = self._mask.astype(self.model.coupling_linear.dtype)
        self._bandwidths = self.cg.bandwidth_array()
        self._bandwidth_weights = self._bandwidths / self._bandwidths.sum()
        self.evaluations = 0

    # -- batch evaluation ---------------------------------------------------------

    def evaluate_batch(self, assignments: np.ndarray) -> BatchMetrics:
        """Evaluate a (M, n_tasks) batch of assignments.

        Assignments are trusted to be valid (injective, in range); use
        :meth:`evaluate` / :class:`Mapping` at API boundaries.
        """
        assignments = np.atleast_2d(np.asarray(assignments, dtype=np.int64))
        n_mappings = assignments.shape[0]
        if assignments.shape[1] != self.cg.n_tasks:
            raise MappingError(
                f"batch has {assignments.shape[1]} tasks per mapping, "
                f"expected {self.cg.n_tasks}"
            )
        chunk = self._chunk_rows()
        worst_il = np.empty(n_mappings, dtype=np.float64)
        worst_snr = np.empty(n_mappings, dtype=np.float64)
        mean_snr = np.empty(n_mappings, dtype=np.float64)
        weighted_il = np.empty(n_mappings, dtype=np.float64)
        for start in range(0, n_mappings, chunk):
            stop = min(start + chunk, n_mappings)
            self._evaluate_chunk(
                assignments[start:stop],
                worst_il[start:stop],
                worst_snr[start:stop],
                mean_snr[start:stop],
                weighted_il[start:stop],
            )
        self.evaluations += n_mappings
        score = self._score(worst_il, worst_snr, mean_snr, weighted_il)
        return BatchMetrics(worst_il, worst_snr, score)

    def _chunk_rows(self) -> int:
        """Mappings per chunk keeping the (M, E, E) gather within budget.

        Sized by the coupling matrix's actual element width, so float32
        models get twice the rows of float64 under the same byte budget.
        """
        n_edges = len(self._edges)
        itemsize = self.model.coupling_linear.dtype.itemsize
        return max(1, _CHUNK_BYTES // max(1, itemsize * n_edges * n_edges))

    def _edge_tables(self, assignments: np.ndarray):
        """(il, snr, noise, signal) tables of shape (M, E) for a chunk."""
        src_tiles = assignments[:, self._edges[:, 0]]
        dst_tiles = assignments[:, self._edges[:, 1]]
        pairs = self.model.pair_indices(src_tiles, dst_tiles)
        il = self.model.insertion_loss_db[pairs]
        signal = self.model.signal_linear[pairs]
        grid = self.model.coupling_linear[pairs[:, :, None], pairs[:, None, :]]
        noise = np.einsum("mve,ve->mv", grid, self._mask_linear)
        with np.errstate(divide="ignore"):
            snr = 10.0 * np.log10(signal / np.where(noise > 0.0, noise, 1.0))
        snr = np.where(noise > 0.0, snr, SNR_CAP_DB)
        return il, snr, noise, signal

    def _evaluate_chunk(self, assignments, out_il, out_snr, out_mean, out_weighted):
        il, snr, _noise, _signal = self._edge_tables(assignments)
        out_il[:] = il.min(axis=1)
        out_snr[:] = snr.min(axis=1)
        out_mean[:] = snr.mean(axis=1)
        out_weighted[:] = il @ self._bandwidth_weights

    def _score(self, worst_il, worst_snr, mean_snr, weighted_il) -> np.ndarray:
        if self.objective is Objective.SNR:
            return worst_snr
        if self.objective is Objective.INSERTION_LOSS:
            return worst_il
        if self.objective is Objective.MEAN_SNR:
            return mean_snr
        return weighted_il

    # -- single evaluation -----------------------------------------------------------

    def evaluate(
        self, mapping: Union[Mapping, np.ndarray], with_edges: bool = False
    ) -> MappingMetrics:
        """Evaluate one mapping, optionally keeping per-edge detail."""
        if isinstance(mapping, Mapping):
            assignment = mapping.assignment
        else:
            assignment = Mapping(
                self.cg, np.asarray(mapping), self.problem.n_tiles
            ).assignment
        batch = assignment[None, :]
        il, snr, noise, signal = self._edge_tables(batch)
        self.evaluations += 1
        worst_il = float(il.min())
        worst_snr = float(snr.min())
        mean_snr = float(snr.mean())
        weighted = float(il[0] @ self._bandwidth_weights)
        score = float(
            self._score(
                np.array([worst_il]),
                np.array([worst_snr]),
                np.array([mean_snr]),
                np.array([weighted]),
            )[0]
        )
        edges = None
        if with_edges:
            edges = EdgeMetrics(il[0].copy(), snr[0].copy(), noise[0].copy(), signal[0].copy())
        return MappingMetrics(worst_il, worst_snr, mean_snr, weighted, score, edges)

    # -- conveniences ------------------------------------------------------------------

    @property
    def n_tiles(self) -> int:
        return self.problem.n_tiles

    @property
    def n_tasks(self) -> int:
        return self.cg.n_tasks

    def reset_count(self) -> None:
        """Zero the evaluation counter (used between algorithm runs)."""
        self.evaluations = 0
