"""The Mapping Evaluator (paper Fig. 1, box 4).

Computes, for one mapping or a batch of mappings, the worst-case insertion
loss (eq. 3) and the worst-case SNR (eq. 4) of every CG edge, using the
precomputed :class:`~repro.models.coupling.CouplingModel` matrices — a
mapping evaluation reduces to numpy gathers, so the optimizers and the
100,000-random-mapping experiment stay fast.

Noise aggregation honours the concurrency model of DESIGN.md §3: the noise
of a victim edge sums the couplings from every other CG edge except those
sharing the victim's source task (one transmitter) or destination task
(one receiver), which the hardware serializes.

The evaluator also counts evaluations: the paper compares optimization
algorithms under the same search effort, and the evaluation count is this
reproduction's effort currency (DESIGN.md §4).

This is the *full* evaluator: every candidate pays the O(E^2) masked
noise contraction regardless of how similar it is to the previous one.
Local-search strategies exploring one-move neighbourhoods should prefer
:class:`~repro.core.delta.DeltaEvaluator`, which wraps this class,
maintains per-edge state for one incumbent, and scores a move in
O(E * affected edges) — falling back to the full path here on resets,
periodic refreshes, and ``use_delta=False``. Evaluation counts are
charged to this evaluator either way.

Dense and sparse contraction backends (PR 4)
--------------------------------------------
The noise contraction has two interchangeable implementations, selected
by the ``backend`` constructor argument:

* ``"dense"`` gathers the ``(M, E, E)`` coupling grid out of the dense
  ``O(n_pairs^2)`` matrix and contracts it against the serialization
  mask — best when the communication graph has few edges relative to the
  coupling matrix's nonzero count (every paper benchmark).
* ``"sparse"`` streams the CSR rows of the coupling matrix
  (:meth:`repro.models.coupling.CouplingModel.csr`) once per mapping:
  per victim edge it sums only that pair's nonzero aggressor columns,
  restricted to the pairs the mapping actually uses, then subtracts the
  few serialization-mask conflicts (with a cancellation guard that keeps
  exactly-zero noise exact). Cost is ``O(nnz)`` per mapping instead of
  ``O(E^2)`` gathers, which wins for edge-dense graphs — uniform /
  all-to-all traffic on 8x8+ meshes — where the dense grid barely fits
  in memory.
* ``"auto"`` (the default) measures the model's nonzero count and picks
  sparse when ``SPARSE_AUTO_FACTOR * E^2 >= nnz`` (the empirically
  calibrated crossover of the two kernels' per-mapping cost).

Either backend is bit-identical to itself for any ``n_workers`` (all
reductions are row-local), and the two agree to tight tolerance — see
``tests/core/test_sparse_backend.py``.

Sharded and asynchronous batches (PR 3)
---------------------------------------
:meth:`MappingEvaluator.evaluate_batch` accepts ``n_workers``: with more
than one worker the assignment matrix is split into row shards scored by
a persistent process pool (:mod:`repro.core.pool`) and merged into one
:class:`BatchMetrics` that is **bit-identical to the sequential result
for any worker count** — every reduction in the metric pipeline runs
within a row, so shard boundaries cannot change values.
:meth:`MappingEvaluator.submit_batch` is the asynchronous variant: it
returns a :class:`PendingBatch` immediately, letting callers (random
search, the GA, the Fig. 3 distribution sweep) generate the next batch
while workers score the current one. Evaluation counts are charged when
a pending batch's result is collected, so collection order reproduces
the sequential counter exactly.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.appgraph.graph import CommunicationGraph
from repro.core.executor import parse_executor_spec
from repro.core.mapping import Mapping
from repro.core.objectives import (
    BASE_TABLES,
    SNR_CAP_DB,
    VARIATION_TABLES,
    spec_for,
)
from repro.core.problem import MappingProblem
from repro.errors import MappingError
from repro.models.coupling import CouplingModel

__all__ = [
    "EdgeMetrics",
    "MappingMetrics",
    "BatchMetrics",
    "PendingBatch",
    "MappingEvaluator",
]

#: Target bytes per evaluation chunk (keeps the (M, E, E) gather bounded).
_CHUNK_BYTES = 64 * 1024 * 1024

#: Minimum rows per worker shard: below this the process round-trip costs
#: more than the numpy work it ships, so batch submission falls back to
#: the inline path (results are bit-identical either way).
MIN_SHARD_ROWS = 64

#: Recognized contraction backends.
BACKENDS = ("auto", "dense", "sparse")

def _row_sum(table: np.ndarray) -> np.ndarray:
    """Sum over the last axis with a batch-size-independent order.

    numpy's native last-axis reduction (``table.sum(axis=-1)``) blocks
    its pairwise accumulation differently depending on the *leading*
    dimensions, so the same row summed inside a 1-row chunk and inside a
    64-row chunk can disagree in the last ULP — which would break the
    bit-identical-for-any-chunk/shard contract for every sum-based
    metric (mean SNR, the bandwidth-weighted loss, the laser-power
    budget, the robust aggregate). One vectorized add per reduced column
    accumulates strictly left to right: the order depends only on the
    reduced width, never on how many rows ride along.
    """
    out = np.zeros(table.shape[:-1], dtype=np.float64)
    for k in range(table.shape[-1]):
        out += table[..., k]
    return out


#: ``backend="auto"`` picks the sparse contraction when
#: ``SPARSE_AUTO_FACTOR * E^2 >= nnz``: the sparse kernel streams ~nnz
#: coupling values per mapping while the dense kernel gathers ~E^2, and
#: a streamed element costs roughly half a gathered one (measured on the
#: 8x8-mesh races of ``benchmarks/bench_sparse_backend.py``).
SPARSE_AUTO_FACTOR = 2.0


@dataclass(frozen=True)
class EdgeMetrics:
    """Per-edge physical metrics of one evaluated mapping."""

    insertion_loss_db: np.ndarray
    snr_db: np.ndarray
    noise_linear: np.ndarray
    signal_linear: np.ndarray


@dataclass(frozen=True)
class MappingMetrics:
    """Scalar metrics of one evaluated mapping.

    ``laser_power_db`` is the negated total laser-power budget (the
    ``laser_power`` objective's score; always computed).
    ``robust_snr_db`` is the variation-aggregated worst-case SNR — only
    present when the problem carries a variation plan.
    """

    worst_insertion_loss_db: float
    worst_snr_db: float
    mean_snr_db: float
    weighted_loss_db: float
    score: float
    edges: Optional[EdgeMetrics] = None
    laser_power_db: Optional[float] = None
    robust_snr_db: Optional[float] = None


@dataclass(frozen=True)
class BatchMetrics:
    """Vector metrics of a batch of evaluated mappings."""

    worst_insertion_loss_db: np.ndarray
    worst_snr_db: np.ndarray
    score: np.ndarray


class PendingBatch:
    """Handle for an in-flight (possibly sharded) batch evaluation.

    Returned by :meth:`MappingEvaluator.submit_batch`. Holds either the
    already-computed metric tables (eager path: one worker, or a batch
    too small to shard) or one future per row shard submitted to the
    persistent pool.

    Evaluation counting happens in :meth:`result`, exactly once per
    batch: callers that pipeline submissions therefore reproduce the
    sequential evaluation counter — and so the optimizers' convergence
    histories — bit for bit, as long as they collect results in
    submission order.
    """

    def __init__(
        self,
        evaluator,
        n_mappings,
        tables=None,
        futures=None,
        pool=None,
        resubmit=None,
    ):
        self._evaluator = evaluator
        self._n = int(n_mappings)
        self._tables = tables
        self._futures = futures
        self._pool = pool  # keeps the pool referenced while in flight
        self._resubmit = resubmit  # re-dispatch hook for executor failures
        self._retried = False
        self._metrics: Optional[BatchMetrics] = None

    def done(self) -> bool:
        """Whether :meth:`result` would return without blocking."""
        if self._metrics is not None or self._futures is None:
            return True
        return all(future.done() for future in self._futures)

    def tables(self):
        """Collect (blocking if needed) the raw per-row metric tables.

        Returns
        -------
        tuple of numpy.ndarray
            Per-row metric vectors, one per name in the evaluator's
            :attr:`MappingEvaluator.table_names` (the objective-free
            tables the pool workers return). Unlike :meth:`result` this
            charges **nothing** to the evaluator's evaluation counter:
            it is the seam the service layer's cross-request batch
            coalescer uses to score one merged flight and re-split it
            per request, each request applying its own objective and
            charging its own evaluator.
        """
        if self._tables is None:
            if self._futures is None:
                raise RuntimeError(
                    "batch tables were already consumed by result()"
                )
            parts = self._collect()
            self._tables = tuple(
                np.concatenate(columns) for columns in zip(*parts)
            )
            self._futures = None
        return self._tables

    def _collect(self):
        """Gather shard results, resubmitting once on executor failure.

        Only *executor-level* failures (the backend broke — a killed
        pool worker, exhausted remote retries) trigger the resubmission,
        and only once: a deterministic task-level exception would fail
        identically on a fresh pool, so it surfaces immediately. The
        shards are pure functions of their snapshotted rows, so a
        retried batch is bit-identical to an unretried one.
        """
        try:
            return [future.result() for future in self._futures]
        except Exception as error:
            executor_failed = isinstance(error, BrokenExecutor) or (
                self._pool is not None and self._pool.broken
            )
            if self._resubmit is None or self._retried or not executor_failed:
                raise
            self._retried = True
            self._futures, self._pool = self._resubmit(retrying=True)
            return [future.result() for future in self._futures]

    def result(self) -> BatchMetrics:
        """Collect (blocking if needed) and return the batch metrics.

        Returns
        -------
        BatchMetrics
            Per-row worst insertion loss, worst SNR and objective score,
            bit-identical to the sequential ``evaluate_batch`` result.

        Notes
        -----
        The first call charges the batch to the evaluator's evaluation
        counter; later calls return the cached metrics without
        re-charging.
        """
        if self._metrics is None:
            tables = self.tables()
            self._tables = None
            self._evaluator.evaluations += self._n
            score = self._evaluator._score_tables(tables)
            # worst_il / worst_snr are the first two wire columns in
            # every table set (BASE_TABLES order).
            self._metrics = BatchMetrics(tables[0], tables[1], score)
        return self._metrics


class _SparseModelState:
    """Per-sample CSR state for sparse-backend variation scoring.

    The weight/row-dot scratch buffers are shared across models (they
    are sized by ``n_pairs``, identical for every sample of one
    topology); only the CSR arrays and the per-CSR value scratch —
    sized by that sample's nonzero count — are per-model.
    """

    __slots__ = ("csr", "values", "coupling")

    def __init__(self, model) -> None:
        self.csr = model.csr()
        self.values = (
            np.empty(self.csr.nnz, dtype=np.float64) if self.csr.nnz else None
        )
        self.coupling = model.coupling_linear


class MappingEvaluator:
    """Matrix-backed evaluator for a :class:`MappingProblem`.

    Reduces a mapping evaluation to numpy gathers over the precomputed
    :class:`~repro.models.coupling.CouplingModel` matrices, and counts
    every evaluation (the reproduction's search-effort currency).

    Parameters
    ----------
    problem : MappingProblem
        The problem instance (CG + network + objective) to evaluate for.
    dtype : numpy dtype-like, optional
        Dtype of the coupling matrix (default ``float64``; ``float32``
        halves the memory of the O(n_pairs^2) matrix at reduced noise
        precision).
    n_workers : int, optional
        Default shard width of :meth:`evaluate_batch` /
        :meth:`submit_batch` (default 1, fully sequential). Any value
        yields bit-identical metrics; larger values only pay off for
        large batches (thousands of rows).
    backend : {"auto", "dense", "sparse"}, optional
        Noise-contraction implementation (default ``"auto"``: measured
        density decides — see the module docstring). The resolved choice
        is exposed as :attr:`backend` (never ``"auto"``).
    model_cache_dir : str, optional
        On-disk coupling-model cache directory (default: the process
        default of :func:`repro.models.coupling.get_model_cache_dir`).
        A warm cache turns the O(n_pairs^2) model build into a
        memory-mapped load; worker pools created by this evaluator
        inherit the directory.
    executor : str, optional
        Execution backend spec for sharded batches — ``"local"``
        (persistent process pool, the default), ``"inline"`` (serial,
        zero processes) or ``"tcp://HOST:PORT"`` (remote workers; see
        :mod:`repro.distributed`). Any backend yields bit-identical
        metrics; the spec only decides where shards run.

    Attributes
    ----------
    evaluations : int
        Number of mapping evaluations charged so far (see
        :meth:`reset_count`).
    backend : str
        The resolved contraction backend, ``"dense"`` or ``"sparse"``.
    """

    def __init__(
        self,
        problem: MappingProblem,
        dtype=np.float64,
        n_workers: int = 1,
        backend: str = "auto",
        model_cache_dir: Optional[str] = None,
        executor: str = "local",
    ) -> None:
        self.problem = problem
        self.executor = parse_executor_spec(executor)
        self.cg = problem.cg
        self.network = problem.network
        self.objective = problem.objective
        self.routes = problem.routes
        self.dtype = np.dtype(dtype)
        # Resolve the process-wide default eagerly so worker pools are
        # initialized with the same cache directory this evaluator used.
        from repro.models.coupling import get_model_cache_dir

        self.model_cache_dir = (
            model_cache_dir
            if model_cache_dir is not None
            else get_model_cache_dir()
        )
        self.model = CouplingModel.for_network(
            problem.network,
            dtype=dtype,
            cache_dir=self.model_cache_dir,
            routes=self.routes,
        )
        self._edges = self.cg.edge_array()
        self._route_counts: Optional[np.ndarray] = None  # lazy, routes > 1
        self._mask = self.cg.serialization_mask()
        # The noise contraction needs the mask at the coupling dtype;
        # cast once here instead of once per evaluated chunk.
        self._mask_linear = self._mask.astype(self.model.coupling_linear.dtype)
        self._bandwidths = self.cg.bandwidth_array()
        self._bandwidth_weights = self._bandwidths / self._bandwidths.sum()
        self.n_workers = self._check_workers(n_workers)
        self.backend = self._resolve_backend(backend)
        if self.backend == "sparse":
            self._csr = self.model.csr()
            self._conf_idx, self._conf_w = self._conflict_tables()
            n_pairs = self.model.n_pairs
            self._w_scratch = np.zeros(n_pairs, dtype=np.float64)
            self._rowdot_scratch = np.zeros(n_pairs, dtype=np.float64)
            self._value_scratch: Optional[np.ndarray] = None  # (nnz,), lazy
        # Variation-robust scoring: one coupling model per perturbed
        # device sample, each resolved through the same process/disk
        # cache chain as the nominal model (the perturbed params' content
        # hashes key distinct cache entries), so repeated sweeps and
        # worker hydrations never rebuild a sample they have seen.
        self.variation = problem.variation
        self._sample_models: tuple = ()
        self._sample_sparse: tuple = ()
        if self.variation is not None:
            sample_params = self.variation.samples(problem.network.params)
            self._sample_models = tuple(
                CouplingModel.for_network(
                    problem.network.with_params(params),
                    dtype=dtype,
                    cache_dir=self.model_cache_dir,
                    routes=self.routes,
                )
                for params in sample_params
            )
            if self.backend == "sparse":
                self._sample_sparse = tuple(
                    _SparseModelState(model) for model in self._sample_models
                )
        #: Names of the per-row metric tables this evaluator produces, in
        #: wire order (grows the ``robust_snr`` column when the problem
        #: carries a variation plan).
        self.table_names = (
            BASE_TABLES if self.variation is None else VARIATION_TABLES
        )
        score_table = spec_for(self.objective).table
        if score_table not in self.table_names:
            raise MappingError(
                f"objective {self.objective.value!r} needs the "
                f"{score_table!r} metric table, which this problem does "
                "not produce (missing variation plan)"
            )
        self._score_index = self.table_names.index(score_table)
        self.evaluations = 0

    @staticmethod
    def _check_workers(n_workers: int) -> int:
        n_workers = int(n_workers)
        if n_workers < 1:
            raise MappingError(f"n_workers must be >= 1, got {n_workers}")
        return n_workers

    def _resolve_backend(self, backend: str) -> str:
        """Validate ``backend`` and resolve ``"auto"`` by measured density."""
        if backend not in BACKENDS:
            raise MappingError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if backend != "auto":
            return backend
        n_edges = len(self._edges)
        if SPARSE_AUTO_FACTOR * n_edges * n_edges >= self.model.nnz:
            return "sparse"
        return "dense"

    def _conflict_tables(self):
        """Padded per-victim tables of serialized aggressor edges.

        Row ``v`` lists the aggressor edge indices ``a`` with
        ``mask[v, a] == 0`` (the serialized edges plus ``v`` itself) —
        the only columns by which a victim's masked noise differs from
        the plain sum over the mapping's pairs. Padding entries point at
        edge 0 and carry weight 0, so vectorized gathers stay rectangular.
        """
        conflicts = [np.nonzero(~self._mask[v])[0] for v in range(len(self._edges))]
        width = max(1, max((len(c) for c in conflicts), default=1))
        conf_idx = np.zeros((len(conflicts), width), dtype=np.int64)
        conf_w = np.zeros((len(conflicts), width), dtype=np.float64)
        for v, c in enumerate(conflicts):
            conf_idx[v, : len(c)] = c
            conf_w[v, : len(c)] = 1.0
        return conf_idx, conf_w

    # -- batch evaluation ---------------------------------------------------------

    def _check_batch(self, assignments: np.ndarray) -> np.ndarray:
        """Coerce a batch to design-vector rows (int64), or raise.

        At ``routes == 1`` rows are plain ``(M, n_tasks)`` assignments.
        Routed evaluators additionally accept the widened
        ``(M, n_tasks + n_edges)`` joint vectors, and pad plain
        assignment rows with zero route genes (gene 0 is the base route,
        so a padded row scores exactly like the mapping-only candidate).
        """
        assignments = np.atleast_2d(np.asarray(assignments, dtype=np.int64))
        width = assignments.shape[1]
        if width == self.cg.n_tasks:
            if self.routes > 1:
                genes = np.zeros(
                    (assignments.shape[0], self.n_edges), dtype=np.int64
                )
                assignments = np.hstack([assignments, genes])
            return assignments
        if self.routes > 1 and width == self.cg.n_tasks + self.n_edges:
            return assignments
        expected = (
            f"{self.cg.n_tasks}"
            if self.routes == 1
            else f"{self.cg.n_tasks} or {self.cg.n_tasks + self.n_edges}"
        )
        raise MappingError(
            f"batch has {width} tasks per mapping, expected {expected}"
        )

    def evaluate_batch(
        self,
        assignments: np.ndarray,
        n_workers: Optional[int] = None,
        min_shard_rows: Optional[int] = None,
    ) -> BatchMetrics:
        """Evaluate a ``(M, n_tasks)`` batch of assignments.

        Parameters
        ----------
        assignments : numpy.ndarray
            Batch of assignments, one row per mapping. Rows are trusted
            to be valid (injective, in range); use :meth:`evaluate` /
            :class:`~repro.core.mapping.Mapping` at API boundaries.
        n_workers : int, optional
            Number of row shards to score in the persistent process pool
            (default: the evaluator's ``n_workers``). With one worker —
            or a batch too small to shard — evaluation runs inline.
        min_shard_rows : int, optional
            Floor on rows per shard (default :data:`MIN_SHARD_ROWS`):
            when the batch cannot give at least this many rows to two
            shards it runs inline instead, because the process
            round-trip would cost more than the numpy work it ships.
            Pass 1 to force sharding of any batch.

        Returns
        -------
        BatchMetrics
            Per-row worst insertion loss, worst SNR and objective score.

        Notes
        -----
        **Bit-identical for any** ``n_workers``: every reduction (noise
        contraction, per-row minima/means, the bandwidth-weighted dot
        product) runs within a row, so splitting rows across workers
        cannot change any result, only the wall-clock time. The batch is
        charged to :attr:`evaluations` exactly once either way.
        """
        return self.submit_batch(
            assignments, n_workers=n_workers, min_shard_rows=min_shard_rows
        ).result()

    def submit_batch(
        self,
        assignments: np.ndarray,
        n_workers: Optional[int] = None,
        min_shard_rows: Optional[int] = None,
    ) -> PendingBatch:
        """Submit a batch for evaluation, returning immediately.

        The asynchronous companion of :meth:`evaluate_batch`: with more
        than one worker the row shards are queued on the persistent pool
        and scored in the background, so the caller can generate the next
        candidate batch while this one is being evaluated (random search,
        the GA and the Fig. 3 sweep all pipeline this way — one slow
        shard never stalls candidate generation).

        Parameters
        ----------
        assignments : numpy.ndarray
            Batch of assignments, one row per mapping (validated like
            :meth:`evaluate_batch`; the data is snapshotted at submit
            time, so the caller may reuse its buffer afterwards).
        n_workers : int, optional
            Shard width override (default: the evaluator's
            ``n_workers``).
        min_shard_rows : int, optional
            Rows-per-shard floor, as in :meth:`evaluate_batch`.

        Returns
        -------
        PendingBatch
            Handle whose :meth:`PendingBatch.result` yields the
            :class:`BatchMetrics`, bit-identical to the sequential path,
            and charges :attr:`evaluations` on first collection.
        """
        assignments = self._check_batch(assignments)
        n_mappings = assignments.shape[0]
        workers = (
            self.n_workers if n_workers is None else self._check_workers(n_workers)
        )
        floor = (
            MIN_SHARD_ROWS if min_shard_rows is None else max(1, int(min_shard_rows))
        )
        n_shards = min(workers, n_mappings // floor)
        if n_shards < 2:
            return PendingBatch(
                self, n_mappings, tables=self._evaluate_rows(assignments)
            )
        from repro.core import parallel as _parallel
        from repro.core import pool as _pool

        bounds = np.linspace(0, n_mappings, n_shards + 1).astype(np.int64)
        # .copy(): executors pickle lazily in a feeder thread, so snapshot
        # each shard at submit time — callers may keep writing other rows
        # of their buffer immediately.
        shards = [
            assignments[start:stop].copy()
            for start, stop in zip(bounds[:-1], bounds[1:])
        ]

        def dispatch(retrying: bool = False):
            """Submit every shard, surviving a concurrently broken pool.

            ``get_pool`` hands back a fresh backend whenever the cached
            one broke or was released, so a bounded number of attempts
            absorbs both a worker crash between batches and a
            ``release_pools`` racing this submission from another
            thread. Nothing has produced results yet at submit time, so
            re-dispatching cannot change any value.
            """
            last_error = None
            for _attempt in range(3):
                pool = _pool.get_pool(
                    self.problem,
                    self.dtype,
                    workers,
                    self.backend,
                    model_cache_dir=self.model_cache_dir,
                    executor=self.executor,
                )
                if retrying:
                    pool.note_retry(len(shards))
                try:
                    futures = pool.map_shards(
                        _parallel.evaluate_shard_task, shards
                    )
                except Exception as error:  # noqa: BLE001 — retried bounded
                    last_error = error
                    continue
                return futures, pool
            raise last_error

        futures, pool = dispatch()
        return PendingBatch(
            self, n_mappings, futures=futures, pool=pool, resubmit=dispatch
        )

    def _evaluate_rows(self, assignments: np.ndarray):
        """Score validated rows sequentially, without counting.

        Returns the per-row metric tables named by :attr:`table_names`
        (in that order); used by the inline path, and by pool workers
        scoring one shard each (objective-free — the score is applied by
        whoever collects the tables).
        """
        n_mappings = assignments.shape[0]
        chunk = self._chunk_rows()
        out = {
            name: np.empty(n_mappings, dtype=np.float64)
            for name in self.table_names
        }
        for start in range(0, n_mappings, chunk):
            stop = min(start + chunk, n_mappings)
            self._evaluate_chunk(
                assignments[start:stop],
                {name: column[start:stop] for name, column in out.items()},
            )
        return tuple(out[name] for name in self.table_names)

    def _chunk_rows(self) -> int:
        """Mappings per chunk keeping per-chunk transients within budget.

        Dense: the (M, E, E) gather dominates, sized by the coupling
        matrix's actual element width (float32 models get twice the rows
        of float64). Sparse: the per-mapping matvec reuses fixed scratch
        buffers, so only the (M, E, K) conflict gather scales with the
        chunk.
        """
        n_edges = len(self._edges)
        itemsize = self.model.coupling_linear.dtype.itemsize
        if self.backend == "sparse":
            width = max(1, n_edges * self._conf_idx.shape[1] * 3)
            return max(1, _CHUNK_BYTES // (itemsize * width))
        return max(1, _CHUNK_BYTES // max(1, itemsize * n_edges * n_edges))

    def _pair_table(self, assignments: np.ndarray) -> np.ndarray:
        """(M, E) flat model-slot indices of a chunk of design vectors.

        Pair indices depend only on the mapping and the topology (and,
        for routed evaluators, the per-edge route genes riding in the
        vector's tail), so one table serves the nominal model and every
        variation sample. At ``routes == 1`` the gene offset vanishes
        and this is exactly the legacy tile-pair table.
        """
        src_tiles = assignments[:, self._edges[:, 0]]
        dst_tiles = assignments[:, self._edges[:, 1]]
        pairs = self.model.pair_indices(src_tiles, dst_tiles)
        if self.routes > 1:
            pairs = pairs + assignments[:, self.cg.n_tasks:]
        return pairs

    def _tables_from_pairs(self, pairs, model=None, sparse_state=None):
        """(il, snr, noise, signal) tables of shape (M, E) for one model.

        ``model=None`` scores against the nominal coupling model with
        the evaluator's own scratch state; variation sampling passes
        each perturbed sample model (and, in sparse mode, its CSR state)
        through the same kernels, so every sample inherits the
        row-local-reduction determinism guarantees.
        """
        if model is None:
            model = self.model
        il = model.insertion_loss_db[pairs]
        signal = model.signal_linear[pairs]
        if self.backend == "sparse":
            noise = self._sparse_noise(pairs, sparse_state)
        else:
            noise = self._dense_noise(pairs, model.coupling_linear)
        with np.errstate(divide="ignore"):
            snr = 10.0 * np.log10(signal / np.where(noise > 0.0, noise, 1.0))
        snr = np.where(noise > 0.0, snr, SNR_CAP_DB)
        return il, snr, noise, signal

    def _edge_tables(self, assignments: np.ndarray):
        """(il, snr, noise, signal) nominal-model tables for a chunk."""
        return self._tables_from_pairs(self._pair_table(assignments))

    def _dense_noise(
        self, pairs: np.ndarray, coupling: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Masked noise contraction over a dense coupling matrix.

        NOT einsum, and NOT a native ``grid.sum(axis=2)``: both block
        their accumulation differently depending on the batch size M,
        which would break the bit-identical-for-any-shard-split
        guarantee of ``evaluate_batch``. An in-place multiply plus the
        sequential :func:`_row_sum` reduces each (m, v) row in an order
        that depends only on E.
        """
        if coupling is None:
            coupling = self.model.coupling_linear
        grid = coupling[pairs[:, :, None], pairs[:, None, :]]
        grid *= self._mask_linear
        return _row_sum(grid)

    def _sparse_noise(
        self, pairs: np.ndarray, state: Optional[_SparseModelState] = None
    ) -> np.ndarray:
        """Masked noise contraction streaming the CSR coupling rows.

        Per mapping ``m``: one CSR matvec against the 0/1 indicator of
        the mapping's used pairs yields, for every victim pair, the sum
        of its nonzero aggressor columns restricted to the mapping
        (``O(nnz)`` streamed, no ``(M, E, E)`` grid); the few
        serialization-mask conflicts are then gathered and subtracted
        per victim edge. Both the matvec (sequential within a CSR row)
        and the conflict sum (last-axis reduction of width K) have
        reduction orders independent of chunk and shard boundaries, so
        the sparse backend keeps the bit-identical-for-any-``n_workers``
        guarantee.

        The subtraction cancels exactly-equal magnitudes for victims
        whose true masked noise is zero (isolated communications), which
        would leave ~1e-19 residue and defeat the SNR cap; any entry
        tiny relative to its unmasked sum is therefore recomputed as the
        cancellation-free masked sum of non-negative couplings, which is
        exactly 0.0 when the true noise is.
        """
        n_moves, n_edges = pairs.shape
        if state is None:
            csr = self._csr
            if self._value_scratch is None and csr.nnz:
                self._value_scratch = np.empty(csr.nnz, dtype=np.float64)
            values = self._value_scratch
            coupling = self.model.coupling_linear
        else:
            csr = state.csr
            values = state.values
            coupling = state.coupling
        w = self._w_scratch
        rowdot = self._rowdot_scratch
        unmasked = np.empty((n_moves, n_edges), dtype=np.float64)
        for m in range(n_moves):
            w[pairs[m]] = 1.0
            csr.row_dots(w, out=rowdot, scratch=values)
            np.take(rowdot, pairs[m], out=unmasked[m])
            w[pairs[m]] = 0.0
        # Conflict correction, accumulated one conflict column at a time:
        # an (M, E, K) gather-then-sum would reduce a *non-contiguous*
        # fancy-indexing result, and numpy's buffered reduction of
        # non-contiguous arrays blocks across rows — last-ULP results
        # would then depend on the chunk size, breaking the
        # bit-identical-for-any-n_workers contract. K sequential
        # elementwise adds are shape-independent by construction.
        conflict = np.zeros_like(unmasked)
        for k in range(self._conf_idx.shape[1]):
            conflict_pairs = pairs[:, self._conf_idx[:, k]]
            conflict += coupling[pairs, conflict_pairs] * self._conf_w[:, k]
        noise = unmasked - conflict
        suspect_m, suspect_v = np.nonzero(noise <= 1e-12 * unmasked)
        if len(suspect_m):
            grid_rows = np.ascontiguousarray(
                coupling[pairs[suspect_m, suspect_v][:, None], pairs[suspect_m]]
            ) * self._mask_linear[suspect_v]
            # _row_sum keeps the recomputed value independent of how
            # many suspects share the chunk.
            noise[suspect_m, suspect_v] = _row_sum(grid_rows)
        return noise

    def _laser_power_table(self, il: np.ndarray) -> np.ndarray:
        """Per-row negated laser-power budget from the (M, E) IL table.

        Every CG edge needs transmit power proportional to the
        reciprocal of its end-to-end transmission — ``10^(-il_db/10)``,
        with ``il_db <= 0`` — and the mapping's budget sums the per-edge
        requirements (PROTEUS-style worst-case provisioning: the laser
        must drive all communications at their loss). The score is the
        negated budget in dB, so *maximizing* it minimizes the
        provisioned laser power. Row-local (an elementwise power plus
        the sequential :func:`_row_sum` of width E), so the table keeps
        the bit-identical-for-any-chunk/shard guarantee.
        """
        required = np.power(10.0, il * -0.1)
        return -10.0 * np.log10(_row_sum(required))

    def _robust_table(self, pairs: np.ndarray) -> np.ndarray:
        """Per-row variation-aggregated worst-case SNR for a chunk.

        Scores the chunk against every perturbed sample model in sample
        order (sample ``j`` is a pure function of ``(seed, j)``), then
        aggregates per row over the contiguous ``(M, S)`` sample axis —
        mean, or the configured quantile. Both aggregations are
        row-local with a reduction order depending only on S, so the
        robust column is bit-identical for any chunking, sharding,
        coalescing or executor placement, exactly like the base tables.
        """
        n_rows = pairs.shape[0]
        n_samples = len(self._sample_models)
        worst = np.empty((n_rows, n_samples), dtype=np.float64)
        for j, model in enumerate(self._sample_models):
            state = self._sample_sparse[j] if self._sample_sparse else None
            _il, snr, _noise, _signal = self._tables_from_pairs(
                pairs, model=model, sparse_state=state
            )
            worst[:, j] = snr.min(axis=1)
        if self.variation.quantile is None:
            return _row_sum(worst) / n_samples
        return np.quantile(worst, self.variation.quantile, axis=1)

    def _evaluate_chunk(self, assignments, out):
        """Fill one chunk's slice of every metric table in ``out``."""
        pairs = self._pair_table(assignments)
        il, snr, _noise, _signal = self._tables_from_pairs(pairs)
        out["worst_il"][:] = il.min(axis=1)
        out["worst_snr"][:] = snr.min(axis=1)
        out["mean_snr"][:] = _row_sum(snr) / snr.shape[1]
        out["weighted_il"][:] = _row_sum(il * self._bandwidth_weights)
        out["laser_power"][:] = self._laser_power_table(il)
        if "robust_snr" in out:
            out["robust_snr"][:] = self._robust_table(pairs)

    def _score_tables(self, tables) -> np.ndarray:
        """The objective score column of a :attr:`table_names`-ordered tuple."""
        return tables[self._score_index]

    def _score_named(self, tables: dict) -> np.ndarray:
        """The objective score from a ``{table name: column}`` dict.

        The delta engine's dispatch seam: it reconstructs the base
        tables from its incremental per-edge state and scores them here,
        so objective dispatch lives in exactly one place.
        """
        return tables[self.table_names[self._score_index]]

    # -- single evaluation -----------------------------------------------------------

    def evaluate(
        self, mapping: Union[Mapping, np.ndarray], with_edges: bool = False
    ) -> MappingMetrics:
        """Evaluate one mapping, optionally keeping per-edge detail.

        Routed evaluators additionally accept a widened joint vector
        (``n_tasks + n_edges`` entries); its assignment head is
        validated exactly like a plain mapping.
        """
        if isinstance(mapping, Mapping):
            assignment = mapping.assignment
        else:
            candidate = np.asarray(mapping)
            if (
                self.routes > 1
                and candidate.ndim == 1
                and len(candidate) == self.cg.n_tasks + self.n_edges
            ):
                assignment = np.concatenate(
                    [
                        Mapping(
                            self.cg,
                            candidate[: self.cg.n_tasks],
                            self.problem.n_tiles,
                        ).assignment,
                        candidate[self.cg.n_tasks:].astype(np.int64),
                    ]
                )
            else:
                assignment = Mapping(
                    self.cg, candidate, self.problem.n_tiles
                ).assignment
        batch = self._check_batch(assignment[None, :])
        pairs = self._pair_table(batch)
        il, snr, noise, signal = self._tables_from_pairs(pairs)
        self.evaluations += 1
        # The same _row_sum kernels as _evaluate_chunk, on the 1-row
        # batch: row i of any batch and evaluate() of row i agree bit
        # for bit (the objective contract suite enforces this).
        columns = {
            "worst_il": float(il.min()),
            "worst_snr": float(snr.min()),
            "mean_snr": float(_row_sum(snr)[0] / snr.shape[1]),
            "weighted_il": float(_row_sum(il * self._bandwidth_weights)[0]),
            "laser_power": float(self._laser_power_table(il)[0]),
        }
        robust = None
        if self.variation is not None:
            robust = float(self._robust_table(pairs)[0])
            columns["robust_snr"] = robust
        score = columns[self.table_names[self._score_index]]
        edges = None
        if with_edges:
            edges = EdgeMetrics(il[0].copy(), snr[0].copy(), noise[0].copy(), signal[0].copy())
        return MappingMetrics(
            columns["worst_il"],
            columns["worst_snr"],
            columns["mean_snr"],
            columns["weighted_il"],
            score,
            edges,
            laser_power_db=columns["laser_power"],
            robust_snr_db=robust,
        )

    # -- conveniences ------------------------------------------------------------------

    @property
    def n_tiles(self) -> int:
        """Number of tiles of the target architecture."""
        return self.problem.n_tiles

    @property
    def n_tasks(self) -> int:
        """Number of tasks of the application CG."""
        return self.cg.n_tasks

    @property
    def n_edges(self) -> int:
        """Number of CG edges (the route-gene count of joint vectors)."""
        return len(self._edges)

    @property
    def vector_width(self) -> int:
        """Width of this evaluator's design vectors.

        ``n_tasks`` at ``routes == 1`` (plain assignments); widened by
        one route gene per CG edge for joint search.
        """
        if self.routes == 1:
            return self.cg.n_tasks
        return self.cg.n_tasks + self.n_edges

    def edge_menu_sizes(self, vector: np.ndarray) -> np.ndarray:
        """(E,) route-menu sizes of every CG edge under a design vector.

        The menu of an edge is the menu of the tile pair its endpoints
        currently map to, so this is assignment-dependent. Only
        meaningful for routed evaluators; the underlying per-pair counts
        are enumerated once per evaluator and cached.
        """
        if self._route_counts is None:
            self._route_counts = self.network.route_counts(self.routes)
        vector = np.asarray(vector)
        src_tiles = vector[self._edges[:, 0]]
        dst_tiles = vector[self._edges[:, 1]]
        return self._route_counts[src_tiles * self.n_tiles + dst_tiles]

    def random_vector(self, rng: np.random.Generator) -> np.ndarray:
        """One random design vector (assignment, plus genes when routed).

        At ``routes == 1`` this draws exactly what
        :func:`~repro.core.mapping.random_assignment` draws — same RNG
        consumption, same values — so mapping-only runs are bit-identical
        to pre-routing code. Routed vectors append one uniform route gene
        per edge, drawn within the edge's menu under the sampled
        assignment.
        """
        from repro.core.mapping import random_assignment

        assignment = random_assignment(self.cg.n_tasks, self.n_tiles, rng)
        if self.routes == 1:
            return assignment
        menus = self.edge_menu_sizes(assignment)
        genes = rng.integers(0, menus, dtype=np.int64)
        return np.concatenate([assignment, genes])

    def random_vector_batch(
        self, n_vectors: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Shape (M, vector_width) batch of random design vectors.

        The assignment block consumes the RNG exactly like
        :func:`~repro.core.mapping.random_assignment_batch`; gene draws
        happen only when ``routes > 1``, after the whole assignment
        block, so mapping-only batches are bit-identical to pre-routing
        code.
        """
        from repro.core.mapping import random_assignment_batch

        batch = random_assignment_batch(
            n_vectors, self.cg.n_tasks, self.n_tiles, rng
        )
        if self.routes == 1:
            return batch
        if self._route_counts is None:
            self._route_counts = self.network.route_counts(self.routes)
        src_tiles = batch[:, self._edges[:, 0]]
        dst_tiles = batch[:, self._edges[:, 1]]
        menus = self._route_counts[src_tiles * self.n_tiles + dst_tiles]
        genes = rng.integers(0, menus, dtype=np.int64)
        return np.hstack([batch, genes])

    def moves_for(self, vector: np.ndarray) -> list:
        """The full move neighbourhood of a design vector.

        At ``routes == 1`` this is exactly
        :func:`~repro.core.moves.swap_moves` of the assignment — same
        moves, same order — so mapping-only searches are unchanged.
        Routed evaluators append the reroute moves of every edge whose
        current tile pair offers more than one route.
        """
        from repro.core.moves import reroute_moves, swap_moves

        vector = np.asarray(vector)
        moves = swap_moves(vector[: self.cg.n_tasks], self.n_tiles)
        if self.routes > 1:
            moves += reroute_moves(
                vector, self.cg.n_tasks, self.edge_menu_sizes(vector)
            )
        return moves

    def reset_count(self) -> None:
        """Zero the evaluation counter (used between algorithm runs)."""
        self.evaluations = 0

    def close(self) -> None:
        """Release the persistent worker pools serving this problem.

        Sharded :meth:`evaluate_batch` calls lazily create process pools
        that otherwise stay warm until LRU eviction or interpreter exit;
        ``close()`` shuts the ones for this problem (at this dtype) down
        deterministically. Safe to call when no pool was ever created,
        and the evaluator remains usable afterwards (a later sharded
        call simply builds a fresh pool). Also usable as a context
        manager: ``with MappingEvaluator(problem) as evaluator: ...``.
        """
        from repro.core import pool as _pool

        _pool.release_pools(self.problem, self.dtype)

    def __enter__(self) -> "MappingEvaluator":
        """Enter a ``with`` block; :meth:`close` runs on exit."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Release this problem's pools on ``with``-block exit."""
        self.close()
