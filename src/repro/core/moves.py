"""Swap/relocation/reroute move primitives shared by the local-search
strategies.

A move is a ``(task, target_tile, other_task)`` triple: ``other_task`` is
-1 when the target tile is empty (a relocation) and the partner task
index otherwise (a swap). Historically these lived in
:mod:`repro.core.pbla` (which still re-exports them); they sit in their
own module so the delta-evaluation engine and the strategies can share
them without an import cycle.

Joint mapping x routing search adds a third move class: a *reroute*
flips one CG edge's route gene. Its canonical numeric form is
``(n_tasks + edge, new_gene, REROUTE)`` — the first element indexes the
edge's gene slot in the widened design vector ``[assignment | genes]``,
so :func:`apply_move` (and the tabu reversal key, which records
``(slot, old_value)``) work unchanged. The human-readable form
``("reroute", edge, new_gene)`` is accepted everywhere via
:func:`normalize_move`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["Move", "REROUTE", "swap_moves", "reroute_moves", "apply_move",
           "normalize_move"]

Move = Tuple[int, int, int]  # (task, new tile, other task or -1)

#: Sentinel in a move's third element marking a reroute: the first two
#: elements are then (gene slot index, new route gene). Distinct from the
#: relocation sentinel -1 so accounting can tell the classes apart.
REROUTE = -2


def swap_moves(assignment: np.ndarray, n_tiles: int) -> List[Move]:
    """All admitted moves from an assignment.

    Returns (task, target_tile, other_task) triples; ``other_task`` is -1
    when the target tile is empty (a relocation) and the partner task index
    otherwise (a swap). Vectorized, but the output order is pinned to the
    historical double loop: relocations task-major over ascending empty
    tiles, then swaps in upper-triangular (task_a, task_b) order.
    """
    assignment = np.asarray(assignment)
    n_tasks = len(assignment)
    occupied_mask = np.zeros(n_tiles, dtype=bool)
    occupied_mask[assignment] = True
    empty_tiles = np.flatnonzero(~occupied_mask)
    n_empty = len(empty_tiles)
    reloc_task = np.repeat(np.arange(n_tasks), n_empty)
    reloc_tile = np.tile(empty_tiles, n_tasks)
    task_a, task_b = np.triu_indices(n_tasks, k=1)
    moves: List[Move] = list(
        zip(
            reloc_task.tolist(),
            reloc_tile.tolist(),
            [-1] * (n_tasks * n_empty),
        )
    )
    moves.extend(
        zip(task_a.tolist(), assignment[task_b].tolist(), task_b.tolist())
    )
    return moves


def reroute_moves(
    vector: np.ndarray, n_tasks: int, route_counts: np.ndarray
) -> List[Move]:
    """All admitted reroute moves from a widened design vector.

    ``route_counts[edge]`` is the menu size of the edge's current tile
    pair; one move per (edge, gene != current gene mod menu) in edge-major
    gene-ascending order. Edges whose pair offers a single route yield
    nothing, so on architectures without route diversity (e.g. crux
    meshes) the joint neighbourhood degenerates to the mapping one.
    """
    vector = np.asarray(vector)
    genes = vector[n_tasks:]
    moves: List[Move] = []
    for edge, gene in enumerate(genes.tolist()):
        menu = int(route_counts[edge])
        if menu <= 1:
            continue
        current = gene % menu
        for candidate in range(menu):
            if candidate != current:
                moves.append((n_tasks + edge, candidate, REROUTE))
    return moves


def normalize_move(move, n_tasks: int) -> Move:
    """Canonical numeric form of a move.

    Accepts the numeric triples produced by :func:`swap_moves` /
    :func:`reroute_moves` unchanged, and converts the readable
    ``("reroute", edge, new_gene)`` form into
    ``(n_tasks + edge, new_gene, REROUTE)``.
    """
    if move[0] == "reroute":
        return (n_tasks + int(move[1]), int(move[2]), REROUTE)
    return (int(move[0]), int(move[1]), int(move[2]))


def apply_move(assignment: np.ndarray, move: Move) -> np.ndarray:
    """A copy of ``assignment`` with one move applied.

    Works on plain assignments and on widened joint vectors alike: a
    reroute's slot index lands in the gene region, and its third element
    (:data:`REROUTE`) is negative so no swap write happens.
    """
    task, tile, other = move
    result = assignment.copy()
    if other >= 0:
        result[other] = assignment[task]
    result[task] = tile
    return result
