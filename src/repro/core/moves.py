"""Swap/relocation move primitives shared by the local-search strategies.

A move is a ``(task, target_tile, other_task)`` triple: ``other_task`` is
-1 when the target tile is empty (a relocation) and the partner task
index otherwise (a swap). Historically these lived in
:mod:`repro.core.pbla` (which still re-exports them); they sit in their
own module so the delta-evaluation engine and the strategies can share
them without an import cycle.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["Move", "swap_moves", "apply_move"]

Move = Tuple[int, int, int]  # (task, new tile, other task or -1)


def swap_moves(assignment: np.ndarray, n_tiles: int) -> List[Move]:
    """All admitted moves from an assignment.

    Returns (task, target_tile, other_task) triples; ``other_task`` is -1
    when the target tile is empty (a relocation) and the partner task index
    otherwise (a swap).
    """
    n_tasks = len(assignment)
    occupied = {int(tile): task for task, tile in enumerate(assignment)}
    empty_tiles = [t for t in range(n_tiles) if t not in occupied]
    moves: List[Move] = []
    for task in range(n_tasks):
        for tile in empty_tiles:
            moves.append((task, tile, -1))
    for task_a in range(n_tasks):
        for task_b in range(task_a + 1, n_tasks):
            moves.append((task_a, int(assignment[task_b]), task_b))
    return moves


def apply_move(assignment: np.ndarray, move: Move) -> np.ndarray:
    """A copy of ``assignment`` with one move applied."""
    task, tile, other = move
    result = assignment.copy()
    if other >= 0:
        result[other] = assignment[task]
    result[task] = tile
    return result
