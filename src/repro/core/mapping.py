"""Task-to-tile mappings: the decision variable Ω of the paper (eqs. 5–6).

A mapping assigns each task to a distinct tile — eq. (5) says every task is
placed, eq. (6) says a tile hosts at most one task. The optimizers work on
raw numpy arrays (``assignment[task] = tile``); :class:`Mapping` is the
validated, named view used at API boundaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.appgraph.graph import CommunicationGraph
from repro.errors import MappingError

__all__ = ["Mapping", "random_assignment", "random_assignment_batch"]


class Mapping:
    """A validated assignment of CG tasks to topology tiles."""

    def __init__(self, cg: CommunicationGraph, assignment: Sequence[int], n_tiles: int):
        array = np.asarray(assignment, dtype=np.int64)
        if array.shape != (cg.n_tasks,):
            raise MappingError(
                f"assignment must have one tile per task "
                f"({cg.n_tasks}), got shape {array.shape}"
            )
        if array.min(initial=0) < 0 or array.max(initial=-1) >= n_tiles:
            raise MappingError(
                f"assignment uses tiles outside 0..{n_tiles - 1}"
            )
        if len(np.unique(array)) != len(array):
            raise MappingError("two tasks share a tile (violates eq. 6)")
        self.cg = cg
        self.n_tiles = n_tiles
        self.assignment = array
        self.assignment.setflags(write=False)

    # -- views -----------------------------------------------------------------

    def tile_of(self, task: "int | str") -> int:
        """Ω(c): the tile hosting a task (by index or name)."""
        if isinstance(task, str):
            task = self.cg.task_index(task)
        return int(self.assignment[task])

    def task_on(self, tile: int) -> Optional[int]:
        """The task hosted on ``tile``, or None if the tile is empty."""
        hits = np.nonzero(self.assignment == tile)[0]
        if len(hits) == 0:
            return None
        return int(hits[0])

    def as_dict(self) -> Dict[str, int]:
        """``{task_name: tile}`` — the human-readable form."""
        return {
            self.cg.tasks[task]: int(tile)
            for task, tile in enumerate(self.assignment)
        }

    def occupied_tiles(self) -> np.ndarray:
        """Sorted array of the tiles hosting a task."""
        return np.sort(self.assignment)

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_dict(
        cls, cg: CommunicationGraph, placement: Dict[str, int], n_tiles: int
    ) -> "Mapping":
        """Build from ``{task_name: tile}`` (all tasks must appear)."""
        missing = set(cg.tasks) - set(placement)
        if missing:
            raise MappingError(f"tasks without a tile: {sorted(missing)}")
        assignment = [placement[task] for task in cg.tasks]
        return cls(cg, assignment, n_tiles)

    @classmethod
    def random(
        cls,
        cg: CommunicationGraph,
        n_tiles: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "Mapping":
        """A uniformly random valid mapping."""
        rng = rng if rng is not None else np.random.default_rng()
        return cls(cg, random_assignment(cg.n_tasks, n_tiles, rng), n_tiles)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return (
            self.cg.name == other.cg.name
            and self.n_tiles == other.n_tiles
            and bool(np.array_equal(self.assignment, other.assignment))
        )

    def __hash__(self) -> int:
        return hash((self.cg.name, self.n_tiles, self.assignment.tobytes()))

    def __repr__(self) -> str:
        return (
            f"Mapping({self.cg.name!r}, {self.cg.n_tasks} tasks on "
            f"{self.n_tiles} tiles)"
        )


def random_assignment(
    n_tasks: int, n_tiles: int, rng: np.random.Generator
) -> np.ndarray:
    """One random injective assignment (tile indices, one per task)."""
    if n_tasks > n_tiles:
        raise MappingError(
            f"{n_tasks} tasks do not fit on {n_tiles} tiles (violates eq. 2)"
        )
    return rng.permutation(n_tiles)[:n_tasks].astype(np.int64)


def random_assignment_batch(
    n_mappings: int, n_tasks: int, n_tiles: int, rng: np.random.Generator
) -> np.ndarray:
    """Shape (M, n_tasks) batch of random injective assignments."""
    if n_tasks > n_tiles:
        raise MappingError(
            f"{n_tasks} tasks do not fit on {n_tiles} tiles (violates eq. 2)"
        )
    keys = rng.random((n_mappings, n_tiles))
    return np.argsort(keys, axis=1)[:, :n_tasks].astype(np.int64)
