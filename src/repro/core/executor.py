"""Pluggable execution backends for the evaluation and DSE stack.

Everything that fans work out — sharded ``evaluate_batch`` calls, the
per-strategy tasks of ``DesignSpaceExplorer.compare``, chain
decompositions, the service daemon's coalesced flights — submits through
one small protocol, :class:`ExecutorBackend`:

* :meth:`ExecutorBackend.submit` / :meth:`ExecutorBackend.map_shards`
  queue task functions and return :class:`concurrent.futures.Future`\\ s;
* :meth:`ExecutorBackend.alive` / :attr:`ExecutorBackend.broken` are the
  health surface the pool registry (:mod:`repro.core.pool`) uses to
  decide when a backend must be rebuilt;
* :meth:`ExecutorBackend.info` reports per-backend observability
  counters (workers, tasks dispatched / retried), surfaced by the
  service ``stats`` endpoint.

Three implementations exist:

* :class:`LocalProcessBackend` — the historical persistent
  :class:`~concurrent.futures.ProcessPoolExecutor` (PR 3's
  ``PersistentPool``, which remains as an alias), workers hydrated via
  shared memory / fork inheritance / the on-disk model cache;
* :class:`InlineBackend` — runs every task synchronously in the calling
  thread under an activated
  :class:`~repro.core.parallel.WorkerContext`. Zero processes: the
  debugging / 1-CPU-CI backend, and the reference the parity suite
  holds the others to;
* :class:`~repro.distributed.scheduler.RemoteTcpBackend` — dispatches
  tasks over TCP to ``phonocmap worker`` processes (possibly on other
  hosts), hydrating coupling models from cache keys instead of shipping
  matrices.

Failure handling is **backend-owned**: every future is watched by a
done-callback that flips :attr:`~ExecutorBackend.broken` when the
executor itself failed (:class:`concurrent.futures.BrokenExecutor`,
which covers a killed pool worker and exhausted remote retries) —
task-level exceptions never break a backend. Callers that want
resilience resubmit once against the freshly rebuilt backend
``get_pool`` hands back (see
:meth:`repro.core.evaluator.PendingBatch.tables` and
:meth:`repro.core.dse.DesignSpaceExplorer._collect_results`).

Determinism: a backend only ever decides *where* a task function runs.
Both task functions (:func:`repro.core.parallel.run_strategy_task`,
:func:`repro.core.parallel.evaluate_shard_task`) are pure functions of
their arguments, so placement, retry and reassignment cannot change any
result — the cross-backend parity suite
(``tests/distributed/test_executor_parity.py``) enforces bit-identity
per ``(seed, n_workers)`` across all three backends.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutorError

__all__ = [
    "ExecutorBackend",
    "InlineBackend",
    "LocalProcessBackend",
    "WorkerLostError",
    "parse_executor_spec",
    "set_worker_loss_policy",
    "worker_loss_policy",
]


class WorkerLostError(BrokenExecutor, ExecutorError):
    """A task's worker died and the backend's bounded retries ran out.

    Subclasses :class:`concurrent.futures.BrokenExecutor` so the
    backend-owned failure handling (and any caller already catching
    ``BrokenProcessPool``) treats a lost remote worker exactly like a
    killed local pool worker.
    """


#: Valid ``on_worker_loss`` policies. ``"raise"`` keeps PR 7 semantics
#: (exhausted retries / a workerless hub surface as
#: :class:`WorkerLostError`); ``"degrade"`` lets a
#: :class:`~repro.distributed.scheduler.RemoteTcpBackend` finish the
#: work on a local fallback backend instead.
WORKER_LOSS_POLICIES = ("raise", "degrade")

_worker_loss_policy: Optional[str] = None


def set_worker_loss_policy(policy: Optional[str]) -> Optional[str]:
    """Set the process-wide worker-loss policy; returns the previous one.

    ``None`` clears the process setting, falling back to the
    ``PHONOCMAP_ON_WORKER_LOSS`` environment variable and finally to
    ``"raise"``. The CLI's ``--on-worker-loss`` flag and
    :class:`~repro.service.core.ServiceCore` route through here so the
    policy reaches every backend the pool registry builds without
    threading a parameter through each constructor.
    """
    global _worker_loss_policy
    if policy is not None and policy not in WORKER_LOSS_POLICIES:
        raise ExecutorError(
            f"on_worker_loss must be one of {WORKER_LOSS_POLICIES}, "
            f"got {policy!r}"
        )
    previous, _worker_loss_policy = _worker_loss_policy, policy
    return previous


def worker_loss_policy(explicit: Optional[str] = None) -> str:
    """Resolve the effective worker-loss policy.

    Precedence: an explicit per-backend value, then the process setting
    (:func:`set_worker_loss_policy`), then ``PHONOCMAP_ON_WORKER_LOSS``,
    then ``"raise"``.
    """
    for candidate in (explicit, _worker_loss_policy,
                      os.environ.get("PHONOCMAP_ON_WORKER_LOSS")):
        if candidate:
            if candidate not in WORKER_LOSS_POLICIES:
                raise ExecutorError(
                    f"on_worker_loss must be one of {WORKER_LOSS_POLICIES}, "
                    f"got {candidate!r}"
                )
            return candidate
    return "raise"


def parse_executor_spec(spec: Optional[str]) -> str:
    """Normalize and validate an executor spec string.

    Accepted forms: ``"local"`` (persistent process pool, the default),
    ``"inline"`` (serial in-process execution), and ``"tcp://HOST:PORT"``
    (a scheduler listening on HOST:PORT for ``phonocmap worker``
    processes). ``None`` means ``"local"``.
    """
    if spec is None:
        return "local"
    spec = str(spec)
    if spec in ("local", "inline"):
        return spec
    if spec.startswith("tcp://"):
        host, port = split_tcp_address(spec[len("tcp://"):])
        return f"tcp://{host}:{port}"
    raise ExecutorError(
        f"executor spec must be 'local', 'inline' or 'tcp://HOST:PORT', "
        f"got {spec!r}"
    )


def split_tcp_address(address: str) -> Tuple[str, int]:
    """Split ``HOST:PORT`` (with or without a ``tcp://`` prefix)."""
    if address.startswith("tcp://"):
        address = address[len("tcp://"):]
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ExecutorError(
            f"expected HOST:PORT, got {address!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ExecutorError(
            f"port must be an integer, got {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ExecutorError(f"port out of range: {port}")
    return host, port


class ExecutorBackend:
    """Protocol base of all execution backends.

    Subclasses implement :meth:`_submit` (queue one task, return a
    future) and may override :meth:`map_shards`, :meth:`alive`,
    :meth:`info` and :meth:`close`. The base owns the shared
    bookkeeping: dispatch/retry counters, the :attr:`broken` flag, and
    the done-callback that flips it on executor-level failures.
    """

    #: Short backend discriminator (``"local"`` / ``"inline"`` / ``"tcp"``).
    kind: str = "?"

    def __init__(self, key: Tuple, n_workers: int) -> None:
        self.key = key
        self.n_workers = int(n_workers)
        self.broken = False
        self.tasks_dispatched = 0
        self.tasks_retried = 0

    # -- the protocol --------------------------------------------------------

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Submit a task, with backend-owned failure bookkeeping.

        A submit-time failure (the executor cannot accept work at all)
        marks the backend broken and re-raises; the next ``get_pool``
        call for this key builds a replacement. Task-level failures
        surface through the returned future; only
        :class:`~concurrent.futures.BrokenExecutor` flavours — a dead
        pool worker, exhausted remote retries — break the backend.
        """
        try:
            future = self._submit(fn, *args, **kwargs)
        except Exception:
            self.broken = True
            raise
        self.tasks_dispatched += 1
        future.add_done_callback(self._watch_done)
        return future

    def map_shards(self, fn, shards: Sequence) -> List[Future]:
        """Submit ``fn(shard)`` for every shard, in order."""
        return [self.submit(fn, shard) for shard in shards]

    def alive(self) -> bool:
        """Whether this backend can still accept work."""
        return not self.broken

    def info(self) -> dict:
        """JSON-serializable observability snapshot of this backend."""
        return {
            "kind": self.kind,
            "n_workers": self.n_workers,
            "broken": self.broken,
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_retried": self.tasks_retried,
        }

    def close(self, wait: bool = True) -> None:
        """Release the backend's resources (idempotent)."""
        raise NotImplementedError

    # -- shared plumbing -----------------------------------------------------

    def _submit(self, fn, /, *args, **kwargs) -> Future:
        raise NotImplementedError

    def note_retry(self, n_tasks: int = 1) -> None:
        """Account ``n_tasks`` resubmissions riding this backend."""
        self.tasks_retried += int(n_tasks)

    def _watch_done(self, future: Future) -> None:
        if future.cancelled():
            return
        if isinstance(future.exception(), BrokenExecutor):
            self.broken = True


class _ProcessBackendBase(ExecutorBackend):
    """Lifecycle shared by process-pool flavoured backends."""

    _executor: Optional[ProcessPoolExecutor] = None

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The live executor (raises after :meth:`close`)."""
        if self._executor is None:
            raise RuntimeError("pool has been shut down")
        return self._executor

    def _submit(self, fn, /, *args, **kwargs) -> Future:
        return self.executor.submit(fn, *args, **kwargs)

    def alive(self) -> bool:
        """Whether the pool can still accept submissions."""
        return not self.broken and self._executor is not None

    def close(self, wait: bool = True) -> None:
        """Shut the executor down (idempotent)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)


class LocalProcessBackend(_ProcessBackendBase):
    """One reusable :class:`ProcessPoolExecutor` plus its wiring.

    Workers are initialized once with the problem, the coupling dtype,
    the shared-memory spec of the coupling model (fork-inheritance
    fallback when segments are unavailable) and the on-disk model cache
    directory; afterwards every submitted task — whole strategy runs,
    independent chains, or batch shards — finds its evaluator warm in
    the worker process.

    Known historically as ``PersistentPool`` (the alias survives in
    :mod:`repro.core.pool`). Not instantiated directly; use
    :func:`repro.core.pool.get_pool`.
    """

    kind = "local"

    def __init__(
        self,
        key: Tuple,
        problem,
        dtype,
        n_workers: int,
        backend: str = "dense",
        model_cache_dir: Optional[str] = None,
    ):
        from repro.core import parallel as _parallel
        from repro.models.coupling import CouplingModel

        super().__init__(key, n_workers)
        self.problem = problem
        self.dtype = np.dtype(dtype)
        self.backend = str(backend)
        self.model_cache_dir = model_cache_dir
        model = CouplingModel.for_network(
            problem.network, dtype=self.dtype, cache_dir=model_cache_dir
        )
        try:
            spec = model.shared_export(self.backend).spec
        except Exception:  # segments unavailable: fork inheritance fallback
            spec = None
        self._executor = ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_parallel._init_worker,
            initargs=(
                problem,
                self.dtype.name,
                spec,
                self.backend,
                model_cache_dir,
            ),
        )

    def __repr__(self) -> str:
        state = "closed" if self._executor is None else f"{self.n_workers} workers"
        return f"PersistentPool({self.problem!r}, {state})"


class InlineBackend(ExecutorBackend):
    """Serial in-process backend: every task runs in the calling thread.

    The task functions resolve their evaluators through this backend's
    own :class:`~repro.core.parallel.WorkerContext`, activated
    thread-locally around each call — exactly the state a pool worker
    process would hold, minus the process. ``n_workers`` stays the
    *logical* decomposition knob (how many shards/chains the caller
    splits work into), which is what keeps inline results bit-identical
    to every other backend for the same ``(seed, n_workers)``.

    Thread-safe: concurrent submitters (e.g. the service daemon's
    coalescer threads) each activate the context on their own thread.
    """

    kind = "inline"

    def __init__(
        self,
        key: Tuple,
        problem,
        dtype,
        n_workers: int = 1,
        backend: str = "dense",
        model_cache_dir: Optional[str] = None,
    ):
        from repro.core import parallel as _parallel
        from repro.models.coupling import CouplingModel

        super().__init__(key, n_workers)
        self.problem = problem
        self.dtype = np.dtype(dtype)
        self.backend = str(backend)
        # Resolve the model eagerly (cache hit when the caller's
        # evaluator exists already) so context evaluators build fast.
        CouplingModel.for_network(
            problem.network, dtype=self.dtype, cache_dir=model_cache_dir
        )
        self._context = _parallel.WorkerContext(problem, self.dtype, self.backend)
        self._closed = False

    def _submit(self, fn, /, *args, **kwargs) -> Future:
        from repro.core import parallel as _parallel

        if self._closed:
            raise RuntimeError("pool has been shut down")
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            with _parallel.activate_context(self._context):
                result = fn(*args, **kwargs)
        except BaseException as error:  # noqa: BLE001 — forwarded via future
            future.set_exception(error)
        else:
            future.set_result(result)
        return future

    def alive(self) -> bool:
        """Whether the backend can still accept submissions."""
        return not self.broken and not self._closed

    def close(self, wait: bool = True) -> None:
        """Mark the backend closed (nothing to shut down inline)."""
        self._closed = True

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"InlineBackend({self.problem!r}, {state})"
