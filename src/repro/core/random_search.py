"""Random Search (RS) — paper §II-D.2.

"The first search algorithm generates randomly a population of a given size
and then picks the best individual." The population size is the evaluation
budget; generation and evaluation are batched for speed.

The batch loop is *pipelined*: each batch is submitted asynchronously
(:meth:`~repro.core.evaluator.MappingEvaluator.submit_batch`), the next
batch is generated while workers score the current one, and results are
collected in submission order — which keeps the best mapping, evaluation
counts and convergence history bit-identical to the sequential loop for
any evaluator shard width.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.core.result import OptimizationResult
from repro.core.strategy import BestTracker, MappingStrategy

__all__ = ["RandomSearch"]


class RandomSearch(MappingStrategy):
    """Evaluate ``budget`` uniformly random mappings, keep the best.

    Parameters
    ----------
    batch_size : int, optional
        Mappings generated and scored per submission (default 2048).
        Larger batches amortize evaluation overhead; with a sharded
        evaluator each batch is additionally split across the worker
        pool while the next batch is generated.
    """

    name = "rs"
    batch_shardable = True

    def __init__(self, batch_size: int = 2048):
        self.batch_size = int(batch_size)

    def _run(
        self,
        evaluator: MappingEvaluator,
        budget: int,
        rng: np.random.Generator,
    ) -> OptimizationResult:
        tracker = BestTracker(evaluator)
        remaining = budget
        pending = None  # (batch, handle) of the submission in flight
        while remaining > 0:
            count = min(self.batch_size, remaining)
            batch = evaluator.random_vector_batch(count, rng)
            handle = evaluator.submit_batch(batch)
            remaining -= count
            if pending is not None:
                previous_batch, previous_handle = pending
                tracker.offer_batch(previous_batch, previous_handle.result().score)
            pending = (batch, handle)
        batch, handle = pending
        tracker.offer_batch(batch, handle.result().score)
        return tracker.result(self.name)
