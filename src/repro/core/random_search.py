"""Random Search (RS) — paper §II-D.2.

"The first search algorithm generates randomly a population of a given size
and then picks the best individual." The population size is the evaluation
budget; generation and evaluation are batched for speed.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.core.mapping import random_assignment_batch
from repro.core.result import OptimizationResult
from repro.core.strategy import BestTracker, MappingStrategy

__all__ = ["RandomSearch"]


class RandomSearch(MappingStrategy):
    """Evaluate ``budget`` uniformly random mappings, keep the best."""

    name = "rs"

    def __init__(self, batch_size: int = 2048):
        self.batch_size = int(batch_size)

    def _run(
        self,
        evaluator: MappingEvaluator,
        budget: int,
        rng: np.random.Generator,
    ) -> OptimizationResult:
        tracker = BestTracker(evaluator)
        remaining = budget
        while remaining > 0:
            count = min(self.batch_size, remaining)
            batch = random_assignment_batch(
                count, evaluator.n_tasks, evaluator.n_tiles, rng
            )
            metrics = evaluator.evaluate_batch(batch)
            tracker.offer_batch(batch, metrics.score)
            remaining -= count
        return tracker.result(self.name)
