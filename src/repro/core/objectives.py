"""Optimization objectives (paper §II-D.1, eqs. 3–4) and their registry.

Both paper objectives are *max-min* problems and are handled uniformly as
"maximize the score":

* ``SNR`` — maximize the worst-case signal-to-noise ratio (eq. 4, the
  crosstalk-noise optimization);
* ``INSERTION_LOSS`` — maximize the worst-case insertion loss in signed dB
  (eq. 3; losses are negative, so maximizing the minimum means minimizing
  the loss magnitude of the worst path).

Two bandwidth-aware extension objectives are provided beyond the paper
(see DESIGN.md §1): average-case variants weighting every CG edge equally
or by bandwidth instead of taking the worst case. PR 8 adds two
physics-aware objectives from the related work:

* ``LASER_POWER`` — minimize the mapping's total laser-power budget
  (PROTEUS-style co-management): each CG edge needs transmit power
  proportional to the reciprocal of its end-to-end transmission, the
  budget sums those requirements, and the score is the negated budget in
  dB — so maximizing the score minimizes the provisioned laser power.
* ``ROBUST_SNR`` — maximize the expectation (or a configured quantile) of
  the worst-case SNR over N process-variation samples of the device
  parameters (Chittamuru et al.), drawn by a ``SeedSequence``-derived
  stream (see :class:`repro.photonics.parameters.VariationSpec`).

Objective contract
------------------
Every objective is described by an :class:`ObjectiveSpec` in
:data:`OBJECTIVE_SPECS`: which per-row metric table scores it, whether the
incremental delta engine supports it (``supports_delta`` — objectives
computable from one incumbent's per-edge IL/signal/noise rows), and
whether it needs a variation plan (``requires_variation``). The spec is
what the evaluator, the delta engine and the CLI/service validation layer
dispatch on, and the property suite in
``tests/core/test_objective_contracts.py`` enforces the cross-layer
determinism contract — per-seed determinism, batch/chunk/shard/coalesce
invariance, dense-vs-sparse parity, delta parity or a declared opt-out —
for **every** registered objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Objective",
    "ObjectiveSpec",
    "OBJECTIVE_SPECS",
    "SNR_CAP_DB",
    "BASE_TABLES",
    "VARIATION_TABLES",
    "objective_names",
    "spec_for",
]

#: Finite stand-in for "no measurable crosstalk noise" (keeps optimizer
#: arithmetic finite; physically there is always a noise floor).
SNR_CAP_DB = 200.0

#: Per-row metric tables every evaluation produces, in wire order. Workers
#: return exactly these columns for problems without a variation plan.
BASE_TABLES: Tuple[str, ...] = (
    "worst_il",
    "worst_snr",
    "mean_snr",
    "weighted_il",
    "laser_power",
)

#: Table set for problems carrying a variation plan: the base tables plus
#: the variation-aggregated worst-case SNR column.
VARIATION_TABLES: Tuple[str, ...] = BASE_TABLES + ("robust_snr",)


class Objective(Enum):
    """What the design-space exploration maximizes."""

    #: Worst-case SNR (eq. 4) — the crosstalk-noise optimization.
    SNR = "snr"
    #: Worst-case insertion loss (eq. 3) — the power-loss optimization.
    INSERTION_LOSS = "loss"
    #: Extension: mean SNR over all CG edges.
    MEAN_SNR = "mean_snr"
    #: Extension: bandwidth-weighted mean insertion loss.
    WEIGHTED_LOSS = "weighted_loss"
    #: Extension: negated total laser-power budget (PROTEUS-style).
    LASER_POWER = "laser_power"
    #: Extension: variation-robust worst-case SNR (mean/quantile over
    #: process-variation samples).
    ROBUST_SNR = "robust_snr"

    @classmethod
    def parse(cls, value: "str | Objective") -> "Objective":
        """Accept an :class:`Objective` or its string value."""
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value:
                return member
        raise ConfigurationError(
            f"unknown objective {value!r}; known: {[m.value for m in cls]}"
        )

    @property
    def is_snr_based(self) -> bool:
        """Whether this objective scores SNR (vs insertion loss / power)."""
        return self in (Objective.SNR, Objective.MEAN_SNR, Objective.ROBUST_SNR)

    @property
    def description(self) -> str:
        """Human-readable one-line description of the objective."""
        return {
            Objective.SNR: "maximize worst-case SNR (crosstalk optimization)",
            Objective.INSERTION_LOSS: "maximize worst-case insertion loss "
            "(power-loss optimization)",
            Objective.MEAN_SNR: "maximize mean SNR over CG edges",
            Objective.WEIGHTED_LOSS: "maximize bandwidth-weighted mean loss",
            Objective.LASER_POWER: "minimize the total laser-power budget "
            "(negated dB sum of per-edge required power)",
            Objective.ROBUST_SNR: "maximize worst-case SNR aggregated over "
            "process-variation samples",
        }[self]


@dataclass(frozen=True)
class ObjectiveSpec:
    """Capability declaration of one registered objective.

    Attributes
    ----------
    objective : Objective
        The objective this spec describes.
    table : str
        Name of the per-row metric table the score reads (one of
        :data:`BASE_TABLES` / :data:`VARIATION_TABLES`).
    supports_delta : bool
        Whether :class:`~repro.core.delta.DeltaEvaluator` can score
        one-move neighbourhoods incrementally: true exactly for
        objectives computable from a single incumbent's per-edge
        IL/signal/noise rows. Strategies fall back to full batch
        evaluation when false (see :func:`repro.core.delta.delta_engine`).
    requires_variation : bool
        Whether evaluating this objective needs a
        :class:`~repro.photonics.parameters.VariationSpec` on the
        problem (a default plan is attached when none is given).
    """

    objective: "Objective"
    table: str
    supports_delta: bool
    requires_variation: bool


#: The objective registry: one capability spec per registered objective.
OBJECTIVE_SPECS: Dict[Objective, ObjectiveSpec] = {
    Objective.SNR: ObjectiveSpec(Objective.SNR, "worst_snr", True, False),
    Objective.INSERTION_LOSS: ObjectiveSpec(
        Objective.INSERTION_LOSS, "worst_il", True, False
    ),
    Objective.MEAN_SNR: ObjectiveSpec(
        Objective.MEAN_SNR, "mean_snr", True, False
    ),
    Objective.WEIGHTED_LOSS: ObjectiveSpec(
        Objective.WEIGHTED_LOSS, "weighted_il", True, False
    ),
    Objective.LASER_POWER: ObjectiveSpec(
        Objective.LASER_POWER, "laser_power", True, False
    ),
    Objective.ROBUST_SNR: ObjectiveSpec(
        Objective.ROBUST_SNR, "robust_snr", False, True
    ),
}


def spec_for(objective: "str | Objective") -> ObjectiveSpec:
    """The :class:`ObjectiveSpec` of an objective (accepts the string form)."""
    return OBJECTIVE_SPECS[Objective.parse(objective)]


def objective_names() -> Tuple[str, ...]:
    """The registered objective value strings, in declaration order."""
    return tuple(member.value for member in Objective)
