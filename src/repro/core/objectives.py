"""Optimization objectives (paper §II-D.1, eqs. 3–4).

Both paper objectives are *max-min* problems and are handled uniformly as
"maximize the score":

* ``SNR`` — maximize the worst-case signal-to-noise ratio (eq. 4, the
  crosstalk-noise optimization);
* ``INSERTION_LOSS`` — maximize the worst-case insertion loss in signed dB
  (eq. 3; losses are negative, so maximizing the minimum means minimizing
  the loss magnitude of the worst path).

Two bandwidth-aware extension objectives are provided beyond the paper
(see DESIGN.md §1): average-case variants weighting every CG edge equally
or by bandwidth instead of taking the worst case.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import ConfigurationError

__all__ = ["Objective", "SNR_CAP_DB"]

#: Finite stand-in for "no measurable crosstalk noise" (keeps optimizer
#: arithmetic finite; physically there is always a noise floor).
SNR_CAP_DB = 200.0


class Objective(Enum):
    """What the design-space exploration maximizes."""

    #: Worst-case SNR (eq. 4) — the crosstalk-noise optimization.
    SNR = "snr"
    #: Worst-case insertion loss (eq. 3) — the power-loss optimization.
    INSERTION_LOSS = "loss"
    #: Extension: mean SNR over all CG edges.
    MEAN_SNR = "mean_snr"
    #: Extension: bandwidth-weighted mean insertion loss.
    WEIGHTED_LOSS = "weighted_loss"

    @classmethod
    def parse(cls, value: "str | Objective") -> "Objective":
        """Accept an :class:`Objective` or its string value."""
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value:
                return member
        raise ConfigurationError(
            f"unknown objective {value!r}; known: {[m.value for m in cls]}"
        )

    @property
    def is_snr_based(self) -> bool:
        """Whether this objective scores SNR (vs insertion loss)."""
        return self in (Objective.SNR, Objective.MEAN_SNR)

    @property
    def description(self) -> str:
        """Human-readable one-line description of the objective."""
        return {
            Objective.SNR: "maximize worst-case SNR (crosstalk optimization)",
            Objective.INSERTION_LOSS: "maximize worst-case insertion loss "
            "(power-loss optimization)",
            Objective.MEAN_SNR: "maximize mean SNR over CG edges",
            Objective.WEIGHTED_LOSS: "maximize bandwidth-weighted mean loss",
        }[self]
