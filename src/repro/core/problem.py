"""The mapping problem instance (paper §II-D.1).

Bundles what the design-space exploration needs — the application's
Communication Graph, the assembled photonic NoC, the objective and (for
variation-robust objectives) the process-variation sampling plan — and
enforces the feasibility condition of eq. (2): ``size(C) <= size(T)``.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.appgraph.graph import CommunicationGraph
from repro.core.objectives import Objective, spec_for
from repro.errors import MappingError
from repro.noc.network import PhotonicNoC
from repro.photonics.parameters import VariationSpec

__all__ = ["MappingProblem"]


class MappingProblem:
    """One instance of the photonic-NoC mapping problem.

    Parameters
    ----------
    cg : CommunicationGraph
        The application's communication graph.
    network : PhotonicNoC
        The assembled target architecture.
    objective : str or Objective, optional
        What the exploration maximizes (default worst-case SNR).
    variation : VariationSpec, optional
        Process-variation sampling plan. Required by (and defaulted for)
        objectives whose spec declares ``requires_variation``; may also
        be attached explicitly alongside any objective, in which case
        the evaluator computes the robust metric table too. Part of the
        problem identity: pools and coalesced flights only mix requests
        with the same plan.
    routes : int, optional
        Route-menu size ``k`` of the joint mapping x routing search
        (default 1: mapping-only, bit-identical to the paper's setup).
        With ``k > 1`` the design vector widens to
        ``[assignment | per-edge route genes]`` and the evaluator builds
        the routed coupling model. Part of the problem identity, like
        the variation plan.
    """

    def __init__(
        self,
        cg: CommunicationGraph,
        network: PhotonicNoC,
        objective: Union[str, Objective] = Objective.SNR,
        variation: Optional[VariationSpec] = None,
        routes: int = 1,
    ) -> None:
        objective = Objective.parse(objective)
        if cg.n_tasks > network.topology.n_tiles:
            raise MappingError(
                f"CG {cg.name!r} has {cg.n_tasks} tasks but topology "
                f"{network.topology.signature} only {network.topology.n_tiles} "
                "tiles (violates eq. 2)"
            )
        if routes < 1:
            raise MappingError(f"routes must be >= 1, got {routes}")
        if variation is None and spec_for(objective).requires_variation:
            variation = VariationSpec()
        self.cg = cg
        self.network = network
        self.objective = objective
        self.variation = variation
        self.routes = int(routes)

    @property
    def n_tasks(self) -> int:
        """Number of tasks of the application CG."""
        return self.cg.n_tasks

    @property
    def n_tiles(self) -> int:
        """Number of tiles of the target topology."""
        return self.network.topology.n_tiles

    @property
    def variation_fingerprint(self) -> str:
        """Exact identity of the variation plan (empty when none)."""
        return "" if self.variation is None else self.variation.fingerprint

    def with_objective(
        self, objective: Union[str, Objective]
    ) -> "MappingProblem":
        """The same problem under a different objective.

        Keeps the variation plan, so an objective flip on a warm
        (objective-free) pool reuses the workers' table pipeline.
        """
        return MappingProblem(
            self.cg,
            self.network,
            objective,
            variation=self.variation,
            routes=self.routes,
        )

    def evaluator(self, dtype=None, backend: str = "auto") -> "MappingEvaluator":
        """Build the (matrix-backed) evaluator for this problem."""
        from repro.core.evaluator import MappingEvaluator

        if dtype is None:
            return MappingEvaluator(self, backend=backend)
        return MappingEvaluator(self, dtype=dtype, backend=backend)

    def __repr__(self) -> str:
        variation = (
            "" if self.variation is None else f", variation={self.variation_fingerprint}"
        )
        routes = "" if self.routes == 1 else f", routes={self.routes}"
        return (
            f"MappingProblem({self.cg.name!r} -> "
            f"{self.network.topology.signature}/{self.network.router_spec.name}, "
            f"objective={self.objective.value}{variation}{routes})"
        )
