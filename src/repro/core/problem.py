"""The mapping problem instance (paper §II-D.1).

Bundles the three things the design-space exploration needs — the
application's Communication Graph, the assembled photonic NoC, and the
objective — and enforces the feasibility condition of eq. (2):
``size(C) <= size(T)``.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.appgraph.graph import CommunicationGraph
from repro.core.objectives import Objective
from repro.errors import MappingError
from repro.noc.network import PhotonicNoC

__all__ = ["MappingProblem"]


class MappingProblem:
    """One instance of the photonic-NoC mapping problem."""

    def __init__(
        self,
        cg: CommunicationGraph,
        network: PhotonicNoC,
        objective: Union[str, Objective] = Objective.SNR,
    ) -> None:
        objective = Objective.parse(objective)
        if cg.n_tasks > network.topology.n_tiles:
            raise MappingError(
                f"CG {cg.name!r} has {cg.n_tasks} tasks but topology "
                f"{network.topology.signature} only {network.topology.n_tiles} "
                "tiles (violates eq. 2)"
            )
        self.cg = cg
        self.network = network
        self.objective = objective

    @property
    def n_tasks(self) -> int:
        """Number of tasks of the application CG."""
        return self.cg.n_tasks

    @property
    def n_tiles(self) -> int:
        """Number of tiles of the target topology."""
        return self.network.topology.n_tiles

    def evaluator(self, dtype=None, backend: str = "auto") -> "MappingEvaluator":
        """Build the (matrix-backed) evaluator for this problem."""
        from repro.core.evaluator import MappingEvaluator

        if dtype is None:
            return MappingEvaluator(self, backend=backend)
        return MappingEvaluator(self, dtype=dtype, backend=backend)

    def __repr__(self) -> str:
        return (
            f"MappingProblem({self.cg.name!r} -> "
            f"{self.network.topology.signature}/{self.network.router_spec.name}, "
            f"objective={self.objective.value})"
        )
