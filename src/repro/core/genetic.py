"""Genetic Algorithm (GA) — paper §II-D.2.

"The genetic algorithm creates a fixed-sized population of candidate
solutions that, using the crossover and mutation operators, evolves over a
number of generations toward better solutions."

Encoding: a chromosome is a permutation of *all* tiles; the first
``n_tasks`` genes are the task assignments and the rest are the unused
tiles. Keeping the full permutation lets the classic PMX (partially mapped
crossover) operator preserve injectivity — eq. (6) — by construction, and
lets mutation move tasks onto empty tiles by swapping into the tail.

With a routed evaluator (``routes > 1``) the chromosome grows a route-gene
segment: one gene per CG edge, appended after the permutation. PMX still
operates on the permutation alone; route genes cross over uniformly and
mutate by redrawing one edge's gene. At ``routes == 1`` the chromosome,
RNG draws and results are bit-identical to mapping-only GA.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.core.result import OptimizationResult
from repro.core.strategy import BestTracker, MappingStrategy
from repro.errors import OptimizationError

__all__ = ["GeneticAlgorithm", "pmx_crossover"]


def pmx_crossover(
    parent_a: np.ndarray, parent_b: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Partially mapped crossover of two permutations of equal length.

    Copies a random slice from parent A and fills the remaining positions
    with parent B's genes, following PMX's conflict-resolution chain so the
    child is again a permutation.
    """
    size = len(parent_a)
    child = np.full(size, -1, dtype=np.int64)
    lo, hi = sorted(rng.choice(size + 1, size=2, replace=False))
    child[lo:hi] = parent_a[lo:hi]
    position_in_b = np.empty(size, dtype=np.int64)
    position_in_b[parent_b] = np.arange(size)
    in_slice = np.zeros(size, dtype=bool)
    in_slice[parent_a[lo:hi]] = True
    for index in range(lo, hi):
        gene = parent_b[index]
        if in_slice[gene]:
            continue
        # Follow the PMX chain: the displaced gene parent_a[position] sits
        # at position_in_b of parent B; stop at the first slot outside the
        # copied slice. The chain cannot revisit a position because the
        # step map is injective and returning to the start would need
        # ``gene`` to be a slice gene.
        position = index
        while lo <= position < hi:
            position = position_in_b[parent_a[position]]
        child[position] = gene
    empty = child == -1
    child[empty] = parent_b[empty]
    return child


class GeneticAlgorithm(MappingStrategy):
    """Tournament-selection GA with PMX crossover and swap mutation.

    Parameters
    ----------
    population_size : int, optional
        Individuals per generation (default 40).
    tournament_size : int, optional
        Contenders per tournament selection (default 3).
    crossover_rate : float, optional
        Probability a child is bred by PMX rather than cloned (default 0.9).
    mutation_rate : float, optional
        Probability a child receives one swap mutation (default 0.3).
    elite_count : int, optional
        Best-of-generation survivors copied unchanged (default 2).

    Notes
    -----
    Generation scoring is submitted to the evaluator chunk by chunk
    (see :meth:`~repro.core.evaluator.MappingEvaluator.submit_batch`),
    so with a sharded evaluator the slow python-side breeding loop
    overlaps with worker-side evaluation; results are bit-identical to
    the sequential path for any shard width.
    """

    name = "ga"
    batch_shardable = True

    def __init__(
        self,
        population_size: int = 40,
        tournament_size: int = 3,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.3,
        elite_count: int = 2,
    ):
        if population_size < 4:
            raise OptimizationError("GA population must be at least 4")
        if not (0 <= crossover_rate <= 1 and 0 <= mutation_rate <= 1):
            raise OptimizationError("GA rates must lie in [0, 1]")
        if elite_count >= population_size:
            raise OptimizationError("GA elite count must be below population size")
        self.population_size = int(population_size)
        self.tournament_size = int(tournament_size)
        self.crossover_rate = float(crossover_rate)
        self.mutation_rate = float(mutation_rate)
        self.elite_count = int(elite_count)

    # -- operators -----------------------------------------------------------

    def _mutate(self, chromosome: np.ndarray, rng: np.random.Generator) -> None:
        """Swap two random genes in place (task<->task or task<->empty)."""
        i, j = rng.choice(len(chromosome), size=2, replace=False)
        chromosome[i], chromosome[j] = chromosome[j], chromosome[i]

    def _select(self, scores: np.ndarray, rng: np.random.Generator) -> int:
        contenders = rng.integers(0, len(scores), size=self.tournament_size)
        return int(contenders[np.argmax(scores[contenders])])

    # -- main loop ------------------------------------------------------------

    @staticmethod
    def _design_rows(
        population: np.ndarray, n_tasks: int, n_tiles: int
    ) -> np.ndarray:
        """Chromosomes -> evaluator design vectors (drop the tile tail)."""
        if population.shape[1] == n_tiles:
            return population[:, :n_tasks]
        return np.hstack([population[:, :n_tasks], population[:, n_tiles:]])

    def _run(
        self,
        evaluator: MappingEvaluator,
        budget: int,
        rng: np.random.Generator,
    ) -> OptimizationResult:
        n_tasks = evaluator.n_tasks
        n_tiles = evaluator.n_tiles
        routed = evaluator.routes > 1
        n_genes = evaluator.n_edges if routed else 0
        population_size = min(self.population_size, budget)
        # Initial population: random tile permutations.
        population = np.stack(
            [rng.permutation(n_tiles) for _ in range(population_size)]
        ).astype(np.int64)
        if routed:
            # Route-gene segment: one uniform draw per edge, within the
            # menu of the edge's tile pair under that chromosome.
            menus = np.stack(
                [evaluator.edge_menu_sizes(row[:n_tasks]) for row in population]
            )
            genes = rng.integers(0, menus, dtype=np.int64)
            population = np.hstack([population, genes])
        tracker = BestTracker(evaluator)
        rows = self._design_rows(population, n_tasks, n_tiles)
        metrics = evaluator.evaluate_batch(rows)
        scores = metrics.score
        tracker.offer_batch(rows, scores)
        remaining = budget - population_size
        # With a sharded evaluator, submit children for scoring chunk by
        # chunk while later children are still being bred (the python-side
        # PMX loop is slow enough to overlap); collection order and score
        # values are identical, so results match the sequential path bit
        # for bit.
        chunk_count = max(1, min(evaluator.n_workers, 8))
        while remaining > 0:
            children_count = min(population_size - self.elite_count, remaining)
            children = np.empty(
                (children_count, n_tiles + n_genes), dtype=np.int64
            )
            chunk = -(-children_count // chunk_count)
            handles = []
            for start in range(0, children_count, chunk):
                stop = min(start + chunk, children_count)
                for k in range(start, stop):
                    a = self._select(scores, rng)
                    if rng.random() < self.crossover_rate:
                        b = self._select(scores, rng)
                        child = np.empty(n_tiles + n_genes, dtype=np.int64)
                        child[:n_tiles] = pmx_crossover(
                            population[a, :n_tiles],
                            population[b, :n_tiles],
                            rng,
                        )
                        if routed:
                            take_b = rng.random(n_genes) < 0.5
                            child[n_tiles:] = np.where(
                                take_b,
                                population[b, n_tiles:],
                                population[a, n_tiles:],
                            )
                    else:
                        child = population[a].copy()
                    if rng.random() < self.mutation_rate:
                        self._mutate(child[:n_tiles], rng)
                        if routed:
                            edge = int(rng.integers(0, n_genes))
                            child[n_tiles + edge] = int(
                                rng.integers(0, evaluator.routes)
                            )
                    children[k] = child
                handles.append(
                    evaluator.submit_batch(
                        self._design_rows(children[start:stop], n_tasks, n_tiles)
                    )
                )
            child_scores = np.concatenate(
                [handle.result().score for handle in handles]
            )
            tracker.offer_batch(
                self._design_rows(children, n_tasks, n_tiles), child_scores
            )
            remaining -= children_count
            # Elitist replacement: keep the best of the old generation.
            elite_indices = np.argsort(scores)[-self.elite_count:]
            population = np.concatenate(
                [population[elite_indices], children], axis=0
            )
            scores = np.concatenate([scores[elite_indices], child_scores])
        return tracker.result(self.name)
