"""Communication Graphs — paper Definition 1.

A Communication Graph CG = G(C, E) is a directed graph where each vertex is
an application task and each edge characterizes the communication between
two tasks. PhoNoCMap's two objectives are bandwidth-independent (worst case
over edges), but edges still carry their bandwidth so that bandwidth-aware
extension objectives and exporters have the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CommunicationEdge", "CommunicationGraph"]


@dataclass(frozen=True)
class CommunicationEdge:
    """One directed communication: source task -> destination task."""

    src: int
    dst: int
    bandwidth: float = 1.0


class CommunicationGraph:
    """CG = G(C, E) with task names, indices, and edge bandwidths.

    Tasks are referenced by index in all performance-sensitive code; names
    exist for human-readable IO. Edges must reference valid tasks, carry
    positive bandwidth, and contain neither self-loops nor duplicates.
    """

    def __init__(
        self,
        name: str,
        tasks: Sequence[str],
        edges: Iterable[Union[CommunicationEdge, Tuple[int, int, float], Tuple[int, int]]],
    ) -> None:
        if not name:
            raise ConfigurationError("a communication graph needs a name")
        if len(tasks) < 2:
            raise ConfigurationError("a communication graph needs at least 2 tasks")
        if len(set(tasks)) != len(tasks):
            raise ConfigurationError(f"duplicate task names in CG {name!r}")
        self.name = name
        self.tasks: Tuple[str, ...] = tuple(tasks)
        self._task_index: Dict[str, int] = {t: i for i, t in enumerate(self.tasks)}
        normalized: List[CommunicationEdge] = []
        seen = set()
        for edge in edges:
            if not isinstance(edge, CommunicationEdge):
                if len(edge) == 2:
                    edge = CommunicationEdge(edge[0], edge[1])
                else:
                    edge = CommunicationEdge(edge[0], edge[1], edge[2])
            if not (0 <= edge.src < len(tasks) and 0 <= edge.dst < len(tasks)):
                raise ConfigurationError(
                    f"edge ({edge.src}, {edge.dst}) of CG {name!r} references "
                    f"a task outside 0..{len(tasks) - 1}"
                )
            if edge.src == edge.dst:
                raise ConfigurationError(
                    f"CG {name!r} has a self-loop on task "
                    f"{self.tasks[edge.src]!r}; a task does not communicate "
                    "with itself over the NoC"
                )
            if (edge.src, edge.dst) in seen:
                raise ConfigurationError(
                    f"duplicate edge {self.tasks[edge.src]!r} -> "
                    f"{self.tasks[edge.dst]!r} in CG {name!r}"
                )
            if edge.bandwidth <= 0:
                raise ConfigurationError(
                    f"edge {self.tasks[edge.src]!r} -> {self.tasks[edge.dst]!r} "
                    f"of CG {name!r} has non-positive bandwidth {edge.bandwidth}"
                )
            seen.add((edge.src, edge.dst))
            normalized.append(edge)
        if not normalized:
            raise ConfigurationError(f"CG {name!r} has no edges")
        self.edges: Tuple[CommunicationEdge, ...] = tuple(normalized)

    # -- basic queries -----------------------------------------------------------

    @property
    def n_tasks(self) -> int:
        """size(C)."""
        return len(self.tasks)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def task_index(self, task: str) -> int:
        try:
            return self._task_index[task]
        except KeyError:
            raise ConfigurationError(
                f"CG {self.name!r} has no task {task!r}"
            ) from None

    def task_name(self, index: int) -> str:
        return self.tasks[index]

    def edge_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """((src_task, dst_task), ...) for all edges."""
        return tuple((e.src, e.dst) for e in self.edges)

    # -- array views for vectorized evaluation --------------------------------------

    def edge_array(self) -> np.ndarray:
        """Shape (E, 2) int array of (source, destination) task indices."""
        return np.array([(e.src, e.dst) for e in self.edges], dtype=np.int64)

    def bandwidth_array(self) -> np.ndarray:
        """Shape (E,) float array of edge bandwidths."""
        return np.array([e.bandwidth for e in self.edges], dtype=np.float64)

    def serialization_mask(self) -> np.ndarray:
        """Boolean (E, E) mask: True where two edges can interfere.

        Edges sharing the source task (one transmitter) or the destination
        task (one receiver) are serialized by the hardware and never active
        simultaneously; an edge never interferes with itself (DESIGN.md §3).
        """
        pairs = self.edge_array()
        src = pairs[:, 0]
        dst = pairs[:, 1]
        same_src = src[:, None] == src[None, :]
        same_dst = dst[:, None] == dst[None, :]
        mask = ~(same_src | same_dst)
        return mask

    # -- structure ---------------------------------------------------------------------

    def out_degree(self, task: int) -> int:
        return sum(1 for e in self.edges if e.src == task)

    def in_degree(self, task: int) -> int:
        return sum(1 for e in self.edges if e.dst == task)

    def total_bandwidth(self) -> float:
        return float(sum(e.bandwidth for e in self.edges))

    def graph(self) -> "nx.DiGraph":
        """A networkx view with task names and bandwidths."""
        g = nx.DiGraph(name=self.name)
        g.add_nodes_from(self.tasks)
        for e in self.edges:
            g.add_edge(self.tasks[e.src], self.tasks[e.dst], bandwidth=e.bandwidth)
        return g

    def is_weakly_connected(self) -> bool:
        return nx.is_weakly_connected(self.graph())

    # -- construction helpers --------------------------------------------------------------

    @classmethod
    def from_named_edges(
        cls,
        name: str,
        edges: Iterable[Tuple[str, str, float]],
    ) -> "CommunicationGraph":
        """Build a CG from (src_name, dst_name, bandwidth) triples.

        Task indices follow first appearance order, which keeps graphs
        readable and stable across runs.
        """
        tasks: List[str] = []
        index: Dict[str, int] = {}
        triples = list(edges)
        for src, dst, _bw in triples:
            for task in (src, dst):
                if task not in index:
                    index[task] = len(tasks)
                    tasks.append(task)
        return cls(
            name,
            tasks,
            [(index[s], index[d], bw) for s, d, bw in triples],
        )

    def __repr__(self) -> str:
        return (
            f"CommunicationGraph({self.name!r}, tasks={self.n_tasks}, "
            f"edges={self.n_edges})"
        )
