"""Synthetic communication-graph generators (TGFF-spirited).

The paper's benchmarks are fixed applications; scalability studies and
property-based tests need families of graphs with controlled structure.
These generators produce the common MPSoC traffic shapes:

* :func:`pipeline_cg` — a linear processing chain;
* :func:`fork_join_cg` — a scatter/gather stage (fan-out then fan-in);
* :func:`hub_cg` — a shared-memory style hub exchanging data with
  satellites (the MPEG-4 shape);
* :func:`random_cg` — a random weakly-connected DAG-ish graph with a
  requested edge count, reproducible from a seed;
* :func:`all_to_all_cg` — uniform traffic (every ordered pair), the
  classic NoC stress workload and the edge-dense regime where the
  evaluator's sparse coupling backend pays off.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.appgraph.graph import CommunicationGraph
from repro.errors import ConfigurationError

__all__ = ["pipeline_cg", "fork_join_cg", "hub_cg", "random_cg", "all_to_all_cg"]


def all_to_all_cg(n_tasks: int, bandwidth: float = 64.0) -> CommunicationGraph:
    """Uniform traffic: every ordered task pair communicates.

    The densest possible CG (``n_tasks * (n_tasks - 1)`` edges) — the
    standard uniform-traffic stress pattern of NoC evaluation, and the
    workload where the ``(M, E, E)`` dense noise grid grows quadratically
    past memory while the sparse coupling backend keeps streaming
    ``O(nnz)``.
    """
    if n_tasks < 2:
        raise ConfigurationError("all-to-all traffic needs at least 2 tasks")
    tasks = [f"t{i}" for i in range(n_tasks)]
    edges = [
        (a, b, bandwidth)
        for a in range(n_tasks)
        for b in range(n_tasks)
        if a != b
    ]
    return CommunicationGraph(f"alltoall{n_tasks}", tasks, edges)


def pipeline_cg(n_tasks: int, bandwidth: float = 64.0) -> CommunicationGraph:
    """A linear chain t0 -> t1 -> ... -> t(n-1)."""
    if n_tasks < 2:
        raise ConfigurationError("a pipeline needs at least 2 tasks")
    edges = [(i, i + 1, bandwidth) for i in range(n_tasks - 1)]
    tasks = [f"stage{i}" for i in range(n_tasks)]
    return CommunicationGraph(f"pipeline{n_tasks}", tasks, edges)


def fork_join_cg(n_workers: int, bandwidth: float = 64.0) -> CommunicationGraph:
    """A scatter/gather: source -> N workers -> sink."""
    if n_workers < 1:
        raise ConfigurationError("fork/join needs at least one worker")
    tasks = ["source"] + [f"worker{i}" for i in range(n_workers)] + ["sink"]
    edges = [(0, 1 + i, bandwidth) for i in range(n_workers)]
    edges += [(1 + i, len(tasks) - 1, bandwidth) for i in range(n_workers)]
    return CommunicationGraph(f"forkjoin{n_workers}", tasks, edges)


def hub_cg(n_satellites: int, bandwidth: float = 64.0) -> CommunicationGraph:
    """A hub exchanging data bidirectionally with N satellites."""
    if n_satellites < 1:
        raise ConfigurationError("a hub needs at least one satellite")
    tasks = ["hub"] + [f"sat{i}" for i in range(n_satellites)]
    edges = []
    for i in range(n_satellites):
        edges.append((0, 1 + i, bandwidth))
        edges.append((1 + i, 0, bandwidth))
    return CommunicationGraph(f"hub{n_satellites}", tasks, edges)


def random_cg(
    n_tasks: int,
    n_edges: int,
    seed: Optional[int] = None,
    max_bandwidth: float = 256.0,
) -> CommunicationGraph:
    """A random weakly-connected graph with exactly ``n_edges`` edges.

    A random spanning arborescence guarantees weak connectivity; remaining
    edges are sampled uniformly without duplicates or self-loops.
    Reproducible given ``seed``.
    """
    if n_tasks < 2:
        raise ConfigurationError("a random CG needs at least 2 tasks")
    min_edges = n_tasks - 1
    max_edges = n_tasks * (n_tasks - 1)
    if not (min_edges <= n_edges <= max_edges):
        raise ConfigurationError(
            f"n_edges for {n_tasks} tasks must be in "
            f"[{min_edges}, {max_edges}], got {n_edges}"
        )
    rng = np.random.default_rng(seed)
    chosen = set()
    # Spanning structure: connect each task (from index 1) to a random
    # earlier task, in a random direction.
    order = rng.permutation(n_tasks)
    for position in range(1, n_tasks):
        a = int(order[position])
        b = int(order[rng.integers(0, position)])
        if rng.random() < 0.5:
            chosen.add((a, b))
        else:
            chosen.add((b, a))
    while len(chosen) < n_edges:
        a = int(rng.integers(0, n_tasks))
        b = int(rng.integers(0, n_tasks))
        if a != b:
            chosen.add((a, b))
    bandwidths = rng.uniform(1.0, max_bandwidth, size=len(chosen))
    tasks = [f"t{i}" for i in range(n_tasks)]
    edges = [
        (a, b, float(bw)) for (a, b), bw in zip(sorted(chosen), bandwidths)
    ]
    return CommunicationGraph(f"random{n_tasks}x{n_edges}", tasks, edges)
