"""The eight multimedia applications of the paper's case studies (§III).

The paper evaluates PhoNoCMap on eight "real streaming video and image
processing applications" with these task counts (and, where stated, edge
counts):

==================  =====  =====================================  ======
application         tasks  description                            edges
==================  =====  =====================================  ======
263dec_mp3dec        14    H.263 video + MP3 audio decoder          13
263enc_mp3enc        12    H.263 video + MP3 audio encoder          12*
dvopd                32    dual video object plane decoder          40
mpeg4                12    MPEG-4 decoder                           26*
mwd                  12    multi-window display                     12*
pip                   8    picture-in-picture                        8
vopd                 16    video object plane decoder               19
wavelet              22    wavelet transform                        27
==================  =====  =====================================  ======

(*) edge counts the paper states explicitly; the others follow the standard
literature versions of these task graphs. The graphs below are
reconstructions: task decompositions and edge structure follow the
published communication task graphs of these applications (van der Tol &
Jaspers' VOPD/PIP/MWD decompositions, the classic SDRAM-centred MPEG-4
graph, Hu & Marculescu's encoder/decoder pairs), with bandwidths (MB/s) as
published where well known and representative otherwise. The paper's
objectives are bandwidth-independent, so only the node/edge structure
influences results (DESIGN.md §4).

One structural criterion is inferred from the paper's own results: the
applications whose optimized worst-case SNR reaches the ~38-40 dB
crossing-noise-limited regime (PIP, MWD, VOPD, the codec pairs, Wavelet)
must admit mappings in which every CG edge spans adjacent tiles — their
task graphs are bipartite (grid graphs contain no odd cycles) and fit
their grid with room to route around. The constrained applications keep
their odd-cycle / hub structure (MPEG-4's SDRAM hub, DVOPD's 32 tasks at
89% occupancy), which is what pins them to the ~19-21 dB ring-noise
regime, exactly as in Table II.

The paper maps each application onto the smallest square grid that fits it
("application PIP mapped on a 3x3 topology"): :func:`grid_side_for`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

from repro.appgraph.graph import CommunicationGraph
from repro.errors import ConfigurationError

__all__ = [
    "BENCHMARK_NAMES",
    "load_benchmark",
    "all_benchmarks",
    "grid_side_for",
    "pip",
    "mwd",
    "mpeg4",
    "vopd",
    "dvopd",
    "h263dec_mp3dec",
    "h263enc_mp3enc",
    "wavelet",
]


def pip() -> CommunicationGraph:
    """Picture-in-picture: 8 tasks, 8 edges — two scaling pipelines."""
    return CommunicationGraph.from_named_edges(
        "pip",
        [
            ("inp_mem1", "hs", 128.0),
            ("hs", "vs", 64.0),
            ("vs", "jug1", 64.0),
            ("jug1", "op_disp", 64.0),
            ("inp_mem2", "jug2", 64.0),
            ("jug2", "mem2", 64.0),
            ("mem2", "op_disp", 64.0),
            ("hs", "jug2", 64.0),
        ],
    )


def mwd() -> CommunicationGraph:
    """Multi-window display: 12 tasks, 12 edges (count per the paper)."""
    return CommunicationGraph.from_named_edges(
        "mwd",
        [
            ("in", "nr", 96.0),
            ("nr", "mem1", 96.0),
            ("mem1", "hs", 96.0),
            ("hs", "mem2", 96.0),
            ("mem2", "hvs", 96.0),
            ("hvs", "jug1", 64.0),
            ("nr", "vs", 96.0),
            ("vs", "jug2", 64.0),
            ("jug1", "mem3", 64.0),
            ("mem3", "se", 64.0),
            ("jug2", "se", 64.0),
            ("se", "blend", 64.0),
        ],
    )


def mpeg4() -> CommunicationGraph:
    """MPEG-4 decoder: 12 tasks, 26 edges (count per the paper).

    The classic SDRAM-centred graph: the shared memory exchanges data with
    almost every unit, which makes this the most connectivity-constrained
    benchmark — the paper calls it out for exactly that reason.
    """
    return CommunicationGraph.from_named_edges(
        "mpeg4",
        [
            ("vu", "sdram", 190.0),
            ("sdram", "vu", 610.0),
            ("au", "sdram", 0.5),
            ("sdram", "au", 0.5),
            ("med_cpu", "sdram", 60.0),
            ("sdram", "med_cpu", 40.0),
            ("rast", "sdram", 640.0),
            ("sdram", "rast", 250.0),
            ("idct", "sdram", 32.0),
            ("sdram", "idct", 142.0),
            ("upsamp", "sdram", 300.0),
            ("sdram", "upsamp", 70.0),
            ("adsp", "sdram", 0.5),
            ("sdram", "adsp", 0.5),
            ("bab", "sdram", 173.0),
            ("sdram", "bab", 430.0),
            ("risc", "sdram", 500.0),
            ("sdram", "risc", 910.0),
            ("med_cpu", "sram1", 80.0),
            ("sram1", "med_cpu", 80.0),
            ("risc", "sram2", 250.0),
            ("sram2", "risc", 173.0),
            ("bab", "risc", 32.0),
            ("idct", "upsamp", 357.0),
            ("vu", "rast", 500.0),
            ("au", "adsp", 16.0),
        ],
    )


_VOPD_EDGES: List[Tuple[str, str, float]] = [
    ("demux", "vld", 70.0),
    ("vld", "run_le_dec", 70.0),
    ("run_le_dec", "inv_scan", 362.0),
    ("inv_scan", "acdc_pred", 362.0),
    ("acdc_pred", "iquant", 362.0),
    ("acdc_pred", "stripe_mem", 49.0),
    ("stripe_mem", "acdc_pred", 27.0),
    ("iquant", "idct", 357.0),
    ("idct", "upsamp", 353.0),
    ("upsamp", "vop_rec", 300.0),
    ("vop_rec", "pad", 313.0),
    ("pad", "vop_mem", 313.0),
    ("vop_mem", "pad", 94.0),
    ("vop_mem", "arm", 16.0),
    ("arm", "idct", 16.0),
    ("inv_scan", "mv_dec", 16.0),
    ("mv_dec", "mc_pred", 16.0),
    ("mc_pred", "vop_rec", 500.0),
    ("pad", "disp_ctrl", 313.0),
]


def vopd() -> CommunicationGraph:
    """Video object plane decoder: 16 tasks, 19 edges.

    The classic decoder pipeline (vld -> run-length decode -> inverse scan
    -> AC/DC prediction -> iQuant -> IDCT -> upsampling -> reconstruction
    -> padding -> VOP memory) with the stripe-memory and ARM feedback loops
    plus the motion-vector branch.
    """
    return CommunicationGraph.from_named_edges("vopd", _VOPD_EDGES)


def dvopd() -> CommunicationGraph:
    """Dual VOPD: 32 tasks, 40 edges — two decoders with linked display.

    Decodes two video object planes concurrently; the display controllers
    synchronize with each other, which is the standard coupling between the
    two halves.
    """
    edges: List[Tuple[str, str, float]] = []
    for prefix in ("a", "b"):
        edges.extend(
            (f"{prefix}_{src}", f"{prefix}_{dst}", bw) for src, dst, bw in _VOPD_EDGES
        )
    edges.append(("a_disp_ctrl", "b_disp_ctrl", 25.0))
    edges.append(("b_disp_ctrl", "a_disp_ctrl", 25.0))
    return CommunicationGraph.from_named_edges("dvopd", edges)


def h263dec_mp3dec() -> CommunicationGraph:
    """H.263 video decoder + MP3 audio decoder: 14 tasks, 13 edges.

    Two independent decoder pipelines sharing the chip (Hu & Marculescu's
    classic pairing); the video half carries a frame-memory feedback loop.
    """
    return CommunicationGraph.from_named_edges(
        "263dec_mp3dec",
        [
            # H.263 decoder (8 tasks); the motion compensator owns the
            # reference-frame memory (write-back/read-back pair)
            ("h263_src", "vld", 33.8),
            ("vld", "iq", 33.8),
            ("iq", "idct", 75.2),
            ("idct", "mc", 75.2),
            ("mc", "recon", 151.0),
            ("mc", "frame_mem", 151.0),
            ("frame_mem", "mc", 151.0),
            ("recon", "disp", 151.0),
            # MP3 decoder (6 tasks)
            ("mp3_src", "huff", 16.2),
            ("huff", "deq", 16.2),
            ("deq", "stereo", 16.2),
            ("stereo", "imdct", 38.7),
            ("imdct", "pcm_out", 38.7),
        ],
    )


def h263enc_mp3enc() -> CommunicationGraph:
    """H.263 video encoder + MP3 audio encoder: 12 tasks, 12 edges."""
    return CommunicationGraph.from_named_edges(
        "263enc_mp3enc",
        [
            # H.263 encoder (7 tasks): prediction loop through the inverse
            # quantizer/IDCT, reference frames held next to the estimator
            ("cam", "me", 128.0),
            ("me", "dct", 96.0),
            ("dct", "q", 96.0),
            ("q", "vlc", 32.0),
            ("q", "iq_idct", 96.0),
            ("iq_idct", "me", 96.0),
            ("me", "frame_mem", 96.0),
            ("frame_mem", "me", 96.0),
            # MP3 encoder (5 tasks)
            ("pcm_in", "subband", 38.7),
            ("subband", "mdct", 38.7),
            ("mdct", "quant_enc", 16.2),
            ("quant_enc", "huff_enc", 16.2),
        ],
    )


def wavelet() -> CommunicationGraph:
    """Two-level 2-D wavelet transform: 22 tasks, 27 edges.

    Row/column filter banks for two decomposition levels, per-subband
    quantizers, per-level entropy encoders, and a bitstream mux — the
    aggregation is a tree (no unit has more than four neighbours, as in a
    realistic systolic implementation).
    """
    return CommunicationGraph.from_named_edges(
        "wavelet",
        [
            ("src", "row_l", 64.0),
            ("src", "row_h", 64.0),
            ("row_l", "c_ll", 32.0),
            ("row_l", "c_lh", 32.0),
            ("row_h", "c_hl", 32.0),
            ("row_h", "c_hh", 32.0),
            ("c_ll", "row2_l", 16.0),
            ("c_ll", "row2_h", 16.0),
            ("row2_l", "c2_l", 8.0),
            ("row2_h", "c2_h", 8.0),
            ("c2_l", "q2_ll", 8.0),
            ("c2_l", "q2_lh", 8.0),
            ("c2_h", "q2_hl", 8.0),
            ("c2_h", "q2_hh", 8.0),
            ("c_lh", "q_lh", 32.0),
            ("c_hl", "q_hl", 32.0),
            ("c_hh", "q_hh", 32.0),
            ("q_lh", "enc_a", 32.0),
            ("q_hl", "enc_a", 32.0),
            ("q2_hl", "enc_a", 8.0),
            ("q2_ll", "enc_b", 8.0),
            ("q2_lh", "enc_b", 8.0),
            ("q_hh", "out_mem", 32.0),
            ("q2_hh", "out_mem", 8.0),
            ("enc_a", "mux", 48.0),
            ("enc_b", "mux", 16.0),
            ("mux", "out_mem", 64.0),
        ],
    )


_LOADERS: Dict[str, Callable[[], CommunicationGraph]] = {
    "263dec_mp3dec": h263dec_mp3dec,
    "263enc_mp3enc": h263enc_mp3enc,
    "dvopd": dvopd,
    "mpeg4": mpeg4,
    "mwd": mwd,
    "pip": pip,
    "vopd": vopd,
    "wavelet": wavelet,
}

#: Benchmark names in the paper's Table II row order.
BENCHMARK_NAMES: Tuple[str, ...] = (
    "263dec_mp3dec",
    "263enc_mp3enc",
    "dvopd",
    "mpeg4",
    "mwd",
    "pip",
    "vopd",
    "wavelet",
)


def load_benchmark(name: str) -> CommunicationGraph:
    """Load one of the paper's eight applications by name."""
    try:
        return _LOADERS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; available: {sorted(_LOADERS)}"
        ) from None


def all_benchmarks() -> Dict[str, CommunicationGraph]:
    """All eight applications, keyed by name, in Table II order."""
    return {name: _LOADERS[name]() for name in BENCHMARK_NAMES}


def grid_side_for(cg: CommunicationGraph) -> int:
    """Side of the smallest square grid fitting the application.

    The paper maps each application onto the smallest square topology with
    at least as many tiles as tasks (PIP's 8 tasks go on 3x3).
    """
    return math.ceil(math.sqrt(cg.n_tasks))
