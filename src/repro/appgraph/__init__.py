"""Application descriptions: communication graphs, benchmarks, IO.

Box (1) of the PhoNoCMap environment (paper Fig. 1): Communication Graphs
(Definition 1), the eight multimedia applications of the case studies,
synthetic generators, and file formats.
"""

from repro.appgraph.benchmarks import (
    BENCHMARK_NAMES,
    all_benchmarks,
    dvopd,
    grid_side_for,
    h263dec_mp3dec,
    h263enc_mp3enc,
    load_benchmark,
    mpeg4,
    mwd,
    pip,
    vopd,
    wavelet,
)
from repro.appgraph.graph import CommunicationEdge, CommunicationGraph
from repro.appgraph.io import (
    cg_from_dict,
    cg_from_edge_lines,
    cg_to_dict,
    cg_to_dot,
    cg_to_edge_lines,
    load_cg_json,
    save_cg_json,
)
from repro.appgraph.synthetic import (
    all_to_all_cg,
    fork_join_cg,
    hub_cg,
    pipeline_cg,
    random_cg,
)

__all__ = [
    "BENCHMARK_NAMES",
    "all_benchmarks",
    "dvopd",
    "grid_side_for",
    "h263dec_mp3dec",
    "h263enc_mp3enc",
    "load_benchmark",
    "mpeg4",
    "mwd",
    "pip",
    "vopd",
    "wavelet",
    "CommunicationEdge",
    "CommunicationGraph",
    "cg_from_dict",
    "cg_from_edge_lines",
    "cg_to_dict",
    "cg_to_dot",
    "cg_to_edge_lines",
    "load_cg_json",
    "save_cg_json",
    "fork_join_cg",
    "hub_cg",
    "all_to_all_cg",
    "pipeline_cg",
    "random_cg",
]
