"""Communication graph IO: JSON round-trip, edge lists, DOT export.

These formats make PhoNoCMap usable as a standalone tool: applications can
be described outside Python (box 1 of the paper's Fig. 1 — "the input
description of the application") and results inspected with standard
graph viewers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.appgraph.graph import CommunicationGraph
from repro.errors import ConfigurationError

__all__ = [
    "cg_to_dict",
    "cg_from_dict",
    "save_cg_json",
    "load_cg_json",
    "cg_to_dot",
    "cg_from_edge_lines",
    "cg_to_edge_lines",
]


def cg_to_dict(cg: CommunicationGraph) -> dict:
    """A JSON-serializable description of a CG."""
    return {
        "name": cg.name,
        "tasks": list(cg.tasks),
        "edges": [
            {"src": cg.tasks[e.src], "dst": cg.tasks[e.dst], "bandwidth": e.bandwidth}
            for e in cg.edges
        ],
    }


def cg_from_dict(data: dict) -> CommunicationGraph:
    """Rebuild a CG from :func:`cg_to_dict` output."""
    try:
        name = data["name"]
        tasks = list(data["tasks"])
        raw_edges = data["edges"]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed CG description: {exc}") from None
    index = {task: i for i, task in enumerate(tasks)}
    edges = []
    for raw in raw_edges:
        try:
            edges.append(
                (index[raw["src"]], index[raw["dst"]], float(raw.get("bandwidth", 1.0)))
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"CG edge references unknown field or task: {exc}"
            ) from None
    return CommunicationGraph(name, tasks, edges)


def save_cg_json(cg: CommunicationGraph, path: Union[str, Path]) -> None:
    """Write a CG to a JSON file."""
    Path(path).write_text(json.dumps(cg_to_dict(cg), indent=2) + "\n")


def load_cg_json(path: Union[str, Path]) -> CommunicationGraph:
    """Read a CG from a JSON file."""
    return cg_from_dict(json.loads(Path(path).read_text()))


def cg_to_dot(cg: CommunicationGraph) -> str:
    """Graphviz DOT text of a CG (edge labels carry bandwidth)."""
    lines = [f'digraph "{cg.name}" {{']
    for task in cg.tasks:
        lines.append(f'  "{task}";')
    for e in cg.edges:
        lines.append(
            f'  "{cg.tasks[e.src]}" -> "{cg.tasks[e.dst]}" '
            f'[label="{e.bandwidth:g}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def cg_to_edge_lines(cg: CommunicationGraph) -> str:
    """Plain text edge list: ``src dst bandwidth`` per line."""
    lines = [f"# {cg.name}"]
    for e in cg.edges:
        lines.append(f"{cg.tasks[e.src]} {cg.tasks[e.dst]} {e.bandwidth:g}")
    return "\n".join(lines) + "\n"


def cg_from_edge_lines(name: str, text: str) -> CommunicationGraph:
    """Parse a plain text edge list (``src dst [bandwidth]`` per line)."""
    triples = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) not in (2, 3):
            raise ConfigurationError(
                f"line {line_number}: expected 'src dst [bandwidth]', got {line!r}"
            )
        bandwidth = float(parts[2]) if len(parts) == 3 else 1.0
        triples.append((parts[0], parts[1], bandwidth))
    if not triples:
        raise ConfigurationError("edge list contains no edges")
    return CommunicationGraph.from_named_edges(name, triples)
