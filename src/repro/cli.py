"""The ``phonocmap`` command line tool.

Subcommands mirror the workflows of the original toolset:

* ``info``        — list registered routers, strategies and benchmarks;
* ``table1``      — print the physical parameter table (paper Table I);
* ``evaluate``    — evaluate a random or user-provided mapping;
* ``optimize``    — run one optimization strategy on one problem;
* ``table2``      — reproduce the paper's Table II;
* ``fig3``        — reproduce the paper's Fig. 3 distributions;
* ``scalability`` — the network-scalability extension study;
* ``export``      — dump a benchmark CG as JSON/DOT/edge list.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro import __version__
from repro.analysis.distribution import random_mapping_distribution
from repro.analysis.experiments import (
    build_case_study_network,
    format_fig3,
    reproduce_fig3,
    reproduce_table1,
    reproduce_table2,
)
from repro.analysis.report import ascii_curve, format_db
from repro.analysis.scalability import format_scalability, scalability_study
from repro.appgraph.benchmarks import (
    BENCHMARK_NAMES,
    grid_side_for,
    load_benchmark,
)
from repro.appgraph.io import cg_to_dict, cg_to_dot, cg_to_edge_lines, load_cg_json
from repro.core.dse import DesignSpaceExplorer
from repro.core.mapping import Mapping
from repro.core.problem import MappingProblem
from repro.core.registry import available_strategies
from repro.errors import ReproError
from repro.router.registry import available_routers

__all__ = ["main", "build_parser"]


def _add_evaluator_arguments(parser: argparse.ArgumentParser) -> None:
    """Evaluator knobs shared by the heavy-evaluation subcommands."""
    parser.add_argument(
        "--float32", action="store_true",
        help="use float32 coupling matrices (halves dense and CSR memory "
             "at reduced noise precision)",
    )
    parser.add_argument(
        "--backend", choices=("auto", "dense", "sparse"), default="auto",
        help="noise-contraction backend: 'dense' gathers the (M, E, E) "
             "grid, 'sparse' streams the CSR coupling rows, 'auto' "
             "(default) picks by measured coupling density",
    )
    _add_model_cache_argument(parser)


def _add_model_cache_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model-cache", metavar="DIR", default=None,
        help="on-disk coupling-model cache directory: precomputed "
             "matrices are memory-mapped back instead of rebuilt "
             "(keyed by architecture signature, dtype and model "
             "version; results are bit-identical either way). Also "
             "settable via PHONOCMAP_MODEL_CACHE",
    )


def _evaluator_dtype(args: argparse.Namespace):
    return np.float32 if args.float32 else np.float64


def _add_architecture_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology", choices=("mesh", "torus"), default="mesh",
        help="tile interconnection (default: mesh)",
    )
    parser.add_argument(
        "--side", type=int, default=None,
        help="grid side; default: smallest square fitting the application",
    )
    parser.add_argument(
        "--router", default="crux", choices=available_routers(),
        help="optical router microarchitecture (default: crux)",
    )


def _add_application_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--app", choices=BENCHMARK_NAMES, help="built-in benchmark application"
    )
    group.add_argument(
        "--cg-json", metavar="FILE", help="communication graph JSON file"
    )


def _load_application(args: argparse.Namespace):
    if args.app:
        return load_benchmark(args.app)
    return load_cg_json(args.cg_json)


def _build_network(args: argparse.Namespace, cg):
    side = args.side if args.side is not None else grid_side_for(cg)
    return build_case_study_network(args.topology, side, args.router)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="phonocmap",
        description=(
            "PhoNoCMap reproduction: application mapping design-space "
            "exploration for photonic networks-on-chip (DATE 2016)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="list routers, strategies, benchmarks")
    subparsers.add_parser("table1", help="print Table I parameters")

    evaluate = subparsers.add_parser(
        "evaluate", help="evaluate one mapping (random unless --mapping-json)"
    )
    _add_application_arguments(evaluate)
    _add_architecture_arguments(evaluate)
    evaluate.add_argument(
        "--mapping-json", metavar="FILE",
        help="JSON {task: tile} mapping; random when omitted",
    )
    evaluate.add_argument("--seed", type=int, default=None)
    evaluate.add_argument(
        "--per-edge", action="store_true", help="print per-edge metrics"
    )
    evaluate.add_argument(
        "--report", action="store_true",
        help="print the full mapping report with noise breakdowns",
    )
    _add_model_cache_argument(evaluate)

    optimize = subparsers.add_parser("optimize", help="run one strategy")
    _add_application_arguments(optimize)
    _add_architecture_arguments(optimize)
    optimize.add_argument(
        "--objective", choices=("snr", "loss"), default="snr",
        help="optimization objective (default: snr)",
    )
    optimize.add_argument(
        "--strategy", choices=available_strategies(), default="r-pbla"
    )
    optimize.add_argument("--budget", type=int, default=20_000)
    optimize.add_argument("--seed", type=int, default=None)
    optimize.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for parallel DSE (default: 1, sequential)",
    )
    optimize.add_argument(
        "--no-delta", action="store_true",
        help="force full (non-incremental) evaluation of every candidate",
    )
    optimize.add_argument(
        "--mapping-out", metavar="FILE", help="write the best mapping as JSON"
    )
    _add_evaluator_arguments(optimize)

    table2 = subparsers.add_parser("table2", help="reproduce Table II")
    table2.add_argument("--budget", type=int, default=20_000)
    table2.add_argument("--seed", type=int, default=2016)
    table2.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per strategy comparison (default: 1)",
    )
    table2.add_argument(
        "--no-delta", action="store_true",
        help="force full (non-incremental) evaluation of every candidate",
    )
    table2.add_argument(
        "--apps", nargs="+", choices=BENCHMARK_NAMES, default=list(BENCHMARK_NAMES)
    )
    table2.add_argument("--router", default="crux", choices=available_routers())
    table2.add_argument(
        "--with-paper", action="store_true",
        help="print the paper's numbers next to the measured ones",
    )
    _add_evaluator_arguments(table2)

    fig3 = subparsers.add_parser("fig3", help="reproduce Fig. 3")
    fig3.add_argument("--samples", type=int, default=100_000)
    fig3.add_argument("--seed", type=int, default=2016)
    fig3.add_argument(
        "--workers", type=int, default=1,
        help="worker processes sharding the batch evaluations "
             "(default: 1, sequential; results are identical either way)",
    )
    fig3.add_argument(
        "--apps", nargs="+", choices=BENCHMARK_NAMES, default=list(BENCHMARK_NAMES)
    )
    fig3.add_argument(
        "--curves", action="store_true", help="also print ASCII CDF curves"
    )
    _add_evaluator_arguments(fig3)

    scalability = subparsers.add_parser(
        "scalability", help="network scalability extension study"
    )
    scalability.add_argument(
        "--sides", nargs="+", type=int, default=[3, 4, 5, 6]
    )
    scalability.add_argument("--budget", type=int, default=4000)
    scalability.add_argument("--seed", type=int, default=7)
    scalability.add_argument(
        "--workers", type=int, default=1,
        help="worker processes shared by the per-size runs and sampling "
             "(default: 1, sequential)",
    )
    _add_model_cache_argument(scalability)

    export = subparsers.add_parser("export", help="dump a benchmark CG")
    export.add_argument("--app", choices=BENCHMARK_NAMES, required=True)
    export.add_argument(
        "--format", choices=("json", "dot", "edges"), default="json"
    )
    return parser


# ---------------------------------------------------------------------------
# Command implementations
# ---------------------------------------------------------------------------


def _cmd_info(_args) -> int:
    print("PhoNoCMap reproduction", __version__)
    print("routers:   ", ", ".join(available_routers()))
    print("strategies:", ", ".join(available_strategies()))
    print("benchmarks:")
    for name in BENCHMARK_NAMES:
        cg = load_benchmark(name)
        side = grid_side_for(cg)
        print(
            f"  {name:16s} {cg.n_tasks:3d} tasks, {cg.n_edges:3d} edges, "
            f"{side}x{side} grid"
        )
    return 0


def _cmd_table1(_args) -> int:
    print(reproduce_table1())
    return 0


def _cmd_evaluate(args) -> int:
    cg = _load_application(args)
    network = _build_network(args, cg)
    problem = MappingProblem(cg, network)
    evaluator = problem.evaluator()
    if args.mapping_json:
        with open(args.mapping_json) as handle:
            placement = json.load(handle)
        mapping = Mapping.from_dict(cg, placement, problem.n_tiles)
    else:
        mapping = Mapping.random(cg, problem.n_tiles, np.random.default_rng(args.seed))
    metrics = evaluator.evaluate(mapping, with_edges=args.per_edge)
    print(f"application: {cg.name} ({cg.n_tasks} tasks, {cg.n_edges} edges)")
    print(f"architecture: {network.signature.split('|params')[0]}")
    print(f"worst-case SNR:            {format_db(metrics.worst_snr_db)} dB")
    print(f"worst-case insertion loss: {metrics.worst_insertion_loss_db:7.2f} dB")
    if args.report:
        from repro.analysis.inspect import mapping_report

        print()
        print(mapping_report(evaluator, mapping))
    if args.per_edge and metrics.edges is not None:
        for index, edge in enumerate(cg.edges):
            print(
                f"  {cg.tasks[edge.src]:>14s} -> {cg.tasks[edge.dst]:<14s} "
                f"loss {metrics.edges.insertion_loss_db[index]:6.2f} dB   "
                f"SNR {format_db(metrics.edges.snr_db[index])} dB"
            )
    return 0


def _cmd_optimize(args) -> int:
    cg = _load_application(args)
    network = _build_network(args, cg)
    problem = MappingProblem(cg, network, args.objective)
    explorer = DesignSpaceExplorer(
        problem, dtype=_evaluator_dtype(args), use_delta=not args.no_delta,
        n_workers=args.workers, backend=args.backend,
        model_cache_dir=args.model_cache,
    )
    result = explorer.run(args.strategy, budget=args.budget, seed=args.seed)
    print(result.summary())
    print("mapping (task -> tile):")
    for task, tile in result.best_mapping.as_dict().items():
        print(f"  {task:>16s} -> {tile}")
    if args.mapping_out:
        with open(args.mapping_out, "w") as handle:
            json.dump(result.best_mapping.as_dict(), handle, indent=2)
        print(f"mapping written to {args.mapping_out}")
    return 0


def _cmd_table2(args) -> int:
    result = reproduce_table2(
        applications=args.apps,
        budget=args.budget,
        seed=args.seed,
        router=args.router,
        use_delta=not args.no_delta,
        n_workers=args.workers,
        dtype=_evaluator_dtype(args),
        backend=args.backend,
    )
    print(result.format(with_paper=args.with_paper))
    return 0


def _cmd_fig3(args) -> int:
    results = reproduce_fig3(
        applications=args.apps, n_samples=args.samples, seed=args.seed,
        n_workers=args.workers, dtype=_evaluator_dtype(args),
        backend=args.backend,
    )
    print(format_fig3(results))
    if args.curves:
        for name, result in results.items():
            for metric in ("snr", "loss"):
                x, p = result.cdf(metric)
                print()
                print(f"{name} — cumulative probability vs worst-case {metric}")
                print(ascii_curve(x, p, x_label=f"{metric} (dB)", y_label="P"))
    return 0


def _cmd_scalability(args) -> int:
    rows = scalability_study(
        sides=tuple(args.sides), budget=args.budget, seed=args.seed,
        n_workers=args.workers, model_cache_dir=args.model_cache,
    )
    print(format_scalability(rows))
    return 0


def _cmd_export(args) -> int:
    cg = load_benchmark(args.app)
    if args.format == "json":
        print(json.dumps(cg_to_dict(cg), indent=2))
    elif args.format == "dot":
        print(cg_to_dot(cg), end="")
    else:
        print(cg_to_edge_lines(cg), end="")
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "table1": _cmd_table1,
    "evaluate": _cmd_evaluate,
    "optimize": _cmd_optimize,
    "table2": _cmd_table2,
    "fig3": _cmd_fig3,
    "scalability": _cmd_scalability,
    "export": _cmd_export,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.models.coupling import get_model_cache_dir, set_model_cache_dir

    # Process-wide default for the duration of the command: experiment
    # harnesses that build models internally (table2, fig3) resolve
    # against the same cache as the explicitly threaded paths (optimize,
    # scalability). Restored afterwards so programmatic callers invoking
    # main() repeatedly don't leak the directory across invocations.
    previous_cache_dir = get_model_cache_dir()
    if getattr(args, "model_cache", None):
        set_model_cache_dir(args.model_cache)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        set_model_cache_dir(previous_cache_dir)


if __name__ == "__main__":
    sys.exit(main())
