"""The ``phonocmap`` command line tool.

Subcommands are declared in a registry (:data:`SUBCOMMANDS`) — one
entry per command bundling its name, help line, argument wiring and
implementation — in the shape of subcommand-module CLIs, so adding a
command is one list entry instead of edits in three places. The
commands mirror the workflows of the original toolset:

* ``info``        — list registered routers, strategies and benchmarks;
* ``table1``      — print the physical parameter table (paper Table I);
* ``evaluate``    — evaluate a random or user-provided mapping;
* ``optimize``    — run one optimization strategy on one problem;
* ``table2``      — reproduce the paper's Table II;
* ``fig3``        — reproduce the paper's Fig. 3 distributions;
* ``scalability`` — the network-scalability extension study;
* ``sweep``       — optimize across a device-parameter grid;
* ``export``      — dump a benchmark CG as JSON/DOT/edge list;
* ``serve``       — the long-running mapping service daemon;
* ``worker``      — a remote execution worker dialing a scheduler;
* ``chaos``       — run the deterministic fault-injection scenarios.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro import __version__
from repro.analysis.distribution import random_mapping_distribution
from repro.analysis.experiments import (
    build_case_study_network,
    format_fig3,
    reproduce_fig3,
    reproduce_table1,
    reproduce_table2,
)
from repro.analysis.report import ascii_curve, format_db
from repro.analysis.scalability import format_scalability, scalability_study
from repro.appgraph.benchmarks import (
    BENCHMARK_NAMES,
    grid_side_for,
    load_benchmark,
)
from repro.appgraph.io import cg_to_dict, cg_to_dot, cg_to_edge_lines, load_cg_json
from repro.core.dse import DesignSpaceExplorer
from repro.core.mapping import Mapping
from repro.core.objectives import objective_names
from repro.core.problem import MappingProblem
from repro.core.registry import available_strategies
from repro.errors import ConfigurationError, ReproError
from repro.photonics.library import default_library
from repro.photonics.parameters import VariationSpec
from repro.router.registry import available_routers

__all__ = ["main", "build_parser", "SUBCOMMANDS"]


def _add_evaluator_arguments(parser: argparse.ArgumentParser) -> None:
    """Evaluator knobs shared by the heavy-evaluation subcommands."""
    parser.add_argument(
        "--float32", action="store_true",
        help="use float32 coupling matrices (halves dense and CSR memory "
             "at reduced noise precision)",
    )
    parser.add_argument(
        "--backend", choices=("auto", "dense", "sparse"), default="auto",
        help="noise-contraction backend: 'dense' gathers the (M, E, E) "
             "grid, 'sparse' streams the CSR coupling rows, 'auto' "
             "(default) picks by measured coupling density",
    )
    _add_model_cache_argument(parser)


def _add_model_cache_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model-cache", metavar="DIR", default=None,
        help="on-disk coupling-model cache directory: precomputed "
             "matrices are memory-mapped back instead of rebuilt "
             "(keyed by architecture signature, dtype and model "
             "version; results are bit-identical either way). Also "
             "settable via PHONOCMAP_MODEL_CACHE",
    )


def _add_executor_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor", metavar="SPEC", default="local",
        help="execution backend for parallel work: 'local' (persistent "
             "process pool, default), 'inline' (serial, zero processes), "
             "or 'tcp://HOST:PORT' to listen for 'phonocmap worker' "
             "processes and dispatch shards to them. Results are "
             "bit-identical for every backend",
    )
    parser.add_argument(
        "--on-worker-loss", choices=("raise", "degrade"), default=None,
        help="what a tcp:// executor does when remote retries run out "
             "or no worker is connected: 'raise' (default — fail fast "
             "with a typed error) or 'degrade' (finish the work on a "
             "local fallback backend, bit-identically). Also settable "
             "via PHONOCMAP_ON_WORKER_LOSS",
    )


def _evaluator_dtype(args: argparse.Namespace):
    return np.float32 if args.float32 else np.float64


def _add_routes_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--routes", type=int, default=1, metavar="K",
        help="per-pair route-menu size for joint mapping x routing "
             "search (default: 1, base routes only — bit-identical to "
             "mapping-only search)",
    )


def _add_architecture_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology", choices=("mesh", "torus"), default="mesh",
        help="tile interconnection (default: mesh)",
    )
    parser.add_argument(
        "--side", type=int, default=None,
        help="grid side; default: smallest square fitting the application",
    )
    parser.add_argument(
        "--router", default="crux", choices=available_routers(),
        help="optical router microarchitecture (default: crux)",
    )
    parser.add_argument(
        "--device", metavar="SPEC", default="date16",
        help="device parameter set: a component-library entry name, or "
             "'name:coeff=value,...' to instantiate (and content-register) "
             "an override point (default: date16, the paper's Table I)",
    )


def _add_objective_arguments(parser: argparse.ArgumentParser) -> None:
    """Objective + process-variation knobs (optimize / evaluate / sweep)."""
    parser.add_argument(
        "--objective", choices=objective_names(), default="snr",
        help="optimization objective (default: snr)",
    )
    parser.add_argument(
        "--variation-samples", type=int, default=None, metavar="N",
        help="process-variation samples for robust objectives (default: 8)",
    )
    parser.add_argument(
        "--variation-sigma", type=float, default=None, metavar="S",
        help="relative per-coefficient variation std-dev (default: 0.02)",
    )
    parser.add_argument(
        "--variation-seed", type=int, default=None, metavar="SEED",
        help="seed of the variation sample stream (default: 0)",
    )
    parser.add_argument(
        "--variation-quantile", type=float, default=None, metavar="Q",
        help="aggregate the per-sample worst-case SNR at quantile Q "
             "instead of the mean",
    )


def _variation_from(args: argparse.Namespace) -> Optional[VariationSpec]:
    """Build the explicit variation plan, or None for the objective default."""
    values = (
        args.variation_samples,
        args.variation_sigma,
        args.variation_seed,
        args.variation_quantile,
    )
    if all(value is None for value in values):
        return None
    return VariationSpec(
        n_samples=8 if args.variation_samples is None else args.variation_samples,
        sigma=0.02 if args.variation_sigma is None else args.variation_sigma,
        seed=0 if args.variation_seed is None else args.variation_seed,
        quantile=args.variation_quantile,
    )


def _add_application_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--app", choices=BENCHMARK_NAMES, help="built-in benchmark application"
    )
    group.add_argument(
        "--cg-json", metavar="FILE", help="communication graph JSON file"
    )


def _load_application(args: argparse.Namespace):
    if args.app:
        return load_benchmark(args.app)
    return load_cg_json(args.cg_json)


def _build_network(args: argparse.Namespace, cg):
    side = args.side if args.side is not None else grid_side_for(cg)
    params = default_library().resolve(getattr(args, "device", "date16"))
    return build_case_study_network(args.topology, side, args.router, params=params)


# ---------------------------------------------------------------------------
# Subcommand argument wiring
# ---------------------------------------------------------------------------


def _configure_info(parser: argparse.ArgumentParser) -> None:
    pass


def _configure_table1(parser: argparse.ArgumentParser) -> None:
    pass


def _configure_evaluate(parser: argparse.ArgumentParser) -> None:
    _add_application_arguments(parser)
    _add_architecture_arguments(parser)
    parser.add_argument(
        "--mapping-json", metavar="FILE",
        help="JSON {task: tile} mapping; random when omitted",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--per-edge", action="store_true", help="print per-edge metrics"
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print the full mapping report with noise breakdowns",
    )
    _add_objective_arguments(parser)
    # The same evaluator knobs every other heavy subcommand exposes
    # (--float32 / --backend / --model-cache) — `evaluate` used to take
    # only --model-cache and silently score at float64/dense defaults.
    _add_evaluator_arguments(parser)


def _configure_optimize(parser: argparse.ArgumentParser) -> None:
    _add_application_arguments(parser)
    _add_architecture_arguments(parser)
    _add_objective_arguments(parser)
    parser.add_argument(
        "--strategy", choices=available_strategies(), default="r-pbla"
    )
    parser.add_argument("--budget", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for parallel DSE (default: 1, sequential)",
    )
    parser.add_argument(
        "--no-delta", action="store_true",
        help="force full (non-incremental) evaluation of every candidate",
    )
    parser.add_argument(
        "--mapping-out", metavar="FILE", help="write the best mapping as JSON"
    )
    _add_routes_argument(parser)
    _add_evaluator_arguments(parser)
    _add_executor_argument(parser)


def _configure_table2(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--budget", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per strategy comparison (default: 1)",
    )
    parser.add_argument(
        "--no-delta", action="store_true",
        help="force full (non-incremental) evaluation of every candidate",
    )
    parser.add_argument(
        "--apps", nargs="+", choices=BENCHMARK_NAMES, default=list(BENCHMARK_NAMES)
    )
    parser.add_argument("--router", default="crux", choices=available_routers())
    parser.add_argument(
        "--with-paper", action="store_true",
        help="print the paper's numbers next to the measured ones",
    )
    _add_routes_argument(parser)
    _add_evaluator_arguments(parser)
    _add_executor_argument(parser)


def _configure_fig3(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--samples", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes sharding the batch evaluations "
             "(default: 1, sequential; results are identical either way)",
    )
    parser.add_argument(
        "--apps", nargs="+", choices=BENCHMARK_NAMES, default=list(BENCHMARK_NAMES)
    )
    parser.add_argument(
        "--curves", action="store_true", help="also print ASCII CDF curves"
    )
    _add_routes_argument(parser)
    _add_evaluator_arguments(parser)
    _add_executor_argument(parser)


def _configure_scalability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sides", nargs="+", type=int, default=[3, 4, 5, 6]
    )
    parser.add_argument("--budget", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes shared by the per-size runs and sampling "
             "(default: 1, sequential)",
    )
    _add_model_cache_argument(parser)


def _configure_sweep(parser: argparse.ArgumentParser) -> None:
    _add_application_arguments(parser)
    _add_architecture_arguments(parser)
    _add_objective_arguments(parser)
    parser.add_argument(
        "--param", action="append", default=[], metavar="NAME=V1,V2,...",
        help="one sweep axis: a physical coefficient and its values; "
             "repeat for more axes (the sweep runs their cartesian "
             "product). No axes: the single --device point",
    )
    parser.add_argument(
        "--strategy", choices=available_strategies(), default="r-pbla"
    )
    parser.add_argument("--budget", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per point (default: 1, sequential)",
    )
    parser.add_argument(
        "--no-delta", action="store_true",
        help="force full (non-incremental) evaluation of every candidate",
    )
    parser.add_argument(
        "--json-out", metavar="FILE",
        help="also write the sweep points as a JSON document",
    )
    _add_evaluator_arguments(parser)


def _parse_sweep_grid(param_args: List[str]):
    """``--param name=v1,v2`` occurrences -> the sweep grid axes."""
    grid = []
    for item in param_args:
        name, sep, values = item.partition("=")
        if not sep or not name.strip() or not values.strip():
            raise ConfigurationError(
                f"--param must look like name=v1,v2,... , got {item!r}"
            )
        try:
            axis = [float(v) for v in values.split(",") if v.strip()]
        except ValueError:
            raise ConfigurationError(
                f"--param {name.strip()!r} has a non-numeric value in "
                f"{values!r}"
            ) from None
        grid.append((name.strip(), axis))
    return grid


def _configure_export(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--app", choices=BENCHMARK_NAMES, required=True)
    parser.add_argument(
        "--format", choices=("json", "dot", "edges"), default="json"
    )


def _configure_serve(parser: argparse.ArgumentParser) -> None:
    endpoint = parser.add_mutually_exclusive_group(required=True)
    endpoint.add_argument(
        "--socket", metavar="PATH",
        help="serve newline-delimited JSON requests on this unix socket",
    )
    endpoint.add_argument(
        "--port", type=int, metavar="N",
        help="serve HTTP POST requests on 127.0.0.1:N (0 = ephemeral)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes the coalesced batch flights shard "
             "across (default: 1, inline)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=4,
        help="requests executing concurrently (default: 4)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=16,
        help="admitted requests waiting for a slot before new ones "
             "are rejected with a 429-style error (default: 16)",
    )
    parser.add_argument(
        "--max-budget", type=int, default=1_000_000,
        help="per-request optimize budget cap (default: 1,000,000)",
    )
    parser.add_argument(
        "--max-samples", type=int, default=2_000_000,
        help="per-request distribution sample cap (default: 2,000,000)",
    )
    parser.add_argument(
        "--max-mappings", type=int, default=100_000,
        help="per-request evaluate row cap (default: 100,000)",
    )
    parser.add_argument(
        "--coalesce-window", type=float, default=0.004, metavar="SECONDS",
        help="how long a batch flight lingers for concurrent "
             "same-signature requests to join it (default: 0.004)",
    )
    parser.add_argument(
        "--routes", type=int, default=1, metavar="K",
        help="default per-pair route-menu size applied to requests that "
             "do not set their own 'routes' field (default: 1)",
    )
    _add_model_cache_argument(parser)
    _add_executor_argument(parser)


def _configure_worker(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--connect", metavar="HOST:PORT", required=True,
        help="address of the scheduler to serve tasks for (the process "
             "that was started with --executor tcp://HOST:PORT)",
    )
    parser.add_argument(
        "--auth-token", metavar="TOKEN", default=None,
        help="shared secret presented to the scheduler in the hello "
             "frame (default: PHONOCMAP_AUTH_TOKEN). Required when the "
             "scheduler side sets a token; prefer the environment "
             "variable — command lines are visible in 'ps'",
    )
    parser.add_argument(
        "--reconnect", type=int, default=None, metavar="N",
        help="redial a lost scheduler up to N consecutive times with "
             "capped exponential backoff before exiting (default: "
             "PHONOCMAP_RECONNECT_ATTEMPTS, else 0 — exit on first "
             "loss and let a supervisor restart)",
    )
    _add_model_cache_argument(parser)


def _configure_chaos(parser: argparse.ArgumentParser) -> None:
    from repro.distributed.chaos import SCENARIOS

    parser.add_argument(
        "--scenario", action="append", choices=sorted(SCENARIOS),
        default=None, metavar="NAME",
        help="scenario to run (repeatable; default: all of them)",
    )
    parser.add_argument(
        "--app", choices=BENCHMARK_NAMES, default="mwd",
        help="benchmark application the scenarios map (default: mwd)",
    )
    parser.add_argument(
        "--budget", type=int, default=600,
        help="optimizer evaluations per strategy (default: 600)",
    )
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--workers", type=int, default=2,
        help="clean TCP workers per scenario (default: 2)",
    )
    parser.add_argument(
        "--json-out", metavar="FILE",
        help="also write the scenario reports as a JSON document",
    )


# ---------------------------------------------------------------------------
# Command implementations
# ---------------------------------------------------------------------------


def _cmd_info(_args) -> int:
    print("PhoNoCMap reproduction", __version__)
    print("routers:   ", ", ".join(available_routers()))
    print("strategies:", ", ".join(available_strategies()))
    print("benchmarks:")
    for name in BENCHMARK_NAMES:
        cg = load_benchmark(name)
        side = grid_side_for(cg)
        print(
            f"  {name:16s} {cg.n_tasks:3d} tasks, {cg.n_edges:3d} edges, "
            f"{side}x{side} grid"
        )
    return 0


def _cmd_table1(_args) -> int:
    print(reproduce_table1())
    return 0


def _cmd_evaluate(args) -> int:
    cg = _load_application(args)
    network = _build_network(args, cg)
    problem = MappingProblem(
        cg, network, args.objective, variation=_variation_from(args)
    )
    evaluator = problem.evaluator(
        dtype=_evaluator_dtype(args), backend=args.backend
    )
    if args.mapping_json:
        with open(args.mapping_json) as handle:
            placement = json.load(handle)
        mapping = Mapping.from_dict(cg, placement, problem.n_tiles)
    else:
        mapping = Mapping.random(cg, problem.n_tiles, np.random.default_rng(args.seed))
    metrics = evaluator.evaluate(mapping, with_edges=args.per_edge)
    print(f"application: {cg.name} ({cg.n_tasks} tasks, {cg.n_edges} edges)")
    print(f"architecture: {network.signature.split('|params')[0]}")
    print(f"worst-case SNR:            {format_db(metrics.worst_snr_db)} dB")
    print(f"worst-case insertion loss: {metrics.worst_insertion_loss_db:7.2f} dB")
    if metrics.laser_power_db is not None:
        print(f"laser-power budget:        {metrics.laser_power_db:7.2f} dB")
    if metrics.robust_snr_db is not None:
        print(
            f"variation-robust SNR:      {format_db(metrics.robust_snr_db)} dB"
            f"  ({problem.variation_fingerprint})"
        )
    print(f"objective ({problem.objective.value}): {metrics.score:.4f}")
    if args.report:
        from repro.analysis.inspect import mapping_report

        print()
        print(mapping_report(evaluator, mapping))
    if args.per_edge and metrics.edges is not None:
        for index, edge in enumerate(cg.edges):
            print(
                f"  {cg.tasks[edge.src]:>14s} -> {cg.tasks[edge.dst]:<14s} "
                f"loss {metrics.edges.insertion_loss_db[index]:6.2f} dB   "
                f"SNR {format_db(metrics.edges.snr_db[index])} dB"
            )
    return 0


def _cmd_optimize(args) -> int:
    cg = _load_application(args)
    network = _build_network(args, cg)
    problem = MappingProblem(
        cg, network, args.objective, variation=_variation_from(args),
        routes=args.routes,
    )
    explorer = DesignSpaceExplorer(
        problem, dtype=_evaluator_dtype(args), use_delta=not args.no_delta,
        n_workers=args.workers, backend=args.backend,
        model_cache_dir=args.model_cache, executor=args.executor,
    )
    result = explorer.run(args.strategy, budget=args.budget, seed=args.seed)
    objective_line = f"objective: {problem.objective.value}"
    if problem.variation is not None:
        objective_line += f"  [{problem.variation_fingerprint}]"
    print(objective_line)
    print(result.summary())
    print("mapping (task -> tile):")
    for task, tile in result.best_mapping.as_dict().items():
        print(f"  {task:>16s} -> {tile}")
    if result.route_genes is not None:
        chosen = ", ".join(
            f"{cg.tasks[edge.src]}->{cg.tasks[edge.dst]}:{int(gene)}"
            for edge, gene in zip(cg.edges, result.route_genes)
            if int(gene) != 0
        )
        print(f"route genes (non-base): {chosen if chosen else '(none)'}")
    if args.mapping_out:
        with open(args.mapping_out, "w") as handle:
            json.dump(result.best_mapping.as_dict(), handle, indent=2)
        print(f"mapping written to {args.mapping_out}")
    return 0


def _cmd_table2(args) -> int:
    result = reproduce_table2(
        applications=args.apps,
        budget=args.budget,
        seed=args.seed,
        router=args.router,
        use_delta=not args.no_delta,
        n_workers=args.workers,
        dtype=_evaluator_dtype(args),
        backend=args.backend,
        executor=args.executor,
        routes=args.routes,
    )
    print(result.format(with_paper=args.with_paper))
    return 0


def _cmd_fig3(args) -> int:
    results = reproduce_fig3(
        applications=args.apps, n_samples=args.samples, seed=args.seed,
        n_workers=args.workers, dtype=_evaluator_dtype(args),
        backend=args.backend, executor=args.executor, routes=args.routes,
    )
    print(format_fig3(results))
    if args.curves:
        for name, result in results.items():
            for metric in ("snr", "loss"):
                x, p = result.cdf(metric)
                print()
                print(f"{name} — cumulative probability vs worst-case {metric}")
                print(ascii_curve(x, p, x_label=f"{metric} (dB)", y_label="P"))
    return 0


def _cmd_scalability(args) -> int:
    rows = scalability_study(
        sides=tuple(args.sides), budget=args.budget, seed=args.seed,
        n_workers=args.workers, model_cache_dir=args.model_cache,
    )
    print(format_scalability(rows))
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.sweep import sweep_device_points

    cg = _load_application(args)
    result = sweep_device_points(
        cg,
        _parse_sweep_grid(args.param),
        topology=args.topology,
        side=args.side,
        router=args.router,
        base=args.device,
        objective=args.objective,
        variation=_variation_from(args),
        strategy=args.strategy,
        budget=args.budget,
        seed=args.seed,
        dtype=_evaluator_dtype(args),
        backend=args.backend,
        use_delta=not args.no_delta,
        n_workers=args.workers,
        model_cache_dir=args.model_cache,
    )
    print(result.format())
    best = result.best()
    print(f"best point: {best.key}  score {best.score:.4f}")
    if args.json_out:
        document = {
            "application": result.application,
            "objective": result.objective.value,
            "strategy": result.strategy,
            "budget": result.budget,
            "points": [
                {
                    "key": point.key,
                    "overrides": point.overrides,
                    "content_hash": point.content_hash,
                    "score": point.score,
                    "evaluations": int(point.result.evaluations),
                }
                for point in result.points
            ],
        }
        with open(args.json_out, "w") as handle:
            json.dump(document, handle, indent=2)
        print(f"sweep written to {args.json_out}")
    return 0


def _cmd_worker(args) -> int:
    from repro.distributed.worker import run_worker

    return run_worker(
        args.connect,
        model_cache_dir=args.model_cache,
        auth_token=args.auth_token,
        reconnect_attempts=args.reconnect,
    )


def _cmd_chaos(args) -> int:
    from repro.distributed.chaos import SCENARIOS, run_scenario

    names = args.scenario or sorted(SCENARIOS)
    reports = []
    failures = 0
    for name in names:
        report = run_scenario(
            name,
            app=args.app,
            budget=args.budget,
            seed=args.seed,
            n_workers=args.workers,
        )
        reports.append(report)
        status = "ok" if report["ok"] else "FAIL"
        print(
            f"{status:4s} {name:14s} outcome={report['outcome']:24s} "
            f"wall={report['faulted_wall_s']:6.2f}s "
            f"(oracle {report['oracle_wall_s']:.2f}s)  "
            f"lost={report['hub']['workers_lost']} "
            f"retried={report['hub']['tasks_retried']} "
            f"timed_out={report['hub']['tasks_timed_out']}"
        )
        if not report["ok"]:
            failures += 1
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(reports, handle, indent=2)
        print(f"reports written to {args.json_out}")
    print(f"{len(reports) - failures}/{len(reports)} scenarios held the contract")
    return 1 if failures else 0


def _cmd_export(args) -> int:
    cg = load_benchmark(args.app)
    if args.format == "json":
        print(json.dumps(cg_to_dict(cg), indent=2))
    elif args.format == "dot":
        print(cg_to_dot(cg), end="")
    else:
        print(cg_to_edge_lines(cg), end="")
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.service import ServiceCore, ServiceLimits, ServiceServer

    core = ServiceCore(
        n_workers=args.workers,
        model_cache_dir=args.model_cache,
        limits=ServiceLimits(
            max_inflight=args.max_inflight,
            queue_size=args.queue_size,
            max_budget=args.max_budget,
            max_samples=args.max_samples,
            max_mappings=args.max_mappings,
        ),
        coalesce_window_s=args.coalesce_window,
        executor=args.executor,
        default_routes=args.routes,
    )
    server = ServiceServer(core, socket_path=args.socket, port=args.port)
    stop = threading.Event()
    previous_sigterm = None
    try:
        # SIGTERM rides the same graceful path as Ctrl-C: stop accepting,
        # drain in-flight requests, shutdown_pools(), unlink the socket.
        previous_sigterm = signal.signal(
            signal.SIGTERM, lambda signum, frame: stop.set()
        )
    except ValueError:
        pass  # not the main thread (embedded/test use): signals stay as-is
    server.start()
    print(f"phonocmap serve: listening on {server.address}", flush=True)
    try:
        while not stop.wait(0.2):
            pass
        return 0
    finally:
        server.stop()
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        print("phonocmap serve: drained and shut down", file=sys.stderr)


# ---------------------------------------------------------------------------
# Subcommand registry (the shape of subcommand-module CLIs: each entry
# owns its name, help line, parser wiring and implementation)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Subcommand:
    """One CLI subcommand: its name, help, argument wiring and body."""

    name: str
    help: str
    configure: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace], int]


SUBCOMMANDS = (
    Subcommand("info", "list routers, strategies, benchmarks",
               _configure_info, _cmd_info),
    Subcommand("table1", "print Table I parameters",
               _configure_table1, _cmd_table1),
    Subcommand("evaluate", "evaluate one mapping (random unless --mapping-json)",
               _configure_evaluate, _cmd_evaluate),
    Subcommand("optimize", "run one strategy",
               _configure_optimize, _cmd_optimize),
    Subcommand("table2", "reproduce Table II",
               _configure_table2, _cmd_table2),
    Subcommand("fig3", "reproduce Fig. 3",
               _configure_fig3, _cmd_fig3),
    Subcommand("scalability", "network scalability extension study",
               _configure_scalability, _cmd_scalability),
    Subcommand("sweep", "optimize across a device-parameter grid",
               _configure_sweep, _cmd_sweep),
    Subcommand("export", "dump a benchmark CG",
               _configure_export, _cmd_export),
    Subcommand("serve", "run the long-lived mapping-service daemon",
               _configure_serve, _cmd_serve),
    Subcommand("worker", "serve remote execution tasks for a scheduler",
               _configure_worker, _cmd_worker),
    Subcommand("chaos", "run the deterministic fault-injection scenarios",
               _configure_chaos, _cmd_chaos),
)


def build_parser() -> argparse.ArgumentParser:
    """Assemble the ``phonocmap`` parser from the subcommand registry."""
    parser = argparse.ArgumentParser(
        prog="phonocmap",
        description=(
            "PhoNoCMap reproduction: application mapping design-space "
            "exploration for photonic networks-on-chip (DATE 2016)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)
    for command in SUBCOMMANDS:
        subparser = subparsers.add_parser(command.name, help=command.help)
        command.configure(subparser)
        subparser.set_defaults(run=command.run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, dispatch, and translate failures to exit codes."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.models.coupling import get_model_cache_dir, set_model_cache_dir

    # Process-wide default for the duration of the command: experiment
    # harnesses that build models internally (table2, fig3) resolve
    # against the same cache as the explicitly threaded paths (optimize,
    # scalability). Restored afterwards so programmatic callers invoking
    # main() repeatedly don't leak the directory across invocations.
    previous_cache_dir = get_model_cache_dir()
    if getattr(args, "model_cache", None):
        set_model_cache_dir(args.model_cache)
    from repro.core.executor import set_worker_loss_policy

    # Same save/restore contract as the cache dir: --on-worker-loss is a
    # process-wide policy for this one command.
    previous_policy = None
    policy_set = False
    if getattr(args, "on_worker_loss", None):
        previous_policy = set_worker_loss_policy(args.on_worker_loss)
        policy_set = True
    try:
        return args.run(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # `phonocmap table2 | head`: the pipe consumer is gone, which is
        # the reader's normal way of saying "enough". Point stdout at
        # /dev/null so the interpreter's exit-time flush of the dead
        # pipe cannot raise a second traceback, then exit cleanly.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError):
            pass  # stdout has no real fd (captured/redirected streams)
        return 0
    except KeyboardInterrupt:
        print(file=sys.stderr)  # move past a partially printed line
        return 130  # 128 + SIGINT, the shell convention
    finally:
        set_model_cache_dir(previous_cache_dir)
        if policy_set:
            set_worker_loss_policy(previous_policy)


if __name__ == "__main__":
    sys.exit(main())
