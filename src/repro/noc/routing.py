"""Routing algorithms (paper §II-A: "direct topologies with dimension order
routing", pluggable like every other architecture component).

A routing algorithm turns a (source tile, destination tile) pair into a hop
list: for every router along the path, through which port the signal enters
(``"L"`` at the source — the gateway injector) and leaves (``"L"`` at the
destination — the gateway detector).

Provided algorithms:

* :class:`XYRouting` — classic dimension-order: resolve the column (X)
  first, then the row (Y). This is the order Crux is optimized for.
* :class:`YXRouting` — the transposed order, useful for ablations (needs a
  router providing Y-to-X turns, e.g. the full crossbar).

Both work on meshes and on tori; on a torus each dimension independently
takes the shorter way around, preferring the positive (E/N) direction on
ties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import RoutingError
from repro.noc.topology import GridTopology, opposite_direction

__all__ = ["Hop", "RoutingAlgorithm", "XYRouting", "YXRouting", "GATEWAY"]

#: Port symbol for the local gateway (injection at the source, ejection at
#: the destination).
GATEWAY = "L"


@dataclass(frozen=True)
class Hop:
    """One router visit: enter through ``in_dir``, leave through ``out_dir``."""

    tile: int
    in_dir: str
    out_dir: str


class RoutingAlgorithm:
    """Base class: subclasses provide ``name`` and :meth:`direction_plan`."""

    name = "abstract"

    def direction_plan(
        self, topology: GridTopology, src: int, dst: int
    ) -> List[str]:
        """The sequence of link directions from ``src`` to ``dst``."""
        raise NotImplementedError

    def route(self, topology: GridTopology, src: int, dst: int) -> List[Hop]:
        """Full hop list, gateway to gateway."""
        if src == dst:
            raise RoutingError(f"cannot route a tile to itself (tile {src})")
        for tile in (src, dst):
            if not (0 <= tile < topology.n_tiles):
                raise RoutingError(
                    f"tile {tile} outside topology {topology.signature}"
                )
        directions = self.direction_plan(topology, src, dst)
        hops: List[Hop] = []
        current = src
        in_dir = GATEWAY
        for direction in directions:
            link = topology.link(current, direction)
            hops.append(Hop(current, in_dir, direction))
            in_dir = link.in_dir
            current = link.dst
        hops.append(Hop(current, in_dir, GATEWAY))
        if current != dst:
            raise RoutingError(
                f"{self.name} routing ended at tile {current}, expected {dst}"
            )
        return hops


def _dimension_steps(src_coord: int, dst_coord: int, size: int,
                     wraparound: bool, positive: str, negative: str) -> List[str]:
    """Directions to move one grid dimension from src to dst."""
    if src_coord == dst_coord:
        return []
    if not wraparound:
        if dst_coord > src_coord:
            return [positive] * (dst_coord - src_coord)
        return [negative] * (src_coord - dst_coord)
    forward = (dst_coord - src_coord) % size
    backward = size - forward
    if forward <= backward:
        return [positive] * forward
    return [negative] * backward


class XYRouting(RoutingAlgorithm):
    """Dimension-order routing, X (columns) first."""

    name = "xy"

    def direction_plan(
        self, topology: GridTopology, src: int, dst: int
    ) -> List[str]:
        src_row, src_col = topology.tile_coords(src)
        dst_row, dst_col = topology.tile_coords(dst)
        steps = _dimension_steps(
            src_col, dst_col, topology.cols, topology.wraparound, "E", "W"
        )
        steps += _dimension_steps(
            src_row, dst_row, topology.rows, topology.wraparound, "N", "S"
        )
        return steps


class YXRouting(RoutingAlgorithm):
    """Dimension-order routing, Y (rows) first."""

    name = "yx"

    def direction_plan(
        self, topology: GridTopology, src: int, dst: int
    ) -> List[str]:
        src_row, src_col = topology.tile_coords(src)
        dst_row, dst_col = topology.tile_coords(dst)
        steps = _dimension_steps(
            src_row, dst_row, topology.rows, topology.wraparound, "N", "S"
        )
        steps += _dimension_steps(
            src_col, dst_col, topology.cols, topology.wraparound, "E", "W"
        )
        return steps
