"""Routing algorithms (paper §II-A: "direct topologies with dimension order
routing", pluggable like every other architecture component).

A routing algorithm turns a (source tile, destination tile) pair into a hop
list: for every router along the path, through which port the signal enters
(``"L"`` at the source — the gateway injector) and leaves (``"L"`` at the
destination — the gateway detector).

Provided algorithms:

* :class:`XYRouting` — classic dimension-order: resolve the column (X)
  first, then the row (Y). This is the order Crux is optimized for.
* :class:`YXRouting` — the transposed order, useful for ablations (needs a
  router providing Y-to-X turns, e.g. the full crossbar).

Both work on meshes and on tori; on a torus each dimension independently
takes the shorter way around, preferring the positive (E/N) direction on
ties.

For joint mapping x routing search, :class:`KPathRouting` enumerates, per
(src, dst) pair, up to ``k`` minimal-hop router-legal direction plans
(dimension-order XY and YX plans are members when legal; ties broken
deterministically by direction lexicographic order), packaged as a
:class:`RouteSet` — the per-pair route menu replacing the single implicit
route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import RoutingError
from repro.noc.topology import GridTopology, opposite_direction

__all__ = [
    "Hop",
    "RoutingAlgorithm",
    "XYRouting",
    "YXRouting",
    "KPathRouting",
    "RouteSet",
    "walk_plan",
    "GATEWAY",
]

#: Port symbol for the local gateway (injection at the source, ejection at
#: the destination).
GATEWAY = "L"


@dataclass(frozen=True)
class Hop:
    """One router visit: enter through ``in_dir``, leave through ``out_dir``."""

    tile: int
    in_dir: str
    out_dir: str


def walk_plan(
    topology: GridTopology,
    src: int,
    dst: int,
    directions: Sequence[str],
    label: str = "plan",
) -> List[Hop]:
    """Walk a direction plan into a gateway-to-gateway hop list.

    The plan is validated against ``topology.link`` *before* walking, so a
    plan that steps off the grid (or through a missing link) fails with the
    offending step, the full plan and the topology signature in the message
    rather than an anonymous mid-walk :class:`~repro.errors.TopologyError`.
    """
    probe = src
    for step, direction in enumerate(directions):
        if not topology.has_link(probe, direction):
            raise RoutingError(
                f"{label} {list(directions)!r} for {src}->{dst} leaves tile "
                f"{probe} through {direction!r} (step {step}), which has no "
                f"link on {topology.signature}"
            )
        probe = topology.link(probe, direction).dst
    hops: List[Hop] = []
    current = src
    in_dir = GATEWAY
    for direction in directions:
        link = topology.link(current, direction)
        hops.append(Hop(current, in_dir, direction))
        in_dir = link.in_dir
        current = link.dst
    hops.append(Hop(current, in_dir, GATEWAY))
    if current != dst:
        raise RoutingError(
            f"{label} ended at tile {current}, expected {dst} "
            f"(plan {list(directions)!r} on {topology.signature})"
        )
    return hops


class RoutingAlgorithm:
    """Base class: subclasses provide ``name`` and :meth:`direction_plan`."""

    name = "abstract"

    def direction_plan(
        self, topology: GridTopology, src: int, dst: int
    ) -> List[str]:
        """The sequence of link directions from ``src`` to ``dst``."""
        raise NotImplementedError

    def route(self, topology: GridTopology, src: int, dst: int) -> List[Hop]:
        """Full hop list, gateway to gateway."""
        if src == dst:
            raise RoutingError(f"cannot route a tile to itself (tile {src})")
        for tile in (src, dst):
            if not (0 <= tile < topology.n_tiles):
                raise RoutingError(
                    f"tile {tile} outside topology {topology.signature}"
                )
        directions = self.direction_plan(topology, src, dst)
        return walk_plan(
            topology, src, dst, directions, label=f"{self.name} routing"
        )


def _dimension_steps(src_coord: int, dst_coord: int, size: int,
                     wraparound: bool, positive: str, negative: str) -> List[str]:
    """Directions to move one grid dimension from src to dst."""
    if src_coord == dst_coord:
        return []
    if not wraparound:
        if dst_coord > src_coord:
            return [positive] * (dst_coord - src_coord)
        return [negative] * (src_coord - dst_coord)
    forward = (dst_coord - src_coord) % size
    backward = size - forward
    if forward <= backward:
        return [positive] * forward
    return [negative] * backward


class XYRouting(RoutingAlgorithm):
    """Dimension-order routing, X (columns) first."""

    name = "xy"

    def direction_plan(
        self, topology: GridTopology, src: int, dst: int
    ) -> List[str]:
        src_row, src_col = topology.tile_coords(src)
        dst_row, dst_col = topology.tile_coords(dst)
        steps = _dimension_steps(
            src_col, dst_col, topology.cols, topology.wraparound, "E", "W"
        )
        steps += _dimension_steps(
            src_row, dst_row, topology.rows, topology.wraparound, "N", "S"
        )
        return steps


class YXRouting(RoutingAlgorithm):
    """Dimension-order routing, Y (rows) first."""

    name = "yx"

    def direction_plan(
        self, topology: GridTopology, src: int, dst: int
    ) -> List[str]:
        src_row, src_col = topology.tile_coords(src)
        dst_row, dst_col = topology.tile_coords(dst)
        steps = _dimension_steps(
            src_row, dst_row, topology.rows, topology.wraparound, "N", "S"
        )
        steps += _dimension_steps(
            src_col, dst_col, topology.cols, topology.wraparound, "E", "W"
        )
        return steps


# -- k-path enumeration ---------------------------------------------------------

#: A turn predicate: ``legal(in_dir, out_dir)`` with :data:`GATEWAY` at the
#: endpoints; used to restrict enumerated plans to turns the router provides.
TurnPredicate = Callable[[str, str], bool]


@dataclass(frozen=True)
class RouteSet:
    """The route menu of one (src, dst) pair.

    ``plans[0]`` is always the pair's *base* plan — the plan of the
    network's configured routing algorithm — so route index 0 reproduces
    today's single-route behaviour exactly. The remaining plans are the
    next minimal-hop router-legal alternatives in direction-lexicographic
    order.
    """

    src: int
    dst: int
    plans: Tuple[Tuple[str, ...], ...]

    @property
    def n_routes(self) -> int:
        """How many distinct legal plans this pair offers (>= 1)."""
        return len(self.plans)

    def plan(self, route: int) -> Tuple[str, ...]:
        """The plan of route ``route``; indices wrap modulo the menu size."""
        return self.plans[route % len(self.plans)]


def _dimension_options(src_coord: int, dst_coord: int, size: int,
                       wraparound: bool, positive: str,
                       negative: str) -> List[Tuple[str, int]]:
    """Minimal-hop (direction, count) candidates for one grid dimension.

    Mirrors :func:`_dimension_steps`, but on a torus tie (forward ==
    backward) *both* wrap directions are returned — that is exactly where
    the route menu grows beyond dimension-order.
    """
    if src_coord == dst_coord:
        return []
    if not wraparound:
        if dst_coord > src_coord:
            return [(positive, dst_coord - src_coord)]
        return [(negative, src_coord - dst_coord)]
    forward = (dst_coord - src_coord) % size
    backward = size - forward
    options = []
    if forward <= backward:
        options.append((positive, forward))
    if backward <= forward:
        options.append((negative, backward))
    return options


def _minimal_plans(
    topology: GridTopology,
    src: int,
    dst: int,
    limit: int,
    turn_legal: TurnPredicate,
) -> List[Tuple[str, ...]]:
    """Up to ``limit`` minimal-hop legal plans, in lexicographic order.

    A minimal plan interleaves one per-dimension step multiset (each
    dimension moving monotonically the short way; torus ties contribute
    both wrap directions). The depth-first expansion tries directions in
    sorted order, so plans surface lexicographically and the search stops
    as soon as ``limit`` plans are found. Turn legality is checked on
    every consecutive direction pair (gateway turns included), pruning
    illegal prefixes early.
    """
    if src == dst or limit <= 0:
        return []
    src_row, src_col = topology.tile_coords(src)
    dst_row, dst_col = topology.tile_coords(dst)
    col_options = _dimension_options(
        src_col, dst_col, topology.cols, topology.wraparound, "E", "W"
    )
    row_options = _dimension_options(
        src_row, dst_row, topology.rows, topology.wraparound, "N", "S"
    )
    found: List[Tuple[str, ...]] = []
    plan: List[str] = []

    def extend(prev_in: str, col, row) -> None:
        # col/row: None = dimension resolved; ("?", options) = wrap
        # direction not yet picked; (direction, remaining) = committed.
        if len(found) >= limit:
            return
        if col is None and row is None:
            if turn_legal(prev_in, GATEWAY):
                found.append(tuple(plan))
            return
        branches = []
        for axis, state in (("col", col), ("row", row)):
            if state is None:
                continue
            if state[0] == "?":
                for direction, count in state[1]:
                    branches.append((direction, axis, count))
            else:
                branches.append((state[0], axis, state[1]))
        for direction, axis, count in sorted(branches):
            if not turn_legal(prev_in, direction):
                continue
            nxt = (direction, count - 1) if count > 1 else None
            plan.append(direction)
            if axis == "col":
                extend(opposite_direction(direction), nxt, row)
            else:
                extend(opposite_direction(direction), col, nxt)
            plan.pop()

    extend(
        GATEWAY,
        ("?", col_options) if col_options else None,
        ("?", row_options) if row_options else None,
    )
    return found


class KPathRouting(RoutingAlgorithm):
    """Enumerator of the k shortest router-legal plans per (src, dst) pair.

    Route 0 is always the ``base`` algorithm's plan (default
    :class:`XYRouting`), so a k=1 menu is exactly today's single implicit
    route; routes 1..k-1 are the remaining minimal-hop legal plans in
    direction-lexicographic order. As a :class:`RoutingAlgorithm` it
    routes along the base plan, so it can stand in anywhere a single
    route is expected.
    """

    def __init__(self, k: int, base: Optional[RoutingAlgorithm] = None):
        if k < 1:
            raise RoutingError(f"k-path routing needs k >= 1, got {k}")
        self.k = int(k)
        self.base = base if base is not None else XYRouting()
        self.name = f"kpath{self.k}({self.base.name})"

    def direction_plan(
        self, topology: GridTopology, src: int, dst: int
    ) -> List[str]:
        """The base (route 0) plan."""
        return self.base.direction_plan(topology, src, dst)

    def route_set(
        self,
        topology: GridTopology,
        src: int,
        dst: int,
        turn_legal: Optional[TurnPredicate] = None,
    ) -> RouteSet:
        """The pair's route menu: base plan first, then lex-order extras."""
        if src == dst:
            raise RoutingError(f"cannot route a tile to itself (tile {src})")
        legal = turn_legal if turn_legal is not None else (lambda i, o: True)
        base_plan = tuple(self.base.direction_plan(topology, src, dst))
        plans = [base_plan]
        if self.k > 1:
            for candidate in _minimal_plans(topology, src, dst, self.k, legal):
                if candidate == base_plan:
                    continue
                plans.append(candidate)
                if len(plans) == self.k:
                    break
        return RouteSet(src, dst, tuple(plans))
