"""Photonic NoC assembly: topology + routers + links as one element netlist.

:class:`PhotonicNoC` instantiates one compiled optical router per tile,
connects router ports with inter-router link waveguides according to the
topology, and elaborates the routing algorithm's hop lists into
element-level :class:`~repro.noc.paths.NetworkPath` objects.

Every element instance (router-internal elements of every tile, plus link
waveguides) gets a *global element id*; paths and the crosstalk model work
exclusively with these ids, so two communications interact exactly when
they visit the same physical element instance.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.noc.floorplan import Floorplan
from repro.noc.paths import NetworkPath, Traversal
from repro.noc.routing import (
    GATEWAY,
    KPathRouting,
    RouteSet,
    RoutingAlgorithm,
    XYRouting,
    walk_plan,
)
from repro.noc.topology import GridTopology
from repro.photonics.elements import (
    WG_IN,
    WG_OUT,
    ElementKind,
    TraversalState,
    traversal_loss_db,
)
from repro.photonics.parameters import PhysicalParameters
from repro.router.layout import RouterSpec
from repro.router.registry import build_router

__all__ = ["NetworkElement", "PhotonicNoC"]


class NetworkElement:
    """One physical element instance in the assembled network."""

    __slots__ = ("gid", "kind", "label", "length_cm")

    def __init__(self, gid: int, kind: ElementKind, label: str, length_cm: float):
        self.gid = gid
        self.kind = kind
        self.label = label
        self.length_cm = length_cm

    def __repr__(self) -> str:
        return f"NetworkElement({self.gid}, {self.kind.value}, {self.label!r})"


class PhotonicNoC:
    """A fully assembled photonic network-on-chip.

    Parameters
    ----------
    topology:
        The tile interconnection graph (mesh, torus, ...).
    router:
        A registered router name (``"crux"``, ``"crossbar"``, ...) or an
        already compiled :class:`RouterSpec` (which must use the same
        physical parameters).
    routing:
        The routing algorithm; defaults to XY dimension order, as in the
        paper's experiments.
    params:
        Physical coefficients; defaults to the paper's Table I.
    floorplan:
        Physical dimensions; defaults to a 2.5 mm tile pitch.
    """

    def __init__(
        self,
        topology: GridTopology,
        router: Union[str, RouterSpec] = "crux",
        routing: Optional[RoutingAlgorithm] = None,
        params: Optional[PhysicalParameters] = None,
        floorplan: Optional[Floorplan] = None,
    ) -> None:
        self.topology = topology
        self.params = params if params is not None else PhysicalParameters()
        self.floorplan = floorplan if floorplan is not None else Floorplan()
        self.routing = routing if routing is not None else XYRouting()
        if isinstance(router, RouterSpec):
            self.router_spec = router
        else:
            self.router_spec = build_router(router, self.params)
        self._local_count = len(self.router_spec.elements)
        self.elements: List[NetworkElement] = []
        self.wiring: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._link_gid: Dict[Tuple[int, str], int] = {}
        self._paths: Dict[Tuple[int, int], NetworkPath] = {}
        self._routed_paths: Dict[Tuple[int, int, Tuple[str, ...]], NetworkPath] = {}
        self._route_sets: Dict[int, Dict[Tuple[int, int], RouteSet]] = {}
        self._turn_keys: Optional[set] = None
        self._assemble()

    # -- assembly --------------------------------------------------------------

    def _assemble(self) -> None:
        spec = self.router_spec
        local_count = self._local_count
        for tile in range(self.topology.n_tiles):
            base = tile * local_count
            for local in spec.elements:
                self.elements.append(
                    NetworkElement(
                        base + local.index,
                        local.kind,
                        f"t{tile}.{local.label}",
                        local.length_cm,
                    )
                )
            for (element, out_port), (element2, in_port2) in spec.wiring.items():
                self.wiring[(base + element, out_port)] = (base + element2, in_port2)
        # Link waveguides and port stitching.
        for link in self.topology.links():
            gid = len(self.elements)
            length_cm = self.floorplan.link_length_cm(link.length_units)
            self.elements.append(
                NetworkElement(
                    gid,
                    ElementKind.WAVEGUIDE,
                    f"link.t{link.src}.{link.out_dir}->t{link.dst}",
                    length_cm,
                )
            )
            self._link_gid[(link.src, link.out_dir)] = gid
            in_port_name = f"{link.in_dir}_in"
            try:
                dst_entry = spec.inputs[in_port_name]
            except KeyError:
                raise ConfigurationError(
                    f"router {spec.name!r} has no input port {in_port_name!r} "
                    f"needed by topology {self.topology.signature}"
                ) from None
            dst_element, dst_port = dst_entry
            self.wiring[(gid, WG_OUT)] = (
                link.dst * local_count + dst_element,
                dst_port,
            )
        # Router outputs feeding links (L_out and chip-edge ports stay
        # absorbing: no wiring entry).
        for tile in range(self.topology.n_tiles):
            base = tile * local_count
            for (element, out_port), port_name in spec.outputs.items():
                if port_name == "L_out":
                    continue
                direction = port_name[:-len("_out")]
                if not self.topology.has_link(tile, direction):
                    continue
                gid = self._link_gid[(tile, direction)]
                self.wiring[(base + element, out_port)] = (gid, WG_IN)

    # -- element / wiring queries ------------------------------------------------

    @property
    def n_elements(self) -> int:
        return len(self.elements)

    def element(self, gid: int) -> NetworkElement:
        return self.elements[gid]

    def follow(self, element: int, out_port: int) -> Optional[Tuple[int, int]]:
        """Where ``(element, out_port)`` leads: ``(element, in_port)`` or None."""
        return self.wiring.get((element, out_port))

    def tile_of_element(self, gid: int) -> Optional[int]:
        """The tile owning a router-internal element (None for links)."""
        if gid >= self.topology.n_tiles * self._local_count:
            return None
        return gid // self._local_count

    # -- paths --------------------------------------------------------------------

    def path(self, src: int, dst: int) -> NetworkPath:
        """The elaborated path from tile ``src`` to tile ``dst`` (cached)."""
        key = (src, dst)
        cached = self._paths.get(key)
        if cached is not None:
            return cached
        elaborated = self._elaborate(src, dst)
        self._paths[key] = elaborated
        return elaborated

    def all_paths(self) -> Dict[Tuple[int, int], NetworkPath]:
        """Paths for every ordered tile pair (built on first call)."""
        n = self.topology.n_tiles
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    self.path(src, dst)
        return dict(self._paths)

    # -- route menus (joint mapping x routing search) --------------------------

    def _turn_legal(self, in_dir: str, out_dir: str) -> bool:
        """Whether this network's router provides the ``in -> out`` turn."""
        if self._turn_keys is None:
            self._turn_keys = set(self.router_spec.connections().keys())
        in_name = "L_in" if in_dir == GATEWAY else f"{in_dir}_in"
        out_name = "L_out" if out_dir == GATEWAY else f"{out_dir}_out"
        return (in_name, out_name) in self._turn_keys

    def route_set(self, src: int, dst: int, k: int) -> RouteSet:
        """The pair's route menu: up to ``k`` minimal-hop router-legal plans.

        Route 0 is always this network's configured routing plan, so a
        ``k=1`` menu reproduces the single implicit route exactly. Menus
        are cached per ``k``.
        """
        per_k = self._route_sets.setdefault(int(k), {})
        cached = per_k.get((src, dst))
        if cached is None:
            enumerator = KPathRouting(k, base=self.routing)
            cached = enumerator.route_set(
                self.topology, src, dst, turn_legal=self._turn_legal
            )
            per_k[(src, dst)] = cached
        return cached

    def route_counts(self, k: int) -> np.ndarray:
        """Per-pair menu sizes, shape ``(n_tiles**2,)`` (1 on the diagonal)."""
        n = self.topology.n_tiles
        counts = np.ones(n * n, dtype=np.int64)
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    counts[src * n + dst] = self.route_set(src, dst, k).n_routes
        return counts

    def routed_path(self, src: int, dst: int, route: int, k: int) -> NetworkPath:
        """The elaborated path of route ``route`` of the pair's ``k``-menu.

        Route indices wrap modulo the pair's menu size, so a stale route
        gene is always well-defined. Route 0 (and any index wrapping to
        it) is byte-for-byte the pair's base :meth:`path`.
        """
        plan = self.route_set(src, dst, k).plan(route)
        if route % self.route_set(src, dst, k).n_routes == 0:
            return self.path(src, dst)
        key = (src, dst, plan)
        cached = self._routed_paths.get(key)
        if cached is None:
            cached = self._elaborate(src, dst, plan=plan)
            self._routed_paths[key] = cached
        return cached

    def all_paths_routed(
        self, k: int
    ) -> Dict[Tuple[int, int, int], NetworkPath]:
        """Routed paths for every (src, dst, route < k) slot, slot-major."""
        n = self.topology.n_tiles
        out: Dict[Tuple[int, int, int], NetworkPath] = {}
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                for route in range(k):
                    out[(src, dst, route)] = self.routed_path(src, dst, route, k)
        return out

    def _elaborate(
        self, src: int, dst: int, plan: Optional[Sequence[str]] = None
    ) -> NetworkPath:
        spec = self.router_spec
        local_count = self._local_count
        params = self.params
        if plan is None:
            hops = self.routing.route(self.topology, src, dst)
        else:
            hops = walk_plan(
                self.topology, src, dst, plan, label="route plan"
            )
        traversals: List[Traversal] = []
        losses: List[float] = []

        def add(gid: int, in_port: int, out_port: int, state: TraversalState) -> None:
            element = self.elements[gid]
            traversals.append(Traversal(gid, in_port, out_port, state))
            losses.append(
                traversal_loss_db(
                    element.kind, in_port, out_port, state, params,
                    element.length_cm,
                )
            )

        for index, hop in enumerate(hops):
            in_name = "L_in" if hop.in_dir == GATEWAY else f"{hop.in_dir}_in"
            out_name = "L_out" if hop.out_dir == GATEWAY else f"{hop.out_dir}_out"
            base = hop.tile * local_count
            for step in spec.connection(in_name, out_name):
                add(base + step.element, step.in_port, step.out_port, step.state)
            if index < len(hops) - 1:
                gid = self._link_gid[(hop.tile, hop.out_dir)]
                add(gid, WG_IN, WG_OUT, TraversalState.PASSIVE)
        return NetworkPath(src, dst, traversals, losses)

    # -- derivation -----------------------------------------------------------------

    def with_params(self, params: PhysicalParameters) -> "PhotonicNoC":
        """The same architecture built with different physical coefficients.

        Recompiles the router (by its registered name) against ``params``
        and re-elaborates the paths, keeping topology, routing algorithm
        and floorplan. This is the seam device-library sweeps and
        process-variation sampling use to turn one nominal network into
        one network per parameter point.
        """
        return PhotonicNoC(
            self.topology,
            router=self.router_spec.name,
            routing=self.routing,
            params=params,
            floorplan=self.floorplan,
        )

    # -- identity -------------------------------------------------------------------

    @property
    def signature(self) -> str:
        """Stable identity of the architecture, for model caching.

        The device coefficients enter as the parameter set's canonical
        :attr:`~repro.photonics.parameters.PhysicalParameters.content_hash`
        — an injective encoding, so two networks differing in any
        coefficient can never share a signature, and therefore never a
        model-cache entry or a worker pool.
        """
        return (
            f"{self.topology.signature}|{self.router_spec.name}"
            f"|{self.routing.name}|{self.floorplan.signature}"
            f"|params={self.params.content_hash}"
        )

    def __repr__(self) -> str:
        return (
            f"PhotonicNoC({self.topology.signature}, router={self.router_spec.name}, "
            f"routing={self.routing.name}, elements={self.n_elements})"
        )
