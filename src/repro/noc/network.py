"""Photonic NoC assembly: topology + routers + links as one element netlist.

:class:`PhotonicNoC` instantiates one compiled optical router per tile,
connects router ports with inter-router link waveguides according to the
topology, and elaborates the routing algorithm's hop lists into
element-level :class:`~repro.noc.paths.NetworkPath` objects.

Every element instance (router-internal elements of every tile, plus link
waveguides) gets a *global element id*; paths and the crosstalk model work
exclusively with these ids, so two communications interact exactly when
they visit the same physical element instance.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.noc.floorplan import Floorplan
from repro.noc.paths import NetworkPath, Traversal
from repro.noc.routing import GATEWAY, RoutingAlgorithm, XYRouting
from repro.noc.topology import GridTopology
from repro.photonics.elements import (
    WG_IN,
    WG_OUT,
    ElementKind,
    TraversalState,
    traversal_loss_db,
)
from repro.photonics.parameters import PhysicalParameters
from repro.router.layout import RouterSpec
from repro.router.registry import build_router

__all__ = ["NetworkElement", "PhotonicNoC"]


class NetworkElement:
    """One physical element instance in the assembled network."""

    __slots__ = ("gid", "kind", "label", "length_cm")

    def __init__(self, gid: int, kind: ElementKind, label: str, length_cm: float):
        self.gid = gid
        self.kind = kind
        self.label = label
        self.length_cm = length_cm

    def __repr__(self) -> str:
        return f"NetworkElement({self.gid}, {self.kind.value}, {self.label!r})"


class PhotonicNoC:
    """A fully assembled photonic network-on-chip.

    Parameters
    ----------
    topology:
        The tile interconnection graph (mesh, torus, ...).
    router:
        A registered router name (``"crux"``, ``"crossbar"``, ...) or an
        already compiled :class:`RouterSpec` (which must use the same
        physical parameters).
    routing:
        The routing algorithm; defaults to XY dimension order, as in the
        paper's experiments.
    params:
        Physical coefficients; defaults to the paper's Table I.
    floorplan:
        Physical dimensions; defaults to a 2.5 mm tile pitch.
    """

    def __init__(
        self,
        topology: GridTopology,
        router: Union[str, RouterSpec] = "crux",
        routing: Optional[RoutingAlgorithm] = None,
        params: Optional[PhysicalParameters] = None,
        floorplan: Optional[Floorplan] = None,
    ) -> None:
        self.topology = topology
        self.params = params if params is not None else PhysicalParameters()
        self.floorplan = floorplan if floorplan is not None else Floorplan()
        self.routing = routing if routing is not None else XYRouting()
        if isinstance(router, RouterSpec):
            self.router_spec = router
        else:
            self.router_spec = build_router(router, self.params)
        self._local_count = len(self.router_spec.elements)
        self.elements: List[NetworkElement] = []
        self.wiring: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._link_gid: Dict[Tuple[int, str], int] = {}
        self._paths: Dict[Tuple[int, int], NetworkPath] = {}
        self._assemble()

    # -- assembly --------------------------------------------------------------

    def _assemble(self) -> None:
        spec = self.router_spec
        local_count = self._local_count
        for tile in range(self.topology.n_tiles):
            base = tile * local_count
            for local in spec.elements:
                self.elements.append(
                    NetworkElement(
                        base + local.index,
                        local.kind,
                        f"t{tile}.{local.label}",
                        local.length_cm,
                    )
                )
            for (element, out_port), (element2, in_port2) in spec.wiring.items():
                self.wiring[(base + element, out_port)] = (base + element2, in_port2)
        # Link waveguides and port stitching.
        for link in self.topology.links():
            gid = len(self.elements)
            length_cm = self.floorplan.link_length_cm(link.length_units)
            self.elements.append(
                NetworkElement(
                    gid,
                    ElementKind.WAVEGUIDE,
                    f"link.t{link.src}.{link.out_dir}->t{link.dst}",
                    length_cm,
                )
            )
            self._link_gid[(link.src, link.out_dir)] = gid
            in_port_name = f"{link.in_dir}_in"
            try:
                dst_entry = spec.inputs[in_port_name]
            except KeyError:
                raise ConfigurationError(
                    f"router {spec.name!r} has no input port {in_port_name!r} "
                    f"needed by topology {self.topology.signature}"
                ) from None
            dst_element, dst_port = dst_entry
            self.wiring[(gid, WG_OUT)] = (
                link.dst * local_count + dst_element,
                dst_port,
            )
        # Router outputs feeding links (L_out and chip-edge ports stay
        # absorbing: no wiring entry).
        for tile in range(self.topology.n_tiles):
            base = tile * local_count
            for (element, out_port), port_name in spec.outputs.items():
                if port_name == "L_out":
                    continue
                direction = port_name[:-len("_out")]
                if not self.topology.has_link(tile, direction):
                    continue
                gid = self._link_gid[(tile, direction)]
                self.wiring[(base + element, out_port)] = (gid, WG_IN)

    # -- element / wiring queries ------------------------------------------------

    @property
    def n_elements(self) -> int:
        return len(self.elements)

    def element(self, gid: int) -> NetworkElement:
        return self.elements[gid]

    def follow(self, element: int, out_port: int) -> Optional[Tuple[int, int]]:
        """Where ``(element, out_port)`` leads: ``(element, in_port)`` or None."""
        return self.wiring.get((element, out_port))

    def tile_of_element(self, gid: int) -> Optional[int]:
        """The tile owning a router-internal element (None for links)."""
        if gid >= self.topology.n_tiles * self._local_count:
            return None
        return gid // self._local_count

    # -- paths --------------------------------------------------------------------

    def path(self, src: int, dst: int) -> NetworkPath:
        """The elaborated path from tile ``src`` to tile ``dst`` (cached)."""
        key = (src, dst)
        cached = self._paths.get(key)
        if cached is not None:
            return cached
        elaborated = self._elaborate(src, dst)
        self._paths[key] = elaborated
        return elaborated

    def all_paths(self) -> Dict[Tuple[int, int], NetworkPath]:
        """Paths for every ordered tile pair (built on first call)."""
        n = self.topology.n_tiles
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    self.path(src, dst)
        return dict(self._paths)

    def _elaborate(self, src: int, dst: int) -> NetworkPath:
        spec = self.router_spec
        local_count = self._local_count
        params = self.params
        hops = self.routing.route(self.topology, src, dst)
        traversals: List[Traversal] = []
        losses: List[float] = []

        def add(gid: int, in_port: int, out_port: int, state: TraversalState) -> None:
            element = self.elements[gid]
            traversals.append(Traversal(gid, in_port, out_port, state))
            losses.append(
                traversal_loss_db(
                    element.kind, in_port, out_port, state, params,
                    element.length_cm,
                )
            )

        for index, hop in enumerate(hops):
            in_name = "L_in" if hop.in_dir == GATEWAY else f"{hop.in_dir}_in"
            out_name = "L_out" if hop.out_dir == GATEWAY else f"{hop.out_dir}_out"
            base = hop.tile * local_count
            for step in spec.connection(in_name, out_name):
                add(base + step.element, step.in_port, step.out_port, step.state)
            if index < len(hops) - 1:
                gid = self._link_gid[(hop.tile, hop.out_dir)]
                add(gid, WG_IN, WG_OUT, TraversalState.PASSIVE)
        return NetworkPath(src, dst, traversals, losses)

    # -- derivation -----------------------------------------------------------------

    def with_params(self, params: PhysicalParameters) -> "PhotonicNoC":
        """The same architecture built with different physical coefficients.

        Recompiles the router (by its registered name) against ``params``
        and re-elaborates the paths, keeping topology, routing algorithm
        and floorplan. This is the seam device-library sweeps and
        process-variation sampling use to turn one nominal network into
        one network per parameter point.
        """
        return PhotonicNoC(
            self.topology,
            router=self.router_spec.name,
            routing=self.routing,
            params=params,
            floorplan=self.floorplan,
        )

    # -- identity -------------------------------------------------------------------

    @property
    def signature(self) -> str:
        """Stable identity of the architecture, for model caching.

        The device coefficients enter as the parameter set's canonical
        :attr:`~repro.photonics.parameters.PhysicalParameters.content_hash`
        — an injective encoding, so two networks differing in any
        coefficient can never share a signature, and therefore never a
        model-cache entry or a worker pool.
        """
        return (
            f"{self.topology.signature}|{self.router_spec.name}"
            f"|{self.routing.name}|{self.floorplan.signature}"
            f"|params={self.params.content_hash}"
        )

    def __repr__(self) -> str:
        return (
            f"PhotonicNoC({self.topology.signature}, router={self.router_spec.name}, "
            f"routing={self.routing.name}, elements={self.n_elements})"
        )
