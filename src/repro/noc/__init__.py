"""NoC architecture: topologies, floorplan, routing, network assembly.

This subpackage realizes the architecture half of the PhoNoCMap environment
(paper Fig. 1, boxes 1 and 3): the topology graph X(T, L) of Definition 2,
the pluggable routing algorithms, and the assembly of per-tile optical
routers plus inter-router links into one element-level netlist.
"""

from repro.noc.floorplan import Floorplan
from repro.noc.network import NetworkElement, PhotonicNoC
from repro.noc.paths import NetworkPath, Traversal
from repro.noc.routing import GATEWAY, Hop, RoutingAlgorithm, XYRouting, YXRouting
from repro.noc.topology import (
    DIRECTIONS,
    GridTopology,
    Link,
    line,
    mesh,
    opposite_direction,
    ring,
    torus,
)

__all__ = [
    "Floorplan",
    "NetworkElement",
    "PhotonicNoC",
    "NetworkPath",
    "Traversal",
    "GATEWAY",
    "Hop",
    "RoutingAlgorithm",
    "XYRouting",
    "YXRouting",
    "DIRECTIONS",
    "GridTopology",
    "Link",
    "line",
    "mesh",
    "opposite_direction",
    "ring",
    "torus",
]
