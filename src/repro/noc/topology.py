"""Topology graphs X(T, L) — paper Definition 2.

A topology says how tiles connect: each tile hosts one optical router, and
each directed link is a waveguide between two routers' ports. The paper
evaluates direct 2-D *mesh* and *torus* topologies; both are provided here
as :class:`GridTopology`, along with the degenerate 1-D cases (line, ring).

Grid conventions:

* tiles are indexed row-major: ``index = row * cols + col``;
* row 0 is the **south** row and column 0 the **west** column, so the
  ``N`` direction increases the row and ``E`` increases the column —
  matching the router geometry where north is +y;
* a mesh link spans one tile pitch; torus links (in the standard folded
  layout, which equalizes wrap-around) span two pitches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import networkx as nx

from repro.errors import TopologyError

__all__ = [
    "DIRECTIONS",
    "opposite_direction",
    "Link",
    "GridTopology",
    "mesh",
    "torus",
    "line",
    "ring",
]

#: The four grid directions, in clockwise order starting north.
DIRECTIONS = ("N", "E", "S", "W")

_OPPOSITE = {"N": "S", "S": "N", "E": "W", "W": "E"}

#: Folded-torus links are twice as long as mesh links (see DESIGN.md §4).
FOLDED_TORUS_LENGTH_UNITS = 2.0


def opposite_direction(direction: str) -> str:
    """The direction a signal leaving through ``direction`` arrives from."""
    try:
        return _OPPOSITE[direction]
    except KeyError:
        raise TopologyError(f"unknown direction {direction!r}") from None


@dataclass(frozen=True)
class Link:
    """A directed inter-router link.

    ``length_units`` is the physical waveguide length in tile pitches.
    """

    src: int
    dst: int
    out_dir: str
    in_dir: str
    length_units: float


class GridTopology:
    """A 2-D mesh or torus of tiles (Def. 2's X(T, L) for direct grids)."""

    def __init__(self, rows: int, cols: int, wraparound: bool, name: str):
        if rows < 1 or cols < 1:
            raise TopologyError(f"grid must be at least 1x1, got {rows}x{cols}")
        if rows * cols < 2:
            raise TopologyError("a topology needs at least 2 tiles")
        if wraparound and (rows == 2 or cols == 2):
            # A 2-wide torus would create duplicate parallel links between
            # the same tile pair; the mesh is the sensible network there.
            raise TopologyError(
                "torus wraparound needs dimension size 1 or >= 3, "
                f"got {rows}x{cols}"
            )
        self.rows = rows
        self.cols = cols
        self.wraparound = wraparound
        self.name = name
        self._links: Dict[Tuple[int, str], Link] = {}
        self._build_links()

    # -- construction ---------------------------------------------------------

    def _build_links(self) -> None:
        length = FOLDED_TORUS_LENGTH_UNITS if self.wraparound else 1.0
        for row in range(self.rows):
            for col in range(self.cols):
                src = self.tile_index(row, col)
                for direction in DIRECTIONS:
                    neighbor = self._neighbor(row, col, direction)
                    if neighbor is None:
                        continue
                    link = Link(
                        src,
                        neighbor,
                        direction,
                        opposite_direction(direction),
                        length,
                    )
                    self._links[(src, direction)] = link

    def _neighbor(self, row: int, col: int, direction: str):
        delta_row = {"N": 1, "S": -1}.get(direction, 0)
        delta_col = {"E": 1, "W": -1}.get(direction, 0)
        new_row, new_col = row + delta_row, col + delta_col
        if self.wraparound:
            if self.rows > 1:
                new_row %= self.rows
            if self.cols > 1:
                new_col %= self.cols
        if not (0 <= new_row < self.rows and 0 <= new_col < self.cols):
            return None
        if new_row == row and new_col == col:
            return None  # 1-wide dimension wraps onto itself
        return self.tile_index(new_row, new_col)

    # -- queries ---------------------------------------------------------------

    @property
    def n_tiles(self) -> int:
        """size(T): the number of tiles."""
        return self.rows * self.cols

    def tile_index(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise TopologyError(
                f"tile ({row},{col}) outside {self.rows}x{self.cols} grid"
            )
        return row * self.cols + col

    def tile_coords(self, index: int) -> Tuple[int, int]:
        if not (0 <= index < self.n_tiles):
            raise TopologyError(f"tile index {index} outside 0..{self.n_tiles - 1}")
        return divmod(index, self.cols)

    def link(self, src: int, out_dir: str) -> Link:
        """The link leaving ``src`` through ``out_dir`` (raises if absent)."""
        try:
            return self._links[(src, out_dir)]
        except KeyError:
            raise TopologyError(
                f"tile {src} of {self.name} has no link towards {out_dir}"
            ) from None

    def has_link(self, src: int, out_dir: str) -> bool:
        return (src, out_dir) in self._links

    def links(self) -> Iterator[Link]:
        """All directed links in a deterministic order."""
        for key in sorted(self._links):
            yield self._links[key]

    def neighbors(self, tile: int) -> Tuple[int, ...]:
        """Tiles directly linked from ``tile`` (sorted, unique)."""
        row, col = self.tile_coords(tile)
        found = set()
        for direction in DIRECTIONS:
            neighbor = self._neighbor(row, col, direction)
            if neighbor is not None:
                found.add(neighbor)
        return tuple(sorted(found))

    def graph(self) -> "nx.DiGraph":
        """A networkx view of X(T, L), for analysis and export."""
        g = nx.DiGraph(name=self.name)
        g.add_nodes_from(range(self.n_tiles))
        for link in self.links():
            g.add_edge(link.src, link.dst, direction=link.out_dir,
                       length_units=link.length_units)
        return g

    @property
    def signature(self) -> str:
        """A stable identity string, used for model caching."""
        return f"{self.name}[{self.rows}x{self.cols}]"

    def __repr__(self) -> str:
        return f"GridTopology({self.signature}, tiles={self.n_tiles})"


def mesh(rows: int, cols: int) -> GridTopology:
    """A ``rows x cols`` 2-D mesh."""
    return GridTopology(rows, cols, wraparound=False, name="mesh")


def torus(rows: int, cols: int) -> GridTopology:
    """A ``rows x cols`` 2-D folded torus."""
    return GridTopology(rows, cols, wraparound=True, name="torus")


def line(n: int) -> GridTopology:
    """A 1-D line of ``n`` tiles (a 1 x n mesh)."""
    return GridTopology(1, n, wraparound=False, name="line")


def ring(n: int) -> GridTopology:
    """A 1-D ring of ``n`` tiles (a 1 x n torus)."""
    return GridTopology(1, n, wraparound=True, name="ring")
