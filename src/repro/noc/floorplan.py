"""Chip floorplan: physical dimensions behind the topology graph.

The paper's propagation-loss term (-0.274 dB/cm, Table I) needs physical
waveguide lengths. The original tool's floorplan constants are not stated
in the paper, so this reproduction uses an explicit, documented default: a
2.5 mm tile pitch (a 6x6 grid then spans 15 mm, typical for the MPSoC dies
these applications target). Inter-router link lengths are multiples of the
pitch — one pitch for mesh links, two for folded-torus links (the folding
equalizes wrap-around links at the cost of doubling every hop).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Floorplan"]


@dataclass(frozen=True)
class Floorplan:
    """Physical scaling of a photonic NoC layout.

    ``tile_pitch_cm``
        Distance between adjacent router centres.
    ``router_unit_cm``
        Scale of one router-layout grid unit (see
        :class:`repro.router.layout.RouterLayout`).
    """

    tile_pitch_cm: float = 0.25
    router_unit_cm: float = 0.004

    def __post_init__(self) -> None:
        if self.tile_pitch_cm <= 0:
            raise ConfigurationError(
                f"tile pitch must be positive, got {self.tile_pitch_cm}"
            )
        if self.router_unit_cm <= 0:
            raise ConfigurationError(
                f"router unit must be positive, got {self.router_unit_cm}"
            )

    def link_length_cm(self, length_units: float) -> float:
        """Physical length of a link of ``length_units`` tile pitches."""
        if length_units <= 0:
            raise ConfigurationError(
                f"link length must be positive, got {length_units}"
            )
        return length_units * self.tile_pitch_cm

    @property
    def signature(self) -> str:
        """Stable identity string for model caching."""
        return f"pitch={self.tile_pitch_cm}:unit={self.router_unit_cm}"
