"""Network-level path records: what a signal traverses end to end.

A :class:`NetworkPath` is the fully elaborated journey of one communication
through the photonic NoC: the ordered element traversals (router elements
and inter-router link waveguides), the total insertion loss, and the
cumulative linear transmissions before/after each traversal that the
crosstalk model needs (paper §II-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.photonics.elements import TraversalState

__all__ = ["Traversal", "NetworkPath"]


@dataclass(frozen=True)
class Traversal:
    """One element traversal of a network path (global element id)."""

    element: int
    in_port: int
    out_port: int
    state: TraversalState


class NetworkPath:
    """An elaborated source-to-destination path with loss bookkeeping.

    ``cum_in_linear[i]``
        Product of the linear losses of traversals ``0..i-1`` — the relative
        signal power *entering* traversal ``i``.
    ``cum_out_linear[i]``
        Product including traversal ``i`` — the power *leaving* it.
    ``total_linear``
        End-to-end transmission (``cum_out_linear[-1]``).
    """

    def __init__(
        self,
        src: int,
        dst: int,
        traversals: Sequence[Traversal],
        losses_db: Sequence[float],
    ) -> None:
        if len(traversals) != len(losses_db):
            raise ValueError("one loss per traversal required")
        if not traversals:
            raise ValueError("a path needs at least one traversal")
        self.src = src
        self.dst = dst
        self.traversals: Tuple[Traversal, ...] = tuple(traversals)
        losses = np.asarray(losses_db, dtype=np.float64)
        self.losses_db = losses
        self.loss_db = float(losses.sum())
        linear = 10.0 ** (losses / 10.0)
        self.cum_out_linear = np.cumprod(linear)
        self.cum_in_linear = np.empty_like(self.cum_out_linear)
        self.cum_in_linear[0] = 1.0
        self.cum_in_linear[1:] = self.cum_out_linear[:-1]
        self.total_linear = float(self.cum_out_linear[-1])

    def __len__(self) -> int:
        return len(self.traversals)

    def __repr__(self) -> str:
        return (
            f"NetworkPath({self.src}->{self.dst}, "
            f"{len(self.traversals)} traversals, {self.loss_db:.3f} dB)"
        )
