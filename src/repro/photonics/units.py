"""Unit conversions used throughout the physical-layer models.

The analytical model of the paper works with power ratios expressed in
decibels (Table I) while the crosstalk accumulation needs linear power
ratios, because noise contributions add linearly. These helpers convert
between the two and are deliberately strict about invalid inputs: a linear
power ratio must be positive, otherwise the dB value is undefined.
"""

from __future__ import annotations

import math

from repro.errors import ModelError

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_mw",
    "mw_to_dbm",
    "combine_losses_db",
    "sum_powers_db",
]


def db_to_linear(value_db: float) -> float:
    """Convert a power ratio in dB to a linear power ratio.

    ``db_to_linear(-3.0103) == 0.5`` up to floating point rounding.
    """
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value_linear: float) -> float:
    """Convert a linear power ratio to dB.

    Raises :class:`~repro.errors.ModelError` when ``value_linear`` is not
    strictly positive, because the logarithm is undefined there.
    """
    if value_linear <= 0.0:
        raise ModelError(
            f"cannot express non-positive power ratio {value_linear!r} in dB"
        )
    return 10.0 * math.log10(value_linear)


def dbm_to_mw(power_dbm: float) -> float:
    """Convert an absolute power in dBm to milliwatts."""
    return 10.0 ** (power_dbm / 10.0)


def mw_to_dbm(power_mw: float) -> float:
    """Convert an absolute power in milliwatts to dBm."""
    if power_mw <= 0.0:
        raise ModelError(f"cannot express non-positive power {power_mw!r} in dBm")
    return 10.0 * math.log10(power_mw)


def combine_losses_db(*losses_db: float) -> float:
    """Total loss of a cascade of elements: losses in dB simply add."""
    return sum(losses_db)


def sum_powers_db(*powers_db: float) -> float:
    """Sum incoherent power contributions given in dB, result in dB.

    Used when aggregating noise terms: powers add linearly, so the terms are
    converted to linear, summed, and converted back.
    """
    if not powers_db:
        raise ModelError("sum_powers_db needs at least one contribution")
    total = sum(db_to_linear(p) for p in powers_db)
    return linear_to_db(total)
