"""Component library: named physical-parameter sets (Fig. 1, box 2).

PhoNoCMap ships a built-in library (the paper's Table I, registered as
``"date16"`` and aliased as the default) and lets users register their own
technology parameter sets, mirroring the paper's statement that users "can
choose to design a network based on the built-in library of devices, or
extend the library itself with new photonic building blocks".
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.errors import ConfigurationError
from repro.photonics.parameters import PhysicalParameters

__all__ = ["ComponentLibrary", "default_library"]

DEFAULT_NAME = "date16"


class ComponentLibrary:
    """A registry of named :class:`PhysicalParameters` sets."""

    def __init__(self) -> None:
        self._entries: Dict[str, PhysicalParameters] = {}
        self.register(DEFAULT_NAME, PhysicalParameters())

    def register(self, name: str, params: PhysicalParameters, overwrite: bool = False) -> None:
        """Register a parameter set under ``name``.

        Re-registering an existing name requires ``overwrite=True`` so that
        accidental clobbering of the built-in table is an error.
        """
        if not name:
            raise ConfigurationError("library entry name must be non-empty")
        if name in self._entries and not overwrite:
            raise ConfigurationError(
                f"library entry {name!r} already exists; pass overwrite=True to replace it"
            )
        self._entries[name] = params

    def get(self, name: str = DEFAULT_NAME) -> PhysicalParameters:
        """Look up a parameter set; unknown names raise with the known list."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown component library entry {name!r}; known: {sorted(self._entries)}"
            ) from None

    def names(self) -> Iterator[str]:
        """Iterate over registered entry names (sorted)."""
        return iter(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


_DEFAULT_LIBRARY = ComponentLibrary()


def default_library() -> ComponentLibrary:
    """The process-wide default library (contains the Table I entry)."""
    return _DEFAULT_LIBRARY
