"""Component library: named physical-parameter sets (Fig. 1, box 2).

PhoNoCMap ships a built-in library (the paper's Table I, registered as
``"date16"`` and aliased as the default) and lets users register their own
technology parameter sets, mirroring the paper's statement that users "can
choose to design a network based on the built-in library of devices, or
extend the library itself with new photonic building blocks".

Parameterized, content-addressed instances (PR 8)
-------------------------------------------------
Beyond plain named entries the library is a *generator*:
:meth:`ComponentLibrary.instantiate` derives a new parameter set from a
named base entry plus coefficient overrides, and registers it under a
content-addressed key ``"<base>@<hash12>"`` — the first 12 hex digits of
the instance's canonical :attr:`~repro.photonics.parameters.PhysicalParameters.content_hash`.
Instantiation is idempotent (the same point always resolves to the same
key and the same object identity is irrelevant — content is the key), so
device parameter sweeps address their points stably, and every instance's
full content hash flows into the network signature and from there into
the model-cache and pool keys. :meth:`ComponentLibrary.resolve` parses
the CLI-facing spec syntax ``"name"`` / ``"name:coeff=value,..."``, and
:meth:`ComponentLibrary.variations` materializes a
:class:`~repro.photonics.parameters.VariationSpec`'s process-variation
samples of any entry.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple, Union

from repro.errors import ConfigurationError
from repro.photonics.parameters import (
    PhysicalParameters,
    VariationSpec,
)

__all__ = ["ComponentLibrary", "default_library"]

DEFAULT_NAME = "date16"


class ComponentLibrary:
    """A registry of named :class:`PhysicalParameters` sets."""

    def __init__(self) -> None:
        self._entries: Dict[str, PhysicalParameters] = {}
        self.register(DEFAULT_NAME, PhysicalParameters())

    def register(self, name: str, params: PhysicalParameters, overwrite: bool = False) -> None:
        """Register a parameter set under ``name``.

        Re-registering an existing name requires ``overwrite=True`` so that
        accidental clobbering of the built-in table is an error.
        """
        if not name:
            raise ConfigurationError("library entry name must be non-empty")
        if name in self._entries and not overwrite:
            raise ConfigurationError(
                f"library entry {name!r} already exists; pass overwrite=True to replace it"
            )
        self._entries[name] = params

    def get(self, name: str = DEFAULT_NAME) -> PhysicalParameters:
        """Look up a parameter set; unknown names raise with the known list."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown component library entry {name!r}; known: {sorted(self._entries)}"
            ) from None

    def names(self) -> Iterator[str]:
        """Iterate over registered entry names (sorted)."""
        return iter(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- parameterized instances -------------------------------------------

    def instance_key(self, base: str, params: PhysicalParameters) -> str:
        """The content-addressed registry key of a derived instance."""
        return f"{base}@{params.content_hash[:12]}"

    def instantiate(
        self, name: str = DEFAULT_NAME, **overrides: float
    ) -> PhysicalParameters:
        """Derive (and register) a parameterized instance of an entry.

        The instance is ``get(name)`` with ``overrides`` applied, and is
        registered under its content-addressed key (idempotent — the
        same parameter point always maps to the same key, and distinct
        points can never collide because the key is derived from an
        injective encoding of the coefficients). With no overrides the
        base entry is returned unchanged and nothing new is registered.
        """
        base = self.get(name)
        if not overrides:
            return base
        params = base.with_overrides(**overrides)
        self._entries.setdefault(self.instance_key(name, params), params)
        return params

    def resolve(
        self, spec: Union[str, PhysicalParameters]
    ) -> PhysicalParameters:
        """Resolve a device spec to a parameter set.

        Accepts an already-built :class:`PhysicalParameters`, a
        registered entry name, or the CLI syntax
        ``"name:coeff=value,coeff=value"`` (empty name means the default
        entry), instantiating — and content-registering — the override
        point on the fly.
        """
        if isinstance(spec, PhysicalParameters):
            return spec
        name, _, tail = str(spec).partition(":")
        name = name or DEFAULT_NAME
        if not tail:
            return self.get(name)
        overrides = {}
        for term in tail.split(","):
            key, sep, value = term.partition("=")
            if not sep or not key:
                raise ConfigurationError(
                    f"device spec term {term!r} must look like coeff=value"
                )
            try:
                overrides[key.strip()] = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"device spec value {value!r} for {key!r} is not a number"
                ) from None
        return self.instantiate(name, **overrides)

    def variations(
        self,
        spec: Union[str, PhysicalParameters],
        variation: VariationSpec,
    ) -> Tuple[PhysicalParameters, ...]:
        """The process-variation samples of an entry under ``variation``."""
        return variation.samples(self.resolve(spec))


_DEFAULT_LIBRARY = ComponentLibrary()


def default_library() -> ComponentLibrary:
    """The process-wide default library (contains the Table I entry)."""
    return _DEFAULT_LIBRARY
