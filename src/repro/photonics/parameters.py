"""Physical parameters of the photonic building blocks (paper Table I).

The defaults reproduce Table I of the paper exactly; every coefficient is a
*power ratio in dB* (negative values mean attenuation), except the
propagation loss which is in dB/cm. All coefficients can be overridden to
model a different technology node, which is how the paper's "Physical
Parameters" library box (Fig. 1) is realized here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterator, Tuple

from repro.errors import ConfigurationError
from repro.photonics.units import db_to_linear

__all__ = ["PhysicalParameters", "TABLE_I_ROWS"]

#: Rows of Table I: (parameter description, notation, attribute, value, reference)
TABLE_I_ROWS: Tuple[Tuple[str, str, str, float, str], ...] = (
    ("Crossing loss", "Lc", "crossing_loss_db", -0.04, "[7]"),
    ("Propagation Loss in Silicon", "Lp", "propagation_loss_db_per_cm", -0.274, "[8]"),
    ("Power loss per PPSE in OFF state", "Lp,off", "ppse_off_loss_db", -0.005, "[9]"),
    ("Power loss per PPSE in ON state", "Lp,on", "ppse_on_loss_db", -0.5, "[9]"),
    ("Power loss per CPSE in OFF state", "Lc,off", "cpse_off_loss_db", -0.045, ""),
    ("Power loss per CPSE in ON state", "Lc,on", "cpse_on_loss_db", -0.5, "[10]"),
    ("Crossing's crosstalk coefficient", "Kc", "crossing_crosstalk_db", -40.0, "[7]"),
    ("Crosstalk coefficient per PSE in OFF state", "Kp,off", "pse_off_crosstalk_db", -20.0, "[9]"),
    ("Crosstalk coefficient per PSE in ON state", "Kp,on", "pse_on_crosstalk_db", -25.0, "[9]"),
)


@dataclass(frozen=True)
class PhysicalParameters:
    """Loss and crosstalk coefficients of the photonic building blocks.

    Attribute names follow Table I notation:

    ===========================  ========  ==============================
    attribute                    notation  meaning
    ===========================  ========  ==============================
    crossing_loss_db             Lc        loss across a waveguide crossing
    propagation_loss_db_per_cm   Lp        silicon waveguide propagation loss
    ppse_off_loss_db             Lp,off    through loss of an OFF parallel PSE
    ppse_on_loss_db              Lp,on     drop loss of an ON parallel PSE
    cpse_off_loss_db             Lc,off    through loss of an OFF crossing PSE
    cpse_on_loss_db              Lc,on     drop loss of an ON crossing PSE
    crossing_crosstalk_db        Kc        crossing crosstalk coefficient
    pse_off_crosstalk_db         Kp,off    OFF-state PSE crosstalk coefficient
    pse_on_crosstalk_db          Kp,on     ON-state PSE crosstalk coefficient
    ===========================  ========  ==============================
    """

    crossing_loss_db: float = -0.04
    propagation_loss_db_per_cm: float = -0.274
    ppse_off_loss_db: float = -0.005
    ppse_on_loss_db: float = -0.5
    cpse_off_loss_db: float = -0.045
    cpse_on_loss_db: float = -0.5
    crossing_crosstalk_db: float = -40.0
    pse_off_crosstalk_db: float = -20.0
    pse_on_crosstalk_db: float = -25.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value > 0.0:
                raise ConfigurationError(
                    f"physical parameter {f.name}={value} must be <= 0 dB "
                    "(these coefficients describe attenuation)"
                )

    # -- linear-domain views ------------------------------------------------

    @property
    def crossing_loss_linear(self) -> float:
        """Lc as a linear power ratio."""
        return db_to_linear(self.crossing_loss_db)

    @property
    def ppse_off_loss_linear(self) -> float:
        """Lp,off as a linear power ratio."""
        return db_to_linear(self.ppse_off_loss_db)

    @property
    def ppse_on_loss_linear(self) -> float:
        """Lp,on as a linear power ratio."""
        return db_to_linear(self.ppse_on_loss_db)

    @property
    def cpse_off_loss_linear(self) -> float:
        """Lc,off as a linear power ratio."""
        return db_to_linear(self.cpse_off_loss_db)

    @property
    def cpse_on_loss_linear(self) -> float:
        """Lc,on as a linear power ratio."""
        return db_to_linear(self.cpse_on_loss_db)

    @property
    def crossing_crosstalk_linear(self) -> float:
        """Kc as a linear power ratio."""
        return db_to_linear(self.crossing_crosstalk_db)

    @property
    def pse_off_crosstalk_linear(self) -> float:
        """Kp,off as a linear power ratio."""
        return db_to_linear(self.pse_off_crosstalk_db)

    @property
    def pse_on_crosstalk_linear(self) -> float:
        """Kp,on as a linear power ratio."""
        return db_to_linear(self.pse_on_crosstalk_db)

    # -- utilities -----------------------------------------------------------

    def propagation_loss_db(self, length_cm: float) -> float:
        """Propagation loss of a waveguide of ``length_cm`` centimetres."""
        if length_cm < 0.0:
            raise ConfigurationError(f"waveguide length {length_cm} cm must be >= 0")
        return self.propagation_loss_db_per_cm * length_cm

    def with_overrides(self, **overrides: float) -> "PhysicalParameters":
        """Return a copy with some coefficients replaced.

        Unknown names raise :class:`~repro.errors.ConfigurationError` instead
        of being silently ignored.
        """
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigurationError(
                f"unknown physical parameter(s): {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, float]:
        """All coefficients as a plain ``{attribute: value}`` dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def table_rows(self) -> Iterator[Tuple[str, str, float]]:
        """Yield ``(description, notation, value)`` rows in Table I order."""
        for description, notation, attribute, _default, _ref in TABLE_I_ROWS:
            yield description, notation, getattr(self, attribute)
