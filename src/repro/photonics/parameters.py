"""Physical parameters of the photonic building blocks (paper Table I).

The defaults reproduce Table I of the paper exactly; every coefficient is a
*power ratio in dB* (negative values mean attenuation), except the
propagation loss which is in dB/cm. All coefficients can be overridden to
model a different technology node, which is how the paper's "Physical
Parameters" library box (Fig. 1) is realized here.

Content addressing and process variation (PR 8)
-----------------------------------------------
Every parameter set carries a **canonical content hash**
(:attr:`PhysicalParameters.content_hash`): the SHA-1 of an injective text
encoding of its coefficients (``float.hex`` per field, in declaration
order). Two distinct parameter sets can therefore never serialize to the
same text — the hash input is unique by construction — and the hash is
what the network signature, the on-disk model cache and the objective-free
pool keys embed, which is what makes device-library parameter sweeps a
cache-hitting axis of the design-space exploration.

:class:`VariationSpec` describes per-device process variation (Chittamuru
et al.): :func:`perturbed` scales every coefficient by ``1 + sigma * g``
with ``g`` drawn from a per-sample ``SeedSequence``-derived stream, and
:meth:`VariationSpec.samples` materializes the N perturbed parameter sets.
Sample ``i`` depends only on ``(seed, i)`` (``SeedSequence.spawn`` is
prefix-stable), ``sigma=0`` reproduces the nominal set bit-exactly, and
:func:`sample_set_hash` fingerprints a sample collection independent of
order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.photonics.units import db_to_linear

__all__ = [
    "PhysicalParameters",
    "TABLE_I_ROWS",
    "VariationSpec",
    "perturbed",
    "sample_set_hash",
]

#: Rows of Table I: (parameter description, notation, attribute, value, reference)
TABLE_I_ROWS: Tuple[Tuple[str, str, str, float, str], ...] = (
    ("Crossing loss", "Lc", "crossing_loss_db", -0.04, "[7]"),
    ("Propagation Loss in Silicon", "Lp", "propagation_loss_db_per_cm", -0.274, "[8]"),
    ("Power loss per PPSE in OFF state", "Lp,off", "ppse_off_loss_db", -0.005, "[9]"),
    ("Power loss per PPSE in ON state", "Lp,on", "ppse_on_loss_db", -0.5, "[9]"),
    ("Power loss per CPSE in OFF state", "Lc,off", "cpse_off_loss_db", -0.045, ""),
    ("Power loss per CPSE in ON state", "Lc,on", "cpse_on_loss_db", -0.5, "[10]"),
    ("Crossing's crosstalk coefficient", "Kc", "crossing_crosstalk_db", -40.0, "[7]"),
    ("Crosstalk coefficient per PSE in OFF state", "Kp,off", "pse_off_crosstalk_db", -20.0, "[9]"),
    ("Crosstalk coefficient per PSE in ON state", "Kp,on", "pse_on_crosstalk_db", -25.0, "[9]"),
)


@dataclass(frozen=True)
class PhysicalParameters:
    """Loss and crosstalk coefficients of the photonic building blocks.

    Attribute names follow Table I notation:

    ===========================  ========  ==============================
    attribute                    notation  meaning
    ===========================  ========  ==============================
    crossing_loss_db             Lc        loss across a waveguide crossing
    propagation_loss_db_per_cm   Lp        silicon waveguide propagation loss
    ppse_off_loss_db             Lp,off    through loss of an OFF parallel PSE
    ppse_on_loss_db              Lp,on     drop loss of an ON parallel PSE
    cpse_off_loss_db             Lc,off    through loss of an OFF crossing PSE
    cpse_on_loss_db              Lc,on     drop loss of an ON crossing PSE
    crossing_crosstalk_db        Kc        crossing crosstalk coefficient
    pse_off_crosstalk_db         Kp,off    OFF-state PSE crosstalk coefficient
    pse_on_crosstalk_db          Kp,on     ON-state PSE crosstalk coefficient
    ===========================  ========  ==============================
    """

    crossing_loss_db: float = -0.04
    propagation_loss_db_per_cm: float = -0.274
    ppse_off_loss_db: float = -0.005
    ppse_on_loss_db: float = -0.5
    cpse_off_loss_db: float = -0.045
    cpse_on_loss_db: float = -0.5
    crossing_crosstalk_db: float = -40.0
    pse_off_crosstalk_db: float = -20.0
    pse_on_crosstalk_db: float = -25.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value > 0.0:
                raise ConfigurationError(
                    f"physical parameter {f.name}={value} must be <= 0 dB "
                    "(these coefficients describe attenuation)"
                )

    # -- linear-domain views ------------------------------------------------

    @property
    def crossing_loss_linear(self) -> float:
        """Lc as a linear power ratio."""
        return db_to_linear(self.crossing_loss_db)

    @property
    def ppse_off_loss_linear(self) -> float:
        """Lp,off as a linear power ratio."""
        return db_to_linear(self.ppse_off_loss_db)

    @property
    def ppse_on_loss_linear(self) -> float:
        """Lp,on as a linear power ratio."""
        return db_to_linear(self.ppse_on_loss_db)

    @property
    def cpse_off_loss_linear(self) -> float:
        """Lc,off as a linear power ratio."""
        return db_to_linear(self.cpse_off_loss_db)

    @property
    def cpse_on_loss_linear(self) -> float:
        """Lc,on as a linear power ratio."""
        return db_to_linear(self.cpse_on_loss_db)

    @property
    def crossing_crosstalk_linear(self) -> float:
        """Kc as a linear power ratio."""
        return db_to_linear(self.crossing_crosstalk_db)

    @property
    def pse_off_crosstalk_linear(self) -> float:
        """Kp,off as a linear power ratio."""
        return db_to_linear(self.pse_off_crosstalk_db)

    @property
    def pse_on_crosstalk_linear(self) -> float:
        """Kp,on as a linear power ratio."""
        return db_to_linear(self.pse_on_crosstalk_db)

    # -- content addressing ---------------------------------------------------

    def canonical_text(self) -> str:
        """Injective text encoding of this parameter set.

        One ``name=hex`` term per coefficient, in field declaration
        order, with ``float.hex()`` values — an exact, lossless
        representation, so two distinct parameter sets can never encode
        to the same text. This is the hash input of
        :attr:`content_hash`, which makes hash collisions between
        distinct parameter sets impossible by construction (up to SHA-1
        itself).
        """
        return ";".join(
            f"{f.name}={float(getattr(self, f.name)).hex()}" for f in fields(self)
        )

    @property
    def content_hash(self) -> str:
        """SHA-1 hex digest of :meth:`canonical_text`.

        The canonical identity of this device parameter set: embedded in
        :attr:`repro.noc.network.PhotonicNoC.signature` and therefore in
        the on-disk model-cache key and the objective-free pool key.
        """
        return hashlib.sha1(self.canonical_text().encode()).hexdigest()

    # -- utilities -----------------------------------------------------------

    def propagation_loss_db(self, length_cm: float) -> float:
        """Propagation loss of a waveguide of ``length_cm`` centimetres."""
        if length_cm < 0.0:
            raise ConfigurationError(f"waveguide length {length_cm} cm must be >= 0")
        return self.propagation_loss_db_per_cm * length_cm

    def with_overrides(self, **overrides: float) -> "PhysicalParameters":
        """Return a copy with some coefficients replaced.

        Unknown names raise :class:`~repro.errors.ConfigurationError` instead
        of being silently ignored.
        """
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigurationError(
                f"unknown physical parameter(s): {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, float]:
        """All coefficients as a plain ``{attribute: value}`` dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def table_rows(self) -> Iterator[Tuple[str, str, float]]:
        """Yield ``(description, notation, value)`` rows in Table I order."""
        for description, notation, attribute, _default, _ref in TABLE_I_ROWS:
            yield description, notation, getattr(self, attribute)


# ---------------------------------------------------------------------------
# Process variation
# ---------------------------------------------------------------------------


def perturbed(
    params: PhysicalParameters, sigma: float, rng: np.random.Generator
) -> PhysicalParameters:
    """One process-variation sample of ``params``.

    Every coefficient is scaled by ``1 + sigma * g`` with ``g`` standard
    normal, drawn in field declaration order from ``rng`` (so the sample
    is a pure function of the generator state). Perturbed values are
    clipped to 0 dB: these coefficients describe attenuation, and a
    lucky draw must not turn a loss into gain.

    ``sigma=0`` reproduces ``params`` **bit-exactly**: the scale factor
    is exactly ``1.0`` and ``value * 1.0`` round-trips every float.
    """
    if sigma < 0.0:
        raise ConfigurationError(f"variation sigma {sigma} must be >= 0")
    draws = rng.standard_normal(len(fields(params)))
    values = {}
    for f, g in zip(fields(params), draws):
        value = float(getattr(params, f.name)) * (1.0 + float(sigma) * float(g))
        values[f.name] = min(0.0, value)
    return PhysicalParameters(**values)


def sample_set_hash(samples: "Tuple[PhysicalParameters, ...]") -> str:
    """Order-independent fingerprint of a collection of parameter sets.

    SHA-1 over the *sorted* per-sample content hashes: reordering the
    samples cannot change the digest, so any deterministic aggregation
    over the set (mean, quantile — both order-free per row) is keyed
    correctly whatever order the samples were materialized in.
    """
    digest = hashlib.sha1()
    for sample_hash in sorted(p.content_hash for p in samples):
        digest.update(sample_hash.encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class VariationSpec:
    """Process-variation sampling plan for robust objectives.

    Parameters
    ----------
    n_samples : int
        Number of perturbed device samples to score per mapping.
    sigma : float
        Relative per-coefficient perturbation scale (see
        :func:`perturbed`). ``0.0`` degenerates to ``n_samples`` copies
        of the nominal parameters, bit-exactly.
    seed : int
        Root seed of the ``SeedSequence`` stream; sample ``i`` depends
        only on ``(seed, i)``, never on ``n_samples`` (spawn is
        prefix-stable) or on which worker draws it.
    quantile : float, optional
        When given, robust objectives aggregate the per-sample scores as
        this quantile (e.g. ``0.1`` for a pessimistic tail); default
        ``None`` aggregates as the mean.
    """

    n_samples: int = 8
    sigma: float = 0.02
    seed: int = 0
    quantile: Optional[float] = None

    def __post_init__(self) -> None:
        if int(self.n_samples) < 1:
            raise ConfigurationError(
                f"variation n_samples {self.n_samples} must be >= 1"
            )
        if self.sigma < 0.0:
            raise ConfigurationError(
                f"variation sigma {self.sigma} must be >= 0"
            )
        if self.quantile is not None and not 0.0 <= self.quantile <= 1.0:
            raise ConfigurationError(
                f"variation quantile {self.quantile} must be in [0, 1]"
            )

    @property
    def fingerprint(self) -> str:
        """Exact identity of this sampling plan (pool-key component)."""
        q = "mean" if self.quantile is None else float(self.quantile).hex()
        return (
            f"n={int(self.n_samples)},sigma={float(self.sigma).hex()},"
            f"seed={int(self.seed)},agg={q}"
        )

    def samples(
        self, base: PhysicalParameters
    ) -> Tuple[PhysicalParameters, ...]:
        """The ``n_samples`` perturbed parameter sets of ``base``.

        Each sample draws from its own ``SeedSequence(seed).spawn``
        child, so the returned tuple is a pure function of
        ``(base, seed, sigma)`` per index — bit-identical wherever it is
        materialized (parent process, pool worker, remote worker).
        """
        children = np.random.SeedSequence(int(self.seed)).spawn(
            int(self.n_samples)
        )
        return tuple(
            perturbed(base, self.sigma, np.random.default_rng(child))
            for child in children
        )
