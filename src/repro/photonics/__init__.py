"""Photonic building blocks: parameters, element behaviour, libraries.

This subpackage realizes boxes (2) and the physical half of box (3) of the
PhoNoCMap environment (paper Fig. 1): the waveguide / crossing / microring
building blocks, their loss and crosstalk coefficients (Table I), and the
per-element transfer rules (Fig. 2, eqs. 1a–1j).
"""

from repro.photonics.elements import (
    A_IN,
    A_OUT,
    B_IN,
    B_OUT,
    WG_IN,
    WG_OUT,
    ElementKind,
    Emission,
    TraversalState,
    is_valid_traversal,
    passive_loss_db,
    straight_output,
    traversal_emissions,
    traversal_loss_db,
)
from repro.photonics.library import ComponentLibrary, default_library
from repro.photonics.parameters import (
    TABLE_I_ROWS,
    PhysicalParameters,
    VariationSpec,
    perturbed,
    sample_set_hash,
)
from repro.photonics.units import (
    combine_losses_db,
    db_to_linear,
    dbm_to_mw,
    linear_to_db,
    mw_to_dbm,
    sum_powers_db,
)

__all__ = [
    "A_IN",
    "A_OUT",
    "B_IN",
    "B_OUT",
    "WG_IN",
    "WG_OUT",
    "ElementKind",
    "Emission",
    "TraversalState",
    "is_valid_traversal",
    "passive_loss_db",
    "straight_output",
    "traversal_emissions",
    "traversal_loss_db",
    "ComponentLibrary",
    "default_library",
    "TABLE_I_ROWS",
    "PhysicalParameters",
    "VariationSpec",
    "perturbed",
    "sample_set_hash",
    "combine_losses_db",
    "db_to_linear",
    "dbm_to_mw",
    "linear_to_db",
    "mw_to_dbm",
    "sum_powers_db",
]
