"""Photonic element behaviour: the transfer rules of paper Fig. 2 / eqs. (1).

The network is modelled at the granularity of four primitive elements:

* **waveguide** segments (propagation loss only),
* **plain crossings** of two waveguides (eqs. 1i/1j),
* **crossing PSEs** (CPSE) — a microring sitting at a waveguide crossing
  (eqs. 1e–1h),
* **parallel PSEs** (PPSE) — a microring between two antiparallel waveguides
  (eqs. 1a–1d).

All waveguides in this model are *unidirectional* (bidirectional channels
are two waveguides), so a crossing or PSE joining guide ``A`` and guide ``B``
has exactly four ports::

    A_IN --->[ element ]---> A_OUT
    B_IN --->[         ]---> B_OUT

For a PSE the microring implements the coupling ``A -> B``: a signal
travelling on ``A`` with the ring ON leaves through ``B_OUT`` (the *drop*
port); with the ring OFF it continues to ``A_OUT`` (the *through* port).
The symmetric add-path ``B_IN -> A_OUT`` is also modelled.

Every traversal produces (a) an insertion loss and (b) zero or more
first-order *crosstalk emissions* — a coefficient and the port through
which the leaked power exits, following the paper's simplified model:

* crosstalk generated at an element is not attenuated by that element,
* only first-order noise is tracked (noise never creates noise),
* add-port resonant noise and back-reflections are neglected, which is why
  a passive traversal of a CPSE's crossing guide emits only the
  crossing-grade coefficient ``Kc``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from repro.errors import ModelError
from repro.photonics.parameters import PhysicalParameters

__all__ = [
    "ElementKind",
    "TraversalState",
    "Emission",
    "A_IN",
    "A_OUT",
    "B_IN",
    "B_OUT",
    "WG_IN",
    "WG_OUT",
    "PORT_NAMES",
    "traversal_loss_db",
    "traversal_emissions",
    "straight_output",
    "passive_loss_db",
    "is_valid_traversal",
]

# Port identifiers. Waveguides reuse the A-guide pair.
A_IN = 0
A_OUT = 1
B_IN = 2
B_OUT = 3
WG_IN = A_IN
WG_OUT = A_OUT

PORT_NAMES = {A_IN: "A_IN", A_OUT: "A_OUT", B_IN: "B_IN", B_OUT: "B_OUT"}


class ElementKind(Enum):
    """The four primitive photonic elements of the component library."""

    WAVEGUIDE = "waveguide"
    CROSSING = "crossing"
    CPSE = "cpse"
    PPSE = "ppse"


class TraversalState(Enum):
    """Ring state as seen by one traversal.

    ``PASSIVE`` covers both an OFF ring and elements without a ring;
    ``ON`` means the traversal uses the ring's resonant coupling (a turn for
    a CPSE, a drop for a PPSE).
    """

    PASSIVE = "passive"
    ON = "on"


@dataclass(frozen=True)
class Emission:
    """One first-order crosstalk emission of a traversal.

    ``coefficient_db`` is the power ratio leaked (relative to the power at
    the element's input) and ``out_port`` the port through which the leaked
    power leaves the element.
    """

    coefficient_db: float
    out_port: int


# (kind, in_port, out_port) -> state(s) allowed. Built once, used by
# is_valid_traversal; losses/emissions are computed by the functions below.
_VALID = {
    (ElementKind.WAVEGUIDE, WG_IN, WG_OUT): (TraversalState.PASSIVE,),
    (ElementKind.CROSSING, A_IN, A_OUT): (TraversalState.PASSIVE,),
    (ElementKind.CROSSING, B_IN, B_OUT): (TraversalState.PASSIVE,),
    (ElementKind.CPSE, A_IN, A_OUT): (TraversalState.PASSIVE,),
    (ElementKind.CPSE, A_IN, B_OUT): (TraversalState.ON,),
    (ElementKind.CPSE, B_IN, B_OUT): (TraversalState.PASSIVE,),
    (ElementKind.CPSE, B_IN, A_OUT): (TraversalState.ON,),
    (ElementKind.PPSE, A_IN, A_OUT): (TraversalState.PASSIVE,),
    (ElementKind.PPSE, A_IN, B_OUT): (TraversalState.ON,),
    (ElementKind.PPSE, B_IN, B_OUT): (TraversalState.PASSIVE,),
    (ElementKind.PPSE, B_IN, A_OUT): (TraversalState.ON,),
}


def is_valid_traversal(
    kind: ElementKind, in_port: int, out_port: int, state: TraversalState
) -> bool:
    """Whether ``(in_port, out_port, state)`` is a legal way through ``kind``."""
    allowed = _VALID.get((kind, in_port, out_port))
    return allowed is not None and state in allowed


def _check(kind: ElementKind, in_port: int, out_port: int, state: TraversalState) -> None:
    if not is_valid_traversal(kind, in_port, out_port, state):
        raise ModelError(
            f"invalid traversal of {kind.value}: "
            f"{PORT_NAMES.get(in_port, in_port)} -> "
            f"{PORT_NAMES.get(out_port, out_port)} [{state.value}]"
        )


def traversal_loss_db(
    kind: ElementKind,
    in_port: int,
    out_port: int,
    state: TraversalState,
    params: PhysicalParameters,
    length_cm: float = 0.0,
) -> float:
    """Insertion loss (dB) of one traversal, per eqs. (1a)–(1j).

    ``length_cm`` only matters for waveguides.
    """
    _check(kind, in_port, out_port, state)
    if kind is ElementKind.WAVEGUIDE:
        return params.propagation_loss_db(length_cm)
    if kind is ElementKind.CROSSING:
        return params.crossing_loss_db  # eq. (1i)
    if kind is ElementKind.CPSE:
        if state is TraversalState.ON:
            return params.cpse_on_loss_db  # eq. (1g)
        return params.cpse_off_loss_db  # eq. (1e)
    # PPSE
    if state is TraversalState.ON:
        return params.ppse_on_loss_db  # eq. (1c)
    return params.ppse_off_loss_db  # eq. (1a)


def traversal_emissions(
    kind: ElementKind,
    in_port: int,
    out_port: int,
    state: TraversalState,
    params: PhysicalParameters,
) -> Tuple[Emission, ...]:
    """First-order crosstalk emissions of one traversal, per eqs. (1b)–(1j).

    The returned coefficients are relative to the power at the element's
    input; per the paper's simplification they are *not* attenuated by the
    element itself.
    """
    _check(kind, in_port, out_port, state)
    if kind is ElementKind.WAVEGUIDE:
        return ()
    other_out = B_OUT if in_port == A_IN else A_OUT
    if kind is ElementKind.CROSSING:
        # eq. (1j): Kc leaks into the perpendicular guide's output.
        return (Emission(params.crossing_crosstalk_db, other_out),)
    if kind is ElementKind.CPSE:
        if state is TraversalState.ON:
            # eq. (1h): Kp,on continues straight through.
            straight = A_OUT if in_port == A_IN else B_OUT
            return (Emission(params.pse_on_crosstalk_db, straight),)
        if in_port == A_IN:
            # eq. (1f): the OFF drop port sees Kp,off + Kc (linear sum).
            coefficient = _linear_sum_db(
                params.pse_off_crosstalk_db, params.crossing_crosstalk_db
            )
            return (Emission(coefficient, B_OUT),)
        # Passive traversal of the crossing guide: only crossing-grade
        # leakage (add-port resonant noise is neglected by the paper).
        return (Emission(params.crossing_crosstalk_db, A_OUT),)
    # PPSE
    if state is TraversalState.ON:
        straight = A_OUT if in_port == A_IN else B_OUT
        return (Emission(params.pse_on_crosstalk_db, straight),)  # eq. (1d)
    return (Emission(params.pse_off_crosstalk_db, other_out),)  # eq. (1b)


def straight_output(kind: ElementKind, in_port: int) -> int:
    """The output port a passively propagating signal (or noise) exits from.

    Used when walking crosstalk noise forward along a guide: noise never
    turns, so at every element it follows the passive through path.
    """
    if kind is ElementKind.WAVEGUIDE:
        if in_port != WG_IN:
            raise ModelError(f"waveguide has no input port {in_port}")
        return WG_OUT
    if in_port == A_IN:
        return A_OUT
    if in_port == B_IN:
        return B_OUT
    raise ModelError(f"{kind.value} has no input port {in_port}")


def passive_loss_db(
    kind: ElementKind,
    in_port: int,
    params: PhysicalParameters,
    length_cm: float = 0.0,
) -> float:
    """Loss of a passive straight pass, as suffered by walking noise."""
    return traversal_loss_db(
        kind, in_port, straight_output(kind, in_port), TraversalState.PASSIVE,
        params, length_cm,
    )


def _linear_sum_db(*coefficients_db: float) -> float:
    """Sum crosstalk coefficients in the linear domain, result in dB."""
    from repro.photonics.units import db_to_linear, linear_to_db

    return linear_to_db(sum(db_to_linear(c) for c in coefficients_db))
