"""Reproduction harnesses for every table and figure of the paper.

* :func:`reproduce_table1` — Table I (the building-block parameters);
* :func:`reproduce_fig3`  — Fig. 3 (worst-case SNR / power-loss
  distributions over random mappings, 8 applications, mesh + Crux);
* :func:`reproduce_table2` — Table II (RS vs GA vs R-PBLA on mesh and
  torus, both objectives, equal search budget).

Each harness returns structured results *and* renders the paper-shaped
text artefact. The paper's published numbers are embedded
(:data:`PAPER_TABLE2`) so EXPERIMENTS.md and the benches can print
paper-vs-measured columns directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.distribution import DistributionResult, random_mapping_distribution
from repro.analysis.report import format_db, format_table
from repro.appgraph.benchmarks import BENCHMARK_NAMES, grid_side_for, load_benchmark
from repro.core.dse import DesignSpaceExplorer
from repro.core.objectives import Objective
from repro.core.problem import MappingProblem
from repro.core.registry import PAPER_STRATEGIES
from repro.errors import ConfigurationError
from repro.noc.network import PhotonicNoC
from repro.noc.topology import mesh, torus
from repro.photonics.parameters import PhysicalParameters

__all__ = [
    "PAPER_TABLE2",
    "reproduce_table1",
    "reproduce_fig3",
    "Table2Cell",
    "Table2Result",
    "reproduce_table2",
    "build_case_study_network",
]

#: Paper Table II, transcribed: app -> topology -> strategy -> (SNR dB, loss dB).
PAPER_TABLE2: Dict[str, Dict[str, Dict[str, Tuple[float, float]]]] = {
    "263dec_mp3dec": {
        "mesh": {"rs": (20.21, -2.04), "ga": (38.67, -1.52), "r-pbla": (38.67, -1.52)},
        "torus": {"rs": (39.08, -2.12), "ga": (38.71, -1.68), "r-pbla": (39.95, -1.60)},
    },
    "263enc_mp3enc": {
        "mesh": {"rs": (38.29, -2.04), "ga": (38.63, -1.94), "r-pbla": (38.63, -1.59)},
        "torus": {"rs": (39.77, -2.12), "ga": (39.73, -1.97), "r-pbla": (39.94, -1.75)},
    },
    "dvopd": {
        "mesh": {"rs": (12.65, -2.79), "ga": (16.19, -2.15), "r-pbla": (18.70, -1.85)},
        "torus": {"rs": (14.12, -3.18), "ga": (19.15, -2.23), "r-pbla": (19.12, -2.04)},
    },
    "mpeg4": {
        "mesh": {"rs": (19.06, -2.35), "ga": (19.16, -2.04), "r-pbla": (20.02, -2.04)},
        "torus": {"rs": (20.10, -2.35), "ga": (20.10, -2.20), "r-pbla": (21.08, -2.20)},
    },
    "mwd": {
        "mesh": {"rs": (20.24, -1.81), "ga": (38.63, -1.59), "r-pbla": (38.63, -1.59)},
        "torus": {"rs": (39.72, -1.97), "ga": (39.28, -1.99), "r-pbla": (39.95, -1.61)},
    },
    "pip": {
        "mesh": {"rs": (38.58, -1.90), "ga": (38.58, -1.68), "r-pbla": (38.58, -1.68)},
        "torus": {"rs": (39.95, -1.86), "ga": (39.88, -1.70), "r-pbla": (39.95, -1.70)},
    },
    "vopd": {
        "mesh": {"rs": (18.66, -2.27), "ga": (37.83, -1.96), "r-pbla": (38.67, -1.52)},
        "torus": {"rs": (19.24, -2.39), "ga": (20.29, -2.04), "r-pbla": (38.59, -1.68)},
    },
    "wavelet": {
        "mesh": {"rs": (14.58, -2.46), "ga": (37.95, -2.15), "r-pbla": (36.86, -1.93)},
        "torus": {"rs": (16.29, -3.06), "ga": (19.65, -2.31), "r-pbla": (32.52, -2.27)},
    },
}


def build_case_study_network(
    topology_name: str,
    side: int,
    router: str = "crux",
    params: Optional[PhysicalParameters] = None,
) -> PhotonicNoC:
    """The architecture of the paper's case studies (§III).

    ``params`` picks the device parameter set (default: the paper's
    Table I entry of the component library); sweeps pass each
    library-instantiated point here.
    """
    if topology_name == "mesh":
        topology = mesh(side, side)
    elif topology_name == "torus":
        topology = torus(side, side)
    else:
        raise ConfigurationError(
            f"case studies use 'mesh' or 'torus', got {topology_name!r}"
        )
    return PhotonicNoC(topology, router=router, params=params)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


def reproduce_table1(params: Optional[PhysicalParameters] = None) -> str:
    """Render Table I from the active parameter set."""
    params = params if params is not None else PhysicalParameters()
    rows = []
    for description, notation, value in params.table_rows():
        unit = "dB/cm" if notation == "Lp" else "dB"
        rows.append((description, notation, f"{value:g} {unit}"))
    return format_table(
        ("Parameter", "Notation", "Value"),
        rows,
        title="TABLE I. LOSS AND CROSSTALK PARAMETERS",
    )


# ---------------------------------------------------------------------------
# Fig. 3
# ---------------------------------------------------------------------------


def reproduce_fig3(
    applications: Sequence[str] = BENCHMARK_NAMES,
    n_samples: int = 100_000,
    seed: int = 2016,
    router: str = "crux",
    n_workers: int = 1,
    dtype=np.float64,
    backend: str = "auto",
    executor: str = "local",
    routes: int = 1,
) -> Dict[str, DistributionResult]:
    """Fig. 3's experiment: random-mapping distributions on mesh + Crux.

    ``n_workers > 1`` shards each application's batch evaluations across
    the persistent worker pool (generation overlaps evaluation); the
    sampled distributions are bit-identical for any worker count.
    ``dtype`` and ``backend`` configure the evaluator's coupling memory
    and noise-contraction kernel (see
    :class:`~repro.core.evaluator.MappingEvaluator`). ``routes > 1``
    samples joint design vectors (placements plus uniform route genes);
    the default 1 reproduces the paper's experiment exactly.
    """
    results: Dict[str, DistributionResult] = {}
    for index, name in enumerate(applications):
        cg = load_benchmark(name)
        network = build_case_study_network("mesh", grid_side_for(cg), router)
        results[name] = random_mapping_distribution(
            cg, network, n_samples=n_samples, seed=seed + index,
            n_workers=n_workers, dtype=dtype, backend=backend,
            executor=executor, routes=routes,
        )
    return results


def format_fig3(results: Dict[str, DistributionResult]) -> str:
    """Summary table of the Fig. 3 distributions (min/median/max)."""
    rows = []
    for name, result in results.items():
        snr = result.summary("snr")
        loss = result.summary("loss")
        rows.append(
            (
                name,
                result.n_samples,
                format_db(snr["min"]),
                format_db(snr["median"]),
                format_db(snr["max"]),
                f"{loss['min']:7.2f}",
                f"{loss['median']:7.2f}",
                f"{loss['max']:7.2f}",
            )
        )
    return format_table(
        (
            "Application",
            "Samples",
            "SNR min",
            "SNR med",
            "SNR max",
            "Loss min",
            "Loss med",
            "Loss max",
        ),
        rows,
        title=(
            "Fig. 3 reproduction: worst-case SNR / power loss over random "
            "mappings (mesh + Crux), dB"
        ),
    )


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Cell:
    """One (application, topology, strategy) cell of Table II."""

    snr_db: float
    loss_db: float
    paper_snr_db: Optional[float] = None
    paper_loss_db: Optional[float] = None


@dataclass
class Table2Result:
    """Measured Table II with rendering helpers."""

    budget: int
    seed: int
    cells: Dict[Tuple[str, str, str], Table2Cell]
    strategies: Tuple[str, ...]
    topologies: Tuple[str, ...]
    applications: Tuple[str, ...]

    def format(self, with_paper: bool = False) -> str:
        headers = ["Application"]
        for topology in self.topologies:
            for strategy in self.strategies:
                headers.append(f"{topology}/{strategy} SNR")
                headers.append(f"{topology}/{strategy} Loss")
        rows = []
        for application in self.applications:
            row = [application]
            for topology in self.topologies:
                for strategy in self.strategies:
                    cell = self.cells[(application, topology, strategy)]
                    snr = format_db(cell.snr_db)
                    loss = f"{cell.loss_db:6.2f}"
                    if with_paper and cell.paper_snr_db is not None:
                        snr = f"{snr} ({cell.paper_snr_db:5.2f})"
                        loss = f"{loss} ({cell.paper_loss_db:5.2f})"
                    row.append(snr)
                    row.append(loss)
            rows.append(row)
        suffix = " — measured (paper)" if with_paper else ""
        return format_table(
            headers,
            rows,
            title=(
                "TABLE II reproduction: algorithms comparison, budget="
                f"{self.budget} evaluations{suffix}"
            ),
        )


def reproduce_table2(
    applications: Sequence[str] = BENCHMARK_NAMES,
    topologies: Sequence[str] = ("mesh", "torus"),
    strategies: Sequence[str] = PAPER_STRATEGIES,
    budget: int = 20_000,
    seed: int = 2016,
    router: str = "crux",
    use_delta: bool = True,
    n_workers: int = 1,
    dtype=np.float64,
    backend: str = "auto",
    executor: str = "local",
    routes: int = 1,
) -> Table2Result:
    """Run the Table II experiment.

    For every (application, topology, strategy) the SNR column comes from a
    crosstalk-objective run and the Loss column from a power-loss-objective
    run, each under the same evaluation budget — mirroring the paper's
    equal-running-time protocol (DESIGN.md §4). ``n_workers > 1`` runs the
    per-strategy comparisons across a process pool; the results are
    bit-identical to the sequential ones (see :mod:`repro.core.dse`).
    ``dtype`` and ``backend`` configure each cell's evaluator (coupling
    memory and noise-contraction kernel). ``routes > 1`` widens every
    cell's search to the joint mapping x routing space; the default 1
    reproduces the paper's protocol exactly.
    """
    cells: Dict[Tuple[str, str, str], Table2Cell] = {}
    for application in applications:
        cg = load_benchmark(application)
        side = grid_side_for(cg)
        for topology_name in topologies:
            network = build_case_study_network(topology_name, side, router)
            best_snr: Dict[str, float] = {}
            best_loss: Dict[str, float] = {}
            for objective in (Objective.SNR, Objective.INSERTION_LOSS):
                problem = MappingProblem(cg, network, objective, routes=routes)
                explorer = DesignSpaceExplorer(
                    problem, dtype=dtype, use_delta=use_delta,
                    n_workers=n_workers, backend=backend,
                    executor=executor,
                )
                results = explorer.compare(strategies, budget=budget, seed=seed)
                for strategy, result in results.items():
                    if objective is Objective.SNR:
                        best_snr[strategy] = result.best_metrics.worst_snr_db
                    else:
                        best_loss[strategy] = (
                            result.best_metrics.worst_insertion_loss_db
                        )
            paper_row = PAPER_TABLE2.get(application, {}).get(topology_name, {})
            for strategy in strategies:
                paper = paper_row.get(strategy)
                cells[(application, topology_name, strategy)] = Table2Cell(
                    snr_db=best_snr[strategy],
                    loss_db=best_loss[strategy],
                    paper_snr_db=paper[0] if paper else None,
                    paper_loss_db=paper[1] if paper else None,
                )
    return Table2Result(
        budget=budget,
        seed=seed,
        cells=cells,
        strategies=tuple(strategies),
        topologies=tuple(topologies),
        applications=tuple(applications),
    )
