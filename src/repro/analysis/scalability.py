"""Network scalability analysis (the abstract's "improved network
scalability" claim, quantified).

For growing mesh sizes, compare the worst-case insertion loss and SNR of
(a) random mappings and (b) optimized mappings, and translate the loss into
the required laser power (:mod:`repro.models.power`). The claim of the
paper is that mapping optimization pushes the feasibility frontier — the
largest network a given power budget can operate — outward; this study
measures by how much.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.report import format_db, format_table
from repro.appgraph.synthetic import random_cg
from repro.core.dse import DesignSpaceExplorer
from repro.core.mapping import random_assignment_batch
from repro.core.objectives import Objective
from repro.core.problem import MappingProblem
from repro.models.power import PowerBudget, is_feasible, required_laser_power_dbm
from repro.noc.network import PhotonicNoC
from repro.noc.topology import mesh

__all__ = ["ScalabilityRow", "scalability_study", "format_scalability"]


@dataclass(frozen=True)
class ScalabilityRow:
    """One mesh size of the scalability study."""

    side: int
    n_tasks: int
    random_loss_db: float
    optimized_loss_db: float
    random_snr_db: float
    optimized_snr_db: float
    random_laser_dbm: float
    optimized_laser_dbm: float
    random_feasible: bool
    optimized_feasible: bool


def scalability_study(
    sides: Sequence[int] = (3, 4, 5, 6),
    fill_ratio: float = 0.85,
    budget: int = 4000,
    strategy: str = "r-pbla",
    seed: int = 7,
    router: str = "crux",
    budget_model: Optional[PowerBudget] = None,
    n_workers: int = 1,
    model_cache_dir: Optional[str] = None,
) -> Tuple[ScalabilityRow, ...]:
    """Worst-case metrics vs mesh size, random vs optimized mapping.

    Each size gets a synthetic application filling ``fill_ratio`` of the
    tiles with roughly 1.5 edges per task — a fixed workload *shape* so the
    size trend is attributable to the network, not the application.

    ``n_workers > 1`` parallelizes each optimization run (chain
    decomposition) and shards the random-sample batch across the
    persistent worker pool; because the pool key ignores the objective,
    the loss run, the SNR run and the sampling of one mesh size all share
    one warm pool. Explorers are closed per mesh size, so pools and
    shared-memory exports never outlive the mesh they served.

    ``model_cache_dir`` points the per-size coupling-model builds at an
    on-disk cache (see :mod:`repro.models.coupling`): re-running the
    study — or growing ``sides`` — then pays each architecture's
    O(n_pairs^2) precomputation once per machine instead of once per
    invocation, which is what makes 10x10+ meshes routine.
    """
    budget_model = budget_model if budget_model is not None else PowerBudget()
    rows = []
    for side in sides:
        n_tiles = side * side
        n_tasks = max(2, int(round(fill_ratio * n_tiles)))
        n_edges = max(n_tasks - 1, int(round(1.5 * n_tasks)))
        cg = random_cg(n_tasks, n_edges, seed=seed + side)
        network = PhotonicNoC(mesh(side, side), router=router)

        with contextlib.ExitStack() as stack:
            loss_problem = MappingProblem(cg, network, Objective.INSERTION_LOSS)
            loss_explorer = stack.enter_context(
                DesignSpaceExplorer(
                    loss_problem,
                    n_workers=n_workers,
                    model_cache_dir=model_cache_dir,
                )
            )
            optimized_loss = loss_explorer.run(strategy, budget=budget, seed=seed)

            snr_problem = MappingProblem(cg, network, Objective.SNR)
            snr_explorer = stack.enter_context(
                DesignSpaceExplorer(
                    snr_problem,
                    n_workers=n_workers,
                    model_cache_dir=model_cache_dir,
                )
            )
            optimized_snr = snr_explorer.run(strategy, budget=budget, seed=seed)

            # "Random" columns report the *median-quality* random mapping
            # (not the best of a search) — what a designer gets without
            # optimizing.
            rng = np.random.default_rng(seed + 1000 * side)
            sample = random_assignment_batch(
                256, cg.n_tasks, network.topology.n_tiles, rng
            )
            sample_metrics = loss_explorer.evaluator.evaluate_batch(
                sample, n_workers=n_workers
            )
        random_loss_db = float(np.median(sample_metrics.worst_insertion_loss_db))
        random_snr_db = float(np.median(sample_metrics.worst_snr_db))
        rows.append(
            ScalabilityRow(
                side=side,
                n_tasks=n_tasks,
                random_loss_db=random_loss_db,
                optimized_loss_db=optimized_loss.best_metrics.worst_insertion_loss_db,
                random_snr_db=random_snr_db,
                optimized_snr_db=optimized_snr.best_metrics.worst_snr_db,
                random_laser_dbm=required_laser_power_dbm(
                    random_loss_db, budget_model
                ),
                optimized_laser_dbm=required_laser_power_dbm(
                    optimized_loss.best_metrics.worst_insertion_loss_db,
                    budget_model,
                ),
                random_feasible=is_feasible(random_loss_db, budget_model),
                optimized_feasible=is_feasible(
                    optimized_loss.best_metrics.worst_insertion_loss_db,
                    budget_model,
                ),
            )
        )
    return tuple(rows)


def format_scalability(rows: Sequence[ScalabilityRow]) -> str:
    """Render the scalability study as a table.

    Feasibility is shown for *both* mapping regimes — the study's
    headline is exactly the gap between the two columns: mesh sizes
    where ``rnd feas`` reads NO while ``opt feas`` reads yes are the
    frontier that mapping optimization pushes outward.
    """
    table_rows = []
    for row in rows:
        table_rows.append(
            (
                f"{row.side}x{row.side}",
                row.n_tasks,
                f"{row.random_loss_db:7.2f}",
                f"{row.optimized_loss_db:7.2f}",
                format_db(row.random_snr_db),
                format_db(row.optimized_snr_db),
                f"{row.random_laser_dbm:6.2f}",
                f"{row.optimized_laser_dbm:6.2f}",
                "yes" if row.random_feasible else "NO",
                "yes" if row.optimized_feasible else "NO",
            )
        )
    return format_table(
        (
            "Mesh",
            "Tasks",
            "rnd loss",
            "opt loss",
            "rnd SNR",
            "opt SNR",
            "rnd laser",
            "opt laser",
            "rnd feas",
            "opt feas",
        ),
        table_rows,
        title="Scalability: worst-case metrics and laser power vs mesh size",
    )
