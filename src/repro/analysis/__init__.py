"""Analysis harnesses: the paper's experiments and the extension studies."""

from repro.analysis.distribution import DistributionResult, random_mapping_distribution
from repro.analysis.inspect import (
    NoiseContribution,
    edge_noise_breakdown,
    mapping_report,
)
from repro.analysis.experiments import (
    PAPER_TABLE2,
    Table2Cell,
    Table2Result,
    build_case_study_network,
    format_fig3,
    reproduce_fig3,
    reproduce_table1,
    reproduce_table2,
)
from repro.analysis.report import ascii_curve, format_db, format_table
from repro.analysis.scalability import (
    ScalabilityRow,
    format_scalability,
    scalability_study,
)
from repro.analysis.sweep import (
    SweepPoint,
    SweepResult,
    grid_points,
    sweep_device_points,
)

__all__ = [
    "DistributionResult",
    "random_mapping_distribution",
    "NoiseContribution",
    "edge_noise_breakdown",
    "mapping_report",
    "PAPER_TABLE2",
    "Table2Cell",
    "Table2Result",
    "build_case_study_network",
    "format_fig3",
    "reproduce_fig3",
    "reproduce_table1",
    "reproduce_table2",
    "ascii_curve",
    "format_db",
    "format_table",
    "ScalabilityRow",
    "format_scalability",
    "scalability_study",
    "SweepPoint",
    "SweepResult",
    "grid_points",
    "sweep_device_points",
]
