"""Random-mapping distribution study — the experiment behind paper Fig. 3.

"In order to prove that the mapping choice heavily affects the worst-case
power loss and signal-to-noise ratio, we generated randomly 100000 mapping
solutions for each application in a mesh-based photonic NoC exploiting the
Crux optical router and ... evaluated the worst-case SNR and power loss
related to each mapping solution."

:func:`random_mapping_distribution` reproduces that experiment for one
application; :class:`DistributionResult` carries the raw per-sample metrics
plus CDF extraction (Fig. 3 plots the cumulative probability curves).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.appgraph.graph import CommunicationGraph
from repro.core.evaluator import MappingEvaluator
from repro.core.objectives import SNR_CAP_DB, Objective
from repro.core.problem import MappingProblem
from repro.errors import ConfigurationError
from repro.noc.network import PhotonicNoC

__all__ = ["DistributionResult", "random_mapping_distribution"]


@dataclass(frozen=True)
class DistributionResult:
    """Worst-case SNR / power-loss samples over random mappings."""

    application: str
    n_samples: int
    worst_snr_db: np.ndarray
    worst_loss_db: np.ndarray

    def cdf(self, metric: str, points: int = 101) -> Tuple[np.ndarray, np.ndarray]:
        """Cumulative distribution of ``"snr"`` or ``"loss"``.

        Returns (values, cumulative probability), the series Fig. 3 plots.
        """
        if metric == "snr":
            samples = self.worst_snr_db
        elif metric == "loss":
            samples = self.worst_loss_db
        else:
            raise ConfigurationError(
                f"metric must be 'snr' or 'loss', got {metric!r}"
            )
        finite = samples[samples < SNR_CAP_DB] if metric == "snr" else samples
        if finite.size == 0:
            finite = samples
        grid = np.linspace(float(finite.min()), float(finite.max()), points)
        sorted_samples = np.sort(samples)
        probabilities = np.searchsorted(sorted_samples, grid, side="right") / len(
            samples
        )
        return grid, probabilities

    def summary(self, metric: str) -> dict:
        """Min / median / max / spread of one metric."""
        samples = self.worst_snr_db if metric == "snr" else self.worst_loss_db
        return {
            "min": float(np.min(samples)),
            "median": float(np.median(samples)),
            "max": float(np.max(samples)),
            "spread": float(np.max(samples) - np.min(samples)),
        }


def random_mapping_distribution(
    cg: CommunicationGraph,
    network: PhotonicNoC,
    n_samples: int = 100_000,
    seed: Optional[int] = None,
    batch_size: int = 4096,
    n_workers: int = 1,
    dtype=np.float64,
    backend: str = "auto",
    evaluator: Optional[MappingEvaluator] = None,
    executor: str = "local",
    routes: int = 1,
) -> DistributionResult:
    """Sample random mappings and record both worst-case metrics.

    Parameters
    ----------
    cg : CommunicationGraph
        The application whose mapping distribution is sampled.
    network : PhotonicNoC
        Target architecture (the paper uses mesh + Crux).
    n_samples : int, optional
        Number of random mappings (default 100,000, as in Fig. 3).
    seed : int, optional
        RNG seed; samples are generated in the parent process, so the
        sample set depends only on the seed, never on ``n_workers``.
    batch_size : int, optional
        Mappings generated and submitted per step (default 4096).
    n_workers : int, optional
        Shard width for batch evaluation (default 1, sequential). The
        loop keeps two batches in flight — workers score one batch while
        the parent generates the next — and results are written back by
        submission offset, so the returned distribution is
        **bit-identical for any** ``n_workers``.
    dtype : numpy dtype-like, optional
        Coupling-matrix dtype (default ``float64``; ``float32`` halves
        both the dense and the CSR coupling memory).
    backend : {"auto", "dense", "sparse"}, optional
        Noise-contraction backend of the evaluator (default ``"auto"``,
        selected by measured coupling density).
    evaluator : MappingEvaluator, optional
        Pre-built evaluator to sample through instead of constructing
        one (``dtype``, ``backend`` and ``n_workers`` are then taken
        from it). The service layer passes its coalescing evaluator
        here, so concurrent distribution requests share merged batch
        flights; any compliant evaluator yields the same samples —
        generation depends only on ``seed``, and batch evaluation is
        row-local — so the result stays bit-identical to the default.
    routes : int, optional
        Per-pair route-menu size (default 1: base routes only).
        ``routes > 1`` samples joint design vectors — random placements
        plus uniform route genes — through a routed evaluator; ignored
        when a pre-built ``evaluator`` is passed (its own ``routes``
        governs). At ``routes == 1`` generation and results are
        bit-identical to pre-routing code.

    Returns
    -------
    DistributionResult
        Per-sample worst-case SNR and power loss, plus CDF extraction.
    """
    if n_samples < 1:
        raise ConfigurationError(f"n_samples must be >= 1, got {n_samples}")
    if evaluator is None:
        problem = MappingProblem(cg, network, Objective.SNR, routes=routes)
        evaluator = MappingEvaluator(
            problem, dtype=dtype, n_workers=n_workers, backend=backend,
            executor=executor,
        )
    rng = np.random.default_rng(seed)
    snr = np.empty(n_samples, dtype=np.float64)
    loss = np.empty(n_samples, dtype=np.float64)

    def collect(offset: int, count: int, handle) -> None:
        metrics = handle.result()
        snr[offset : offset + count] = metrics.worst_snr_db
        loss[offset : offset + count] = metrics.worst_insertion_loss_db

    pending = deque()  # (offset, count, handle); bounded in-flight window
    done = 0
    while done < n_samples:
        count = min(batch_size, n_samples - done)
        batch = evaluator.random_vector_batch(count, rng)
        pending.append((done, count, evaluator.submit_batch(batch)))
        done += count
        if len(pending) >= 2:
            collect(*pending.popleft())
    while pending:
        collect(*pending.popleft())
    return DistributionResult(cg.name, n_samples, snr, loss)
