"""Plain-text reporting helpers: tables and ASCII plots.

The original PhoNoCMap was a GUI-less batch tool; its outputs were tables.
These helpers render the reproduction's tables and distribution curves as
monospaced text so every harness can print paper-comparable artefacts
without plotting dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["format_table", "ascii_curve", "format_db"]


def format_db(value: float, width: int = 7, precision: int = 2) -> str:
    """Format a dB figure, rendering the no-noise cap as ``>cap``."""
    from repro.core.objectives import SNR_CAP_DB

    if value >= SNR_CAP_DB:
        return f"{'>' + format(SNR_CAP_DB, '.0f'):>{width}}"
    return f"{value:{width}.{precision}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width text table."""
    columns = len(headers)
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
        cells.append([str(c) for c in row])
    widths = [max(len(line[i]) for line in cells) for i in range(columns)]
    separator = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row_cells in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row_cells, widths)))
    return "\n".join(lines)


def ascii_curve(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render a curve (e.g. a CDF) as an ASCII plot."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("ascii_curve needs two same-length arrays (>= 2 points)")
    grid = [[" "] * width for _ in range(height)]
    x_min, x_max = float(x.min()), float(x.max())
    y_min, y_max = float(y.min()), float(y.max())
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    for xi, yi in zip(x, y):
        col = int((xi - x_min) / x_span * (width - 1))
        row = int((yi - y_min) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = [f"{y_label} ({y_min:.2f}..{y_max:.2f})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.2f} .. {x_max:.2f}")
    return "\n".join(lines)
