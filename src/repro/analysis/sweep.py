"""Device-parameter sweeps over the content-addressed component library.

The extension study PR 8 adds on top of the paper's experiments: hold the
application and the architecture topology fixed, move the *physical
device point* — crossing loss, crosstalk coefficients, any Table I
entry — and re-run the mapping optimization at every point. Because every
parameter point is content-addressed (its hash flows through the network
signature into the PR 5 on-disk model cache), re-sweeping a point that
was ever swept before rebuilds **zero** coupling models: the sweep is
warm-start by construction, and ``tests/analysis/test_sweep.py`` asserts
exactly that via :data:`repro.models.coupling.BUILD_COUNT`.

Grid syntax mirrors the CLI: each ``--param name=v1,v2,...`` axis
contributes its values, and :func:`grid_points` takes the cartesian
product in declaration order, so point order — and therefore the seeded
per-point runs — is deterministic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.report import format_table
from repro.appgraph.graph import CommunicationGraph
from repro.core.dse import DesignSpaceExplorer
from repro.core.objectives import Objective
from repro.core.problem import MappingProblem
from repro.core.result import OptimizationResult
from repro.errors import ConfigurationError
from repro.photonics.library import default_library
from repro.photonics.parameters import PhysicalParameters, VariationSpec

__all__ = ["SweepPoint", "SweepResult", "grid_points", "sweep_device_points"]


@dataclass(frozen=True)
class SweepPoint:
    """One swept device point and its optimization outcome."""

    #: Content-addressed library key of the point (``"<base>@<hash12>"``,
    #: or the base name itself for the unmodified entry).
    key: str
    #: The coefficient overrides defining the point (empty for the base).
    overrides: Dict[str, float]
    #: Full content hash of the parameter set.
    content_hash: str
    #: The per-point optimization result.
    result: OptimizationResult

    @property
    def score(self) -> float:
        return float(self.result.best_score)


@dataclass
class SweepResult:
    """All points of one sweep, in grid declaration order."""

    application: str
    objective: Objective
    strategy: str
    budget: int
    points: List[SweepPoint]

    def best(self) -> SweepPoint:
        """The point with the highest objective score."""
        return max(self.points, key=lambda point: point.score)

    def format(self) -> str:
        """Render the sweep as an aligned text table."""
        rows = []
        for point in self.points:
            overrides = (
                ", ".join(
                    f"{name}={value:g}"
                    for name, value in point.overrides.items()
                )
                or "(base)"
            )
            rows.append((point.key, overrides, f"{point.score:.4f}"))
        return format_table(
            ("point", "overrides", "score"),
            rows,
            title=(
                f"Device sweep: {self.application} / {self.objective.value}"
                f" / {self.strategy} @ {self.budget}"
            ),
        )


def _base_name(base: Union[str, PhysicalParameters]) -> str:
    """The library entry name a sweep's instance keys derive from.

    A spec string contributes its name part; a raw parameter set (or an
    empty name) falls back to the default entry — the override dict is
    always complete (every coefficient of the resolved base), so which
    registered entry anchors the key never changes the instantiated
    content.
    """
    if isinstance(base, PhysicalParameters):
        return "date16"
    name, _, _ = str(base).partition(":")
    return name or "date16"


def grid_points(
    grid: Sequence[Tuple[str, Sequence[float]]],
    base: Union[str, PhysicalParameters] = "date16",
) -> List[Tuple[Dict[str, float], PhysicalParameters]]:
    """Materialize the cartesian product of a coefficient grid.

    Parameters
    ----------
    grid : sequence of (name, values)
        One axis per coefficient, in declaration order; the product
        enumerates the *last* axis fastest (row-major), so point order
        is a pure function of the grid.
    base : str or PhysicalParameters, optional
        Library entry (or spec string) the overrides apply to.

    Returns
    -------
    list of (overrides, params)
        Every point, instantiated — and content-registered — through the
        default library. An empty grid yields the single base point.
    """
    library = default_library()
    base_name = _base_name(base)
    resolved = library.resolve(base)
    if not grid:
        return [({}, resolved)]
    names = [name for name, _ in grid]
    if len(set(names)) != len(names):
        raise ConfigurationError(
            f"sweep grid repeats a coefficient: {names}"
        )
    axes = []
    for name, values in grid:
        values = [float(v) for v in values]
        if not values:
            raise ConfigurationError(
                f"sweep axis {name!r} has no values"
            )
        axes.append(values)
    points = []
    for combo in itertools.product(*axes):
        overrides = dict(zip(names, combo))
        params = library.instantiate(base_name, **dict(resolved.as_dict(), **overrides))
        points.append((overrides, params))
    return points


def sweep_device_points(
    cg: CommunicationGraph,
    grid: Sequence[Tuple[str, Sequence[float]]],
    topology: str = "mesh",
    side: Optional[int] = None,
    router: str = "crux",
    base: Union[str, PhysicalParameters] = "date16",
    objective: Union[str, Objective] = Objective.SNR,
    variation: Optional[VariationSpec] = None,
    strategy: str = "r-pbla",
    budget: int = 2_000,
    seed: Optional[int] = 0,
    dtype=np.float64,
    backend: str = "auto",
    use_delta: bool = True,
    n_workers: int = 1,
    model_cache_dir: Optional[str] = None,
) -> SweepResult:
    """Optimize the mapping at every device point of a coefficient grid.

    Every point runs the same strategy under the same budget **and the
    same seed**, so score differences across points reflect the physics,
    never the search's luck. Per point the coupling model resolves
    through the content-hash-keyed caches (process, then disk), so
    repeated sweeps — or overlapping grids — rebuild only never-seen
    points.
    """
    from repro.analysis.experiments import build_case_study_network
    from repro.appgraph.benchmarks import grid_side_for

    objective = Objective.parse(objective)
    if side is None:
        side = grid_side_for(cg)
    library = default_library()
    base_name = _base_name(base)
    points: List[SweepPoint] = []
    for overrides, params in grid_points(grid, base=base):
        network = build_case_study_network(
            topology, side, router, params=params
        )
        problem = MappingProblem(cg, network, objective, variation=variation)
        with DesignSpaceExplorer(
            problem,
            dtype=dtype,
            use_delta=use_delta,
            n_workers=n_workers,
            backend=backend,
            model_cache_dir=model_cache_dir,
        ) as explorer:
            result = explorer.run(strategy, budget=budget, seed=seed)
        key = (
            library.instance_key(base_name, params)
            if overrides
            else (base if isinstance(base, str) else params.content_hash[:12])
        )
        points.append(
            SweepPoint(
                key=str(key),
                overrides=dict(overrides),
                content_hash=params.content_hash,
                result=result,
            )
        )
    return SweepResult(
        application=cg.name,
        objective=objective,
        strategy=strategy,
        budget=budget,
        points=points,
    )
