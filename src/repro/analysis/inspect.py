"""Mapping inspection: per-edge noise breakdowns.

The worst-case SNR of eq. (4) is a single number; fixing a bad mapping
needs to know *which* aggressor communication injects the noise. These
helpers decompose every CG edge's noise into its per-aggressor
contributions (honouring the serialization mask) and render a designer-
facing report: per-edge loss and SNR, and for the noisiest edges the
dominant aggressors with their coupling strength.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.analysis.report import format_db, format_table
from repro.core.evaluator import MappingEvaluator
from repro.core.mapping import Mapping
from repro.core.objectives import SNR_CAP_DB
from repro.errors import ConfigurationError
from repro.photonics.units import linear_to_db

__all__ = ["NoiseContribution", "edge_noise_breakdown", "mapping_report"]


@dataclass(frozen=True)
class NoiseContribution:
    """One aggressor's share of a victim edge's noise."""

    aggressor_edge: int
    aggressor_label: str
    coupling_linear: float
    relative_db: float  # noise power relative to the victim's signal
    share: float  # fraction of the victim's total noise


def _edge_label(cg, index: int) -> str:
    edge = cg.edges[index]
    return f"{cg.tasks[edge.src]}->{cg.tasks[edge.dst]}"


def edge_noise_breakdown(
    evaluator: MappingEvaluator,
    mapping: Union[Mapping, np.ndarray],
    victim_edge: int,
    top: Optional[int] = None,
) -> List[NoiseContribution]:
    """Per-aggressor noise contributions of one CG edge, strongest first."""
    cg = evaluator.cg
    if not (0 <= victim_edge < cg.n_edges):
        raise ConfigurationError(
            f"victim edge {victim_edge} outside 0..{cg.n_edges - 1}"
        )
    if isinstance(mapping, Mapping):
        assignment = mapping.assignment
    else:
        assignment = Mapping(cg, np.asarray(mapping), evaluator.n_tiles).assignment
    edges = cg.edge_array()
    mask = cg.serialization_mask()
    model = evaluator.model
    pairs = model.pair_indices(assignment[edges[:, 0]], assignment[edges[:, 1]])
    victim_pair = pairs[victim_edge]
    signal = model.signal_linear[victim_pair]
    couplings = model.coupling_linear[victim_pair, pairs].astype(np.float64)
    couplings[~mask[victim_edge]] = 0.0
    total = couplings.sum()
    order = np.argsort(couplings)[::-1]
    contributions = []
    for aggressor in order:
        value = float(couplings[aggressor])
        if value <= 0.0:
            break
        contributions.append(
            NoiseContribution(
                aggressor_edge=int(aggressor),
                aggressor_label=_edge_label(cg, int(aggressor)),
                coupling_linear=value,
                relative_db=linear_to_db(value / signal),
                share=value / total,
            )
        )
        if top is not None and len(contributions) >= top:
            break
    return contributions


def mapping_report(
    evaluator: MappingEvaluator,
    mapping: Union[Mapping, np.ndarray],
    noisy_edges: int = 3,
    top_aggressors: int = 3,
) -> str:
    """A designer-facing text report of one mapping.

    Per-edge metrics, followed by the dominant aggressors of the
    ``noisy_edges`` lowest-SNR edges.
    """
    cg = evaluator.cg
    metrics = evaluator.evaluate(mapping, with_edges=True)
    evaluator.evaluations -= 1  # inspection is not search effort
    edges_metrics = metrics.edges
    rows = []
    for index in range(cg.n_edges):
        rows.append(
            (
                _edge_label(cg, index),
                f"{edges_metrics.insertion_loss_db[index]:7.2f}",
                format_db(edges_metrics.snr_db[index]),
            )
        )
    lines = [
        format_table(
            ("edge", "loss dB", "SNR dB"),
            rows,
            title=(
                f"mapping report: {cg.name} — worst loss "
                f"{metrics.worst_insertion_loss_db:.2f} dB, worst SNR "
                f"{format_db(metrics.worst_snr_db).strip()} dB"
            ),
        )
    ]
    noisy = np.argsort(edges_metrics.snr_db)[:noisy_edges]
    for victim in noisy:
        if edges_metrics.snr_db[victim] >= SNR_CAP_DB:
            continue
        lines.append("")
        lines.append(
            f"noise into {_edge_label(cg, int(victim))} "
            f"(SNR {edges_metrics.snr_db[victim]:.2f} dB):"
        )
        for contribution in edge_noise_breakdown(
            evaluator, mapping, int(victim), top=top_aggressors
        ):
            lines.append(
                f"  {contribution.share:5.1%} from "
                f"{contribution.aggressor_label:<28s} "
                f"({contribution.relative_db:7.2f} dB rel. signal)"
            )
    return "\n".join(lines)
