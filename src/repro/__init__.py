"""PhoNoCMap reproduction: mapping design-space exploration for photonic NoCs.

A from-scratch Python implementation of *"PhoNoCMap: an Application Mapping
Tool for Photonic Networks-on-Chip"* (Fusella & Cilardo, DATE 2016): the
photonic physical-layer models (insertion loss and first-order crosstalk),
a fully pluggable architecture description (topologies, optical routers
compiled from waveguide drawings, routing algorithms), the mapping problem
formulation, and the design-space-exploration engine with the paper's three
optimization strategies plus extensions.

Quickstart::

    from repro import (
        MappingProblem, DesignSpaceExplorer, PhotonicNoC, mesh, load_benchmark,
    )

    cg = load_benchmark("vopd")
    network = PhotonicNoC(mesh(4, 4), router="crux")
    problem = MappingProblem(cg, network, objective="snr")
    result = DesignSpaceExplorer(problem).run("r-pbla", budget=20_000, seed=1)
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.appgraph import (
    BENCHMARK_NAMES,
    CommunicationEdge,
    CommunicationGraph,
    all_benchmarks,
    grid_side_for,
    load_benchmark,
)
from repro.core import (
    DesignSpaceExplorer,
    GeneticAlgorithm,
    Mapping,
    MappingEvaluator,
    MappingMetrics,
    MappingProblem,
    MappingStrategy,
    Objective,
    OptimizationResult,
    PriorityBasedListAlgorithm,
    RandomSearch,
    SimulatedAnnealing,
    TabuSearch,
    available_strategies,
    create_strategy,
    register_strategy,
)
from repro.models import (
    CouplingModel,
    PowerBudget,
    required_laser_power_dbm,
    worst_case_insertion_loss_db,
)
from repro.noc import (
    Floorplan,
    PhotonicNoC,
    XYRouting,
    YXRouting,
    line,
    mesh,
    ring,
    torus,
)
from repro.photonics import PhysicalParameters, default_library
from repro.router import (
    RouterLayout,
    RouterSpec,
    available_routers,
    build_router,
    compile_layout,
    register_router,
)

__version__ = "1.0.0"

__all__ = [
    "BENCHMARK_NAMES",
    "CommunicationEdge",
    "CommunicationGraph",
    "all_benchmarks",
    "grid_side_for",
    "load_benchmark",
    "DesignSpaceExplorer",
    "GeneticAlgorithm",
    "Mapping",
    "MappingEvaluator",
    "MappingMetrics",
    "MappingProblem",
    "MappingStrategy",
    "Objective",
    "OptimizationResult",
    "PriorityBasedListAlgorithm",
    "RandomSearch",
    "SimulatedAnnealing",
    "TabuSearch",
    "available_strategies",
    "create_strategy",
    "register_strategy",
    "CouplingModel",
    "PowerBudget",
    "required_laser_power_dbm",
    "worst_case_insertion_loss_db",
    "Floorplan",
    "PhotonicNoC",
    "XYRouting",
    "YXRouting",
    "line",
    "mesh",
    "ring",
    "torus",
    "PhysicalParameters",
    "default_library",
    "RouterLayout",
    "RouterSpec",
    "available_routers",
    "build_router",
    "compile_layout",
    "register_router",
    "__version__",
]
