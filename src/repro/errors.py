"""Exception hierarchy for the PhoNoCMap reproduction.

Every error raised on purpose by this package derives from
:class:`ReproError`, so callers can catch the whole family with one clause
while still being able to discriminate the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An input, parameter set or architecture description is invalid."""


class LayoutError(ConfigurationError):
    """A router waveguide layout cannot be compiled into a netlist."""


class TopologyError(ConfigurationError):
    """A topology description is malformed or unsupported."""


class RoutingError(ReproError):
    """A routing algorithm cannot produce a path for a tile pair."""


class ModelError(ReproError):
    """A physical-model computation received inconsistent inputs."""


class MappingError(ReproError):
    """A task-to-tile mapping violates the problem constraints."""


class OptimizationError(ReproError):
    """An optimization strategy was configured or used incorrectly."""
