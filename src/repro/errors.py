"""Exception hierarchy for the PhoNoCMap reproduction.

Every error raised on purpose by this package derives from
:class:`ReproError`, so callers can catch the whole family with one clause
while still being able to discriminate the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An input, parameter set or architecture description is invalid."""


class LayoutError(ConfigurationError):
    """A router waveguide layout cannot be compiled into a netlist."""


class TopologyError(ConfigurationError):
    """A topology description is malformed or unsupported."""


class RoutingError(ReproError):
    """A routing algorithm cannot produce a path for a tile pair."""


class ModelError(ReproError):
    """A physical-model computation received inconsistent inputs."""


class MappingError(ReproError):
    """A task-to-tile mapping violates the problem constraints."""


class OptimizationError(ReproError):
    """An optimization strategy was configured or used incorrectly."""


class ExecutorError(ReproError):
    """An execution backend is misconfigured or cannot serve tasks."""


class ProtocolError(ExecutorError):
    """A wire frame or payload violates the protocol's size/format limits.

    Raised when a peer sends a frame longer than the configured cap, a
    payload that decompresses past the payload cap, or a reply that
    cannot be decoded at all — the cases where the only safe reaction
    is to drop the connection (a hostile or corrupted peer must not be
    able to make the scheduler allocate unbounded memory).
    """


class ServiceError(ReproError):
    """A mapping-service request is invalid or cannot be admitted.

    Carries an HTTP-style ``status`` (400 for malformed or over-budget
    requests, 429 when the admission queue is full, 500 for internal
    failures) and a short machine-readable ``kind`` so clients can
    discriminate failure modes without parsing the message.
    """

    def __init__(self, message: str, status: int = 400, kind: str = "bad_request"):
        super().__init__(message)
        self.status = int(status)
        self.kind = str(kind)
