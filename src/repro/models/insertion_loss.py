"""Worst-case insertion loss model (paper §II-C).

"The worst-case insertion loss IL_wc [is] the sum of all the losses in each
hop along a path between a source and a destination" — the per-element
losses are accumulated while elaborating :class:`NetworkPath` objects, so
this module is a thin, well-named API over those records plus the
mapping-level worst case of eq. (3).

Convention: losses are *negative* dB values. The worst case over a set of
communications is therefore the *minimum* (most negative) path loss, and a
mapping optimizer maximizes it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.errors import MappingError
from repro.noc.network import PhotonicNoC

__all__ = [
    "path_insertion_loss_db",
    "edge_insertion_losses_db",
    "worst_case_insertion_loss_db",
]


def path_insertion_loss_db(network: PhotonicNoC, src_tile: int, dst_tile: int) -> float:
    """Insertion loss (dB, negative) of the path between two tiles."""
    return network.path(src_tile, dst_tile).loss_db


def edge_insertion_losses_db(
    network: PhotonicNoC,
    edges: Tuple[Tuple[int, int], ...],
    mapping: Mapping[int, int],
) -> Dict[Tuple[int, int], float]:
    """Per-CG-edge insertion loss under a task-to-tile mapping.

    ``edges`` are (source task, destination task) pairs and ``mapping``
    assigns each task to a tile.
    """
    losses: Dict[Tuple[int, int], float] = {}
    for src_task, dst_task in edges:
        try:
            src_tile = mapping[src_task]
            dst_tile = mapping[dst_task]
        except KeyError as exc:
            raise MappingError(f"task {exc.args[0]!r} is not mapped") from None
        losses[(src_task, dst_task)] = path_insertion_loss_db(
            network, src_tile, dst_tile
        )
    return losses


def worst_case_insertion_loss_db(
    network: PhotonicNoC,
    edges: Tuple[Tuple[int, int], ...],
    mapping: Mapping[int, int],
) -> float:
    """IL_wc of eq. (3): the most negative loss over all CG edges."""
    losses = edge_insertion_losses_db(network, edges, mapping)
    if not losses:
        raise MappingError("the communication graph has no edges")
    return min(losses.values())
