"""Physical-layer models: insertion loss, crosstalk/SNR, power budget.

Box (3) of the PhoNoCMap environment (paper Fig. 1): the built-in
analytical models estimating worst-case power loss and crosstalk noise for
any architecture assembled by :mod:`repro.noc`.
"""

from repro.models.coupling import (
    MODEL_VERSION,
    CouplingModel,
    clear_model_cache,
    get_model_cache_dir,
    set_model_cache_dir,
)
from repro.models.crosstalk import (
    WALK_LOSS_CUTOFF_LINEAR,
    aggregate_noise_linear,
    emission_walk,
    pairwise_coupling_linear,
    snr_db,
)
from repro.models.insertion_loss import (
    edge_insertion_losses_db,
    path_insertion_loss_db,
    worst_case_insertion_loss_db,
)
from repro.models.power import (
    PowerBudget,
    is_feasible,
    max_tolerable_loss_db,
    required_laser_power_dbm,
)

__all__ = [
    "MODEL_VERSION",
    "CouplingModel",
    "clear_model_cache",
    "get_model_cache_dir",
    "set_model_cache_dir",
    "WALK_LOSS_CUTOFF_LINEAR",
    "aggregate_noise_linear",
    "emission_walk",
    "pairwise_coupling_linear",
    "snr_db",
    "edge_insertion_losses_db",
    "path_insertion_loss_db",
    "worst_case_insertion_loss_db",
    "PowerBudget",
    "is_feasible",
    "max_tolerable_loss_db",
    "required_laser_power_dbm",
]
