"""First-order crosstalk model — reference implementation (paper §II-C).

This module computes the crosstalk noise one communication (the *victim*)
receives from another (the *aggressor*), walking each aggressor emission
forward through the network exactly as described in DESIGN.md §3:

1. every element traversal of the aggressor path produces the emissions of
   eqs. (1b)/(1d)/(1f)/(1h)/(1j) — a coefficient and an exit port;
2. a victim whose path *leaves the emitting element through the emission
   port* receives the noise directly (it co-propagates from there on,
   suffering exactly the victim's remaining losses);
3. otherwise the noise propagates passively forward along its waveguide —
   through subsequent elements, router ports and links, never turning.
   It joins a victim at the first element both share, and only if they
   *co-enter* it through the same input port: from there the noise follows
   the victim's configured route (straight through OFF rings, around the
   victim's ON turns) to the victim's detector. If the victim's first
   shared element is entered through a different port, the victim is
   shielded: either the victim merely crosses the noise's guide, or the
   victim's ON microring sits on the guide and diverts the arriving noise
   through its add-to-through path, out of the victim's channel — the
   residual that leaks past an ON ring is a second-order ``Ki*Kj`` term,
   which the paper's model sets to zero;
4. each (emission, victim) pair is counted once — at the first shared
   element.

The paper's simplifications hold: first-order only (noise never spawns
noise), no attenuation inside the generating switch, add-port resonant
noise and reflections neglected.

This is the *reference* implementation: clear, per-pair, pure Python. The
vectorized all-pairs matrices used by the optimizer live in
:mod:`repro.models.coupling` and are cross-validated against this module in
the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.noc.network import PhotonicNoC
from repro.noc.paths import NetworkPath
from repro.photonics.elements import straight_output, traversal_emissions
from repro.photonics.units import db_to_linear

__all__ = [
    "WALK_LOSS_CUTOFF_LINEAR",
    "emission_walk",
    "pairwise_coupling_linear",
    "aggregate_noise_linear",
    "snr_db",
]

#: Noise walks stop once attenuated below this linear factor (-70 dB):
#: contributions beyond it are negligible against Kc = -40 dB. The cutoff
#: also terminates walks that orbit a torus ring forever.
WALK_LOSS_CUTOFF_LINEAR = 1e-7

#: Hard step cap for emission walks (safety net against wiring cycles with
#: pathological zero-loss parameters).
_MAX_WALK_STEPS = 100_000


def emission_walk(
    network: PhotonicNoC, element: int, out_port: int
) -> Iterator[Tuple[int, int, int, float]]:
    """Walk noise leaving ``(element, out_port)`` forward through the network.

    Yields ``(element, in_port, out_port, loss_before_linear)`` for every
    element the noise passes *after* the emitting one, where
    ``loss_before_linear`` is the accumulated passive attenuation strictly
    before entering that element.
    """
    walk_loss = 1.0
    position = network.follow(element, out_port)
    steps = 0
    while position is not None and walk_loss > WALK_LOSS_CUTOFF_LINEAR:
        steps += 1
        if steps > _MAX_WALK_STEPS:
            break
        current, in_port = position
        info = network.element(current)
        exit_port = straight_output(info.kind, in_port)
        yield current, in_port, exit_port, walk_loss
        walk_loss *= db_to_linear(
            _passive_loss_db(network, current, in_port)
        )
        position = network.follow(current, exit_port)


def _passive_loss_db(network: PhotonicNoC, element: int, in_port: int) -> float:
    from repro.photonics.elements import passive_loss_db

    info = network.element(element)
    return passive_loss_db(info.kind, in_port, network.params, info.length_cm)


def pairwise_coupling_linear(
    network: PhotonicNoC, victim: NetworkPath, aggressor: NetworkPath
) -> float:
    """Noise power the victim's detector receives from the aggressor.

    Expressed relative to the aggressor's injected power; both paths are
    assumed simultaneously active. A path never interferes with itself.
    """
    if victim.src == aggressor.src and victim.dst == aggressor.dst:
        return 0.0
    params = network.params
    # Where does the victim leave each element, and how does it enter it?
    # First traversal wins on both maps: a path that re-enters an element
    # (torus wraps, detour routings) meets the noise at its *first* pass
    # — the "credit once, at the first shared encounter" rule of item 4
    # above, and the semantics of the vectorized builder
    # (:mod:`repro.models.coupling`), which this module cross-validates.
    victim_exits: Dict[Tuple[int, int], int] = {}
    victim_entries: Dict[int, Tuple[int, int]] = {}
    for position, step in enumerate(victim.traversals):
        victim_exits.setdefault((step.element, step.out_port), position)
        victim_entries.setdefault(step.element, (position, step.in_port))

    total = 0.0
    for index, step in enumerate(aggressor.traversals):
        info = network.element(step.element)
        emissions = traversal_emissions(
            info.kind, step.in_port, step.out_port, step.state, params
        )
        if not emissions:
            continue
        power_at_input = aggressor.cum_in_linear[index]
        for emission in emissions:
            k_linear = db_to_linear(emission.coefficient_db)
            base = k_linear * power_at_input
            # Join at the emitting element itself: the victim leaves it
            # through the emission port; no attenuation inside the
            # generating switch.
            position = victim_exits.get((step.element, emission.out_port))
            if position is not None:
                total += base * victim.total_linear / victim.cum_out_linear[position]
                continue
            # Otherwise walk the noise forward. It can only join the victim
            # at the first shared element, and only by co-entering it.
            for element, in_port, _exit_port, loss_before in emission_walk(
                network, step.element, emission.out_port
            ):
                entry = victim_entries.get(element)
                if entry is None:
                    continue
                position, victim_in = entry
                if victim_in == in_port:
                    # Co-entering: from here the noise follows the victim's
                    # configured route and losses.
                    total += (
                        base
                        * loss_before
                        * victim.total_linear
                        / victim.cum_in_linear[position]
                    )
                # Either way the first shared element decides: a mismatch
                # means the victim crosses the guide or its ON ring diverts
                # the noise (second-order residual, set to zero).
                break
    return total


def aggregate_noise_linear(
    network: PhotonicNoC,
    victim: NetworkPath,
    aggressors: Iterable[NetworkPath],
) -> float:
    """Total noise at the victim's detector from several aggressors."""
    return sum(
        pairwise_coupling_linear(network, victim, aggressor)
        for aggressor in aggressors
    )


def snr_db(signal_linear: float, noise_linear: float) -> float:
    """``10 log10(P_S / P_N)`` (paper §II-C); +inf when noise is zero."""
    if noise_linear <= 0.0:
        return float("inf")
    from repro.photonics.units import linear_to_db

    return linear_to_db(signal_linear / noise_linear)
