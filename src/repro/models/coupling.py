"""Vectorized all-pairs coupling matrices for one architecture.

Evaluating the worst-case SNR of a mapping needs, for every ordered pair of
tile-to-tile paths, the noise the aggressor injects into the victim. This
module precomputes that once per architecture:

* ``signal_linear[p]`` — end-to-end transmission of path ``p``;
* ``insertion_loss_db[p]`` — the same in dB (eq. 3's per-edge term);
* ``coupling_linear[v, a]`` — noise power at the detector of victim path
  ``v`` per unit power injected by aggressor path ``a`` (the first-order
  walk model of :mod:`repro.models.crosstalk`, applied to all pairs at
  once via an element exit index).

Paths are indexed ``p = src * n_tiles + dst``. With the matrices in hand, a
mapping evaluation is a handful of numpy gathers (see
:class:`repro.core.evaluator.MappingEvaluator`), which is what makes the
paper's 100,000-random-mappings experiment and the optimizer loops cheap.

Because the walk model zeroes every pair of paths that never co-enter an
element (and attenuates walks below ``WALK_LOSS_CUTOFF_LINEAR`` to exact
zero), a substantial fraction of ``coupling_linear`` is exactly ``0.0`` —
around 55-77 % on the meshes of the paper's case studies. :meth:`CouplingModel.csr`
exposes the same physics as a compressed-sparse-row triplet
(``indptr``/``indices``/``values``, victim-major, columns sorted), which
the evaluator's sparse backend streams instead of gathering from the
dense ``O(n_pairs^2)`` matrix, and which shared-memory exports ship to
pool workers in place of the (equally large) dense transpose.

The matrices encode pure physics: *every* pair of simultaneously active
paths couples. Which pairs can actually be simultaneously active (the
transmitter/receiver serialization of DESIGN.md §3) is decided at the
communication-graph level by the evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.models.crosstalk import WALK_LOSS_CUTOFF_LINEAR, _MAX_WALK_STEPS
from repro.noc.network import PhotonicNoC
from repro.photonics.elements import (
    ElementKind,
    passive_loss_db,
    straight_output,
    traversal_emissions,
)
from repro.photonics.units import db_to_linear

__all__ = [
    "CouplingCSR",
    "CouplingModel",
    "SharedModelSpec",
    "SharedCouplingModel",
    "clear_model_cache",
]

_CACHE: Dict[str, "CouplingModel"] = {}


@dataclass(frozen=True)
class CouplingCSR:
    """Compressed-sparse-row view of the coupling matrix.

    Victim-major: row ``v`` holds the nonzero aggressor columns of
    ``coupling_linear[v, :]`` in ascending column order, so one row is one
    contiguous ``values[indptr[v]:indptr[v + 1]]`` /
    ``indices[indptr[v]:indptr[v + 1]]`` slice. ``nonzero_row_starts``
    pre-splits the ``indptr`` walk for ``numpy.add.reduceat`` (which
    mishandles empty segments): it lists the start offset of every
    non-empty row, aligned with ``nonzero_rows``.
    """

    indptr: np.ndarray  # (n_pairs + 1,) int64
    indices: np.ndarray  # (nnz,) int32, column-sorted within each row
    values: np.ndarray  # (nnz,) coupling dtype
    nonzero_rows: np.ndarray  # (n_nonzero_rows,) int64
    nonzero_row_starts: np.ndarray  # (n_nonzero_rows,) int64

    @property
    def nnz(self) -> int:
        """Number of stored (nonzero) couplings."""
        return int(self.indices.shape[0])

    @property
    def n_rows(self) -> int:
        """Number of victim rows (``n_pairs``)."""
        return int(self.indptr.shape[0] - 1)

    @property
    def nbytes(self) -> int:
        """Bytes of the three CSR arrays (the shm-export footprint)."""
        return self.indptr.nbytes + self.indices.nbytes + self.values.nbytes

    def row_dots(self, weights: np.ndarray, out=None, scratch=None) -> np.ndarray:
        """Dot every CSR row with a dense ``(n_pairs,)`` weight vector.

        The workhorse of the sparse noise contraction and of the delta
        evaluator's row sums: returns ``r[q] = sum_k values[q, k] *
        weights[columns[q, k]]`` for every row ``q``, streaming the CSR
        arrays once (``O(nnz)``) instead of gathering across the dense
        matrix. The per-row reduction order is fixed (sequential within
        each row slice), so results do not depend on batching or worker
        count. ``out``/``scratch`` allow callers in hot loops to reuse
        ``(n_rows,)`` / ``(nnz,)`` buffers.
        """
        if out is None:
            out = np.zeros(self.n_rows, dtype=np.float64)
        else:
            out[:] = 0.0
        if self.nnz == 0:
            return out
        if scratch is None:
            scratch = np.empty(self.nnz, dtype=np.float64)
        np.take(weights, self.indices, out=scratch)
        np.multiply(scratch, self.values, out=scratch)
        out[self.nonzero_rows] = np.add.reduceat(
            scratch, self.nonzero_row_starts
        )
        return out


def _build_csr(coupling: np.ndarray) -> CouplingCSR:
    """Victim-major CSR of a dense coupling matrix.

    Built block-wise so the transient ``numpy.nonzero`` index arrays stay
    small relative to the matrix itself (on a 12x12 mesh the dense matrix
    is ~3.4 GB; a whole-matrix ``nonzero`` would add ~2 GB of transient
    int64 coordinates on top).
    """
    n_rows = coupling.shape[0]
    counts = np.count_nonzero(coupling, axis=1)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    nnz = int(indptr[-1])
    indices = np.empty(nnz, dtype=np.int32)
    values = np.empty(nnz, dtype=coupling.dtype)
    block = max(1, (8 << 20) // max(1, coupling.shape[1] * 8))
    for start in range(0, n_rows, block):
        stop = min(start + block, n_rows)
        rows, cols = np.nonzero(coupling[start:stop])
        lo, hi = indptr[start], indptr[stop]
        indices[lo:hi] = cols
        values[lo:hi] = coupling[start + rows, cols]
    nonzero_rows = np.nonzero(counts)[0].astype(np.int64)
    return CouplingCSR(
        indptr=indptr,
        indices=indices,
        values=values,
        nonzero_rows=nonzero_rows,
        nonzero_row_starts=indptr[:-1][nonzero_rows],
    )


@dataclass(frozen=True)
class SharedModelSpec:
    """Pickle-friendly handle describing an exported coupling model.

    Carries everything a worker process needs to attach the parent's
    matrices without rebuilding them: the shared-memory segment name, the
    layout parameters, and the process-cache key under which the attached
    model should be registered so that :meth:`CouplingModel.for_network`
    finds it transparently.

    ``csr_nnz >= 0`` means the segment also carries the CSR triplet
    (``indptr``/``indices``/``values``) of the coupling matrix, so workers
    serving the sparse evaluator backend attach the sparse arrays instead
    of rebuilding them from the dense matrix. Sparse-flavoured exports
    drop the dense transpose (``with_transpose=False``): the delta
    evaluator consumes CSR rows in its place, which is what shrinks the
    per-export footprint.
    """

    shm_name: str
    cache_key: str
    n_tiles: int
    dtype: str
    with_transpose: bool
    csr_nnz: int = -1

    @property
    def n_pairs(self) -> int:
        return self.n_tiles * self.n_tiles

    @property
    def with_csr(self) -> bool:
        """Whether the segment carries the CSR triplet."""
        return self.csr_nnz >= 0

    def _layout(self):
        """(name, dtype, shape, offset) for each array in the segment."""
        dtype = np.dtype(self.dtype)
        n_pairs = self.n_pairs
        layout = []
        offset = 0
        parts = [
            ("signal_linear", np.dtype(np.float64), (n_pairs,)),
            ("insertion_loss_db", np.dtype(np.float64), (n_pairs,)),
            ("coupling_linear", dtype, (n_pairs, n_pairs)),
        ]
        if self.with_transpose:
            parts.append(("coupling_linear_T", dtype, (n_pairs, n_pairs)))
        if self.with_csr:
            parts.append(("csr_indptr", np.dtype(np.int64), (n_pairs + 1,)))
            parts.append(("csr_indices", np.dtype(np.int32), (self.csr_nnz,)))
            parts.append(("csr_values", dtype, (self.csr_nnz,)))
        for name, dt, shape in parts:
            layout.append((name, dt, shape, offset))
            offset += dt.itemsize * int(np.prod(shape))
        return layout, offset

    @property
    def nbytes(self) -> int:
        return self._layout()[1]


class SharedCouplingModel:
    """Owner-side lifecycle handle for an exported coupling model.

    Created by :meth:`CouplingModel.export_shared`; the owner keeps it
    alive while worker processes are attached and calls :meth:`close`
    (which also unlinks) once the pool has shut down. Usable as a context
    manager.
    """

    def __init__(self, spec: SharedModelSpec, shm) -> None:
        self.spec = spec
        self._shm = shm

    def close(self) -> None:
        """Detach and remove the segment (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedCouplingModel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _attach_segment(name: str):
    """Attach an existing shared-memory segment without claiming ownership.

    Python < 3.13 registers every attached segment with the resource
    tracker as if the attacher owned it: under ``spawn`` the attacher's
    own tracker would unlink the segment (with a warning) when the
    attacher exits, and under ``fork`` — where the tracker process is
    shared with the exporter — an unregister-after-attach workaround
    would cancel the *exporter's* registration and make its eventual
    unlink double-unregister. Suppressing registration for the duration
    of the attach is correct in both modes: only the exporting process
    ever tracks (and unlinks) the segment.
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class CouplingModel:
    """Precomputed signal/coupling matrices for a :class:`PhotonicNoC`."""

    def __init__(self, network: PhotonicNoC, dtype=np.float64) -> None:
        self.network = network
        self.n_tiles = network.topology.n_tiles
        self.n_pairs = self.n_tiles * self.n_tiles
        self.signal_linear = np.zeros(self.n_pairs, dtype=np.float64)
        self.insertion_loss_db = np.full(self.n_pairs, np.nan, dtype=np.float64)
        self.coupling_linear = np.zeros((self.n_pairs, self.n_pairs), dtype=dtype)
        self._coupling_T: Optional[np.ndarray] = None
        self._csr: Optional[CouplingCSR] = None
        self._nnz: Optional[int] = None
        self._shared_handles: Dict[Tuple[bool, bool], "SharedCouplingModel"] = {}
        self._build()

    @property
    def coupling_linear_T(self) -> np.ndarray:
        """Contiguous transpose of :attr:`coupling_linear`, built lazily.

        The delta evaluator gathers ``coupling_linear[v, a]`` with ``a``
        fixed and ``v`` running over a victim set; on the row-major
        ``coupling_linear`` that walk is one cache miss per element, on
        the transpose it stays inside one row. Only delta users pay the
        doubled memory.
        """
        if self._coupling_T is None:
            self._coupling_T = np.ascontiguousarray(self.coupling_linear.T)
        return self._coupling_T

    def csr(self) -> CouplingCSR:
        """Victim-major CSR triplet of :attr:`coupling_linear`, built lazily.

        The sparse evaluator backend streams these arrays instead of
        gathering the dense ``(M, E, E)`` grid, and the delta evaluator
        consumes the rows in place of dense-transpose column walks; only
        sparse users pay the extra ``O(nnz)`` memory. Worker processes
        attaching a CSR-flavoured shared export get read-only views
        instead of a rebuild.
        """
        if self._csr is None:
            self._csr = _build_csr(self.coupling_linear)
        return self._csr

    @property
    def nnz(self) -> int:
        """Number of nonzero couplings (one matrix scan, cached).

        Deliberately cheaper than :meth:`csr`: ``backend="auto"``
        evaluators read this on every construction, and most of them
        resolve to the dense backend without ever needing the CSR arrays.
        """
        if self._csr is not None:
            return self._csr.nnz
        if self._nnz is None:
            self._nnz = int(np.count_nonzero(self.coupling_linear))
        return self._nnz

    @property
    def density(self) -> float:
        """Nonzero fraction of the coupling matrix (0.0 to 1.0).

        The statistic behind the evaluator's ``backend="auto"`` rule: the
        sparse contraction streams ``nnz = density * n_pairs^2`` values
        per evaluated mapping, the dense one gathers ``E^2``, so sparsity
        only pays off once the communication graph is edge-dense enough
        (see :meth:`repro.core.evaluator.MappingEvaluator`).
        """
        size = float(self.n_pairs * self.n_pairs)
        return self.nnz / size if size else 0.0

    # -- indexing ----------------------------------------------------------------

    def pair_index(self, src_tile: int, dst_tile: int) -> int:
        """Flat index of the ordered tile pair."""
        return src_tile * self.n_tiles + dst_tile

    def pair_indices(self, src_tiles: np.ndarray, dst_tiles: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`pair_index`."""
        return src_tiles * self.n_tiles + dst_tiles

    # -- construction --------------------------------------------------------------

    def _build(self) -> None:
        network = self.network
        params = network.params
        paths = network.all_paths()

        # Exit index: (element, out_port) -> [(pair, position), ...] for the
        # direct joins at the emitting element. Entry index: element ->
        # [(pair, position, in_port), ...] for the walk joins (a walk joins
        # a victim only by co-entering the first shared element).
        exit_index: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        entry_index: Dict[int, List[Tuple[int, int, int]]] = {}
        pair_paths: Dict[int, object] = {}
        for (src, dst), path in paths.items():
            pair = self.pair_index(src, dst)
            pair_paths[pair] = path
            self.signal_linear[pair] = path.total_linear
            self.insertion_loss_db[pair] = path.loss_db
            for position, step in enumerate(path.traversals):
                exit_index.setdefault((step.element, step.out_port), []).append(
                    (pair, position)
                )
                entry_index.setdefault(step.element, []).append(
                    (pair, position, step.in_port)
                )

        # Per-element passive linear losses, cached by (element, in_port).
        passive_cache: Dict[Tuple[int, int], float] = {}

        def passive_linear(element: int, in_port: int) -> float:
            key = (element, in_port)
            value = passive_cache.get(key)
            if value is None:
                info = network.element(element)
                value = db_to_linear(
                    passive_loss_db(info.kind, in_port, params, info.length_cm)
                )
                passive_cache[key] = value
            return value

        emission_cache: Dict[Tuple[ElementKind, int, int, object], tuple] = {}

        def emissions_of(kind, in_port, out_port, state):
            key = (kind, in_port, out_port, state)
            value = emission_cache.get(key)
            if value is None:
                value = tuple(
                    (db_to_linear(e.coefficient_db), e.out_port)
                    for e in traversal_emissions(kind, in_port, out_port, state, params)
                )
                emission_cache[key] = value
            return value

        coupling = self.coupling_linear
        follow = network.wiring.get
        elements = network.elements

        for (src, dst), path in paths.items():
            aggressor_pair = self.pair_index(src, dst)
            cum_in = path.cum_in_linear
            for index, step in enumerate(path.traversals):
                info = elements[step.element]
                if info.kind is ElementKind.WAVEGUIDE:
                    continue
                emitted = emissions_of(info.kind, step.in_port, step.out_port, step.state)
                if not emitted:
                    continue
                power_at_input = cum_in[index]
                for k_linear, emission_port in emitted:
                    base = k_linear * power_at_input
                    credited = set()
                    credited.add(aggressor_pair)
                    # Join at the emitting element: no loss inside the
                    # generating switch.
                    for victim_pair, position in exit_index.get(
                        (step.element, emission_port), ()
                    ):
                        if victim_pair in credited:
                            continue
                        credited.add(victim_pair)
                        victim = pair_paths[victim_pair]
                        coupling[victim_pair, aggressor_pair] += (
                            base
                            * victim.total_linear
                            / victim.cum_out_linear[position]
                        )
                    # Walk forward until attenuated away. The first shared
                    # element decides for each victim: a co-entering victim
                    # receives the noise (it follows the victim's configured
                    # route from there); any other encounter shields the
                    # victim (crossing guide, or its ON ring diverts the
                    # noise — a second-order residual the model zeroes).
                    walk_loss = 1.0
                    position_next = follow((step.element, emission_port))
                    steps = 0
                    while (
                        position_next is not None
                        and walk_loss > WALK_LOSS_CUTOFF_LINEAR
                        and steps < _MAX_WALK_STEPS
                    ):
                        steps += 1
                        element, in_port = position_next
                        for victim_pair, position, victim_in in entry_index.get(
                            element, ()
                        ):
                            if victim_pair in credited:
                                continue
                            credited.add(victim_pair)
                            if victim_in != in_port:
                                continue
                            victim = pair_paths[victim_pair]
                            coupling[victim_pair, aggressor_pair] += (
                                base
                                * walk_loss
                                * victim.total_linear
                                / victim.cum_in_linear[position]
                            )
                        walk_loss *= passive_linear(element, in_port)
                        position_next = follow(
                            (element, straight_output(elements[element].kind, in_port))
                        )

    # -- multi-process sharing ---------------------------------------------------------

    def export_shared(
        self, with_transpose: bool = True, with_csr: bool = False
    ) -> SharedCouplingModel:
        """Copy the read-only matrices into a shared-memory segment.

        Returns the owner-side handle whose :attr:`~SharedCouplingModel.spec`
        is what worker processes pass to :meth:`attach_shared`. With
        ``with_transpose`` (the default) the contiguous transpose used by
        the dense-mode delta evaluator is exported too, so workers never
        build their own copy; ``with_csr`` ships the CSR triplet instead,
        which is what the sparse backend's workers attach (a CSR export
        is typically several times smaller than the transpose it
        replaces). The owner must keep the handle alive while workers are
        attached and :meth:`~SharedCouplingModel.close` it afterwards.

        Raises whatever :mod:`multiprocessing.shared_memory` raises when
        segments are unavailable (callers fall back to fork inheritance /
        per-worker rebuilds).
        """
        from multiprocessing import shared_memory

        csr = self.csr() if with_csr else None
        spec = SharedModelSpec(
            shm_name="",
            cache_key=self.cache_key(self.network, self.coupling_linear.dtype),
            n_tiles=self.n_tiles,
            dtype=self.coupling_linear.dtype.name,
            with_transpose=bool(with_transpose),
            csr_nnz=csr.nnz if csr is not None else -1,
        )
        layout, nbytes = spec._layout()
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        spec = SharedModelSpec(
            shm_name=shm.name,
            cache_key=spec.cache_key,
            n_tiles=spec.n_tiles,
            dtype=spec.dtype,
            with_transpose=spec.with_transpose,
            csr_nnz=spec.csr_nnz,
        )
        sources = {
            "signal_linear": self.signal_linear,
            "insertion_loss_db": self.insertion_loss_db,
            "coupling_linear": self.coupling_linear,
        }
        if with_transpose:
            sources["coupling_linear_T"] = self.coupling_linear_T
        if csr is not None:
            sources["csr_indptr"] = csr.indptr
            sources["csr_indices"] = csr.indices
            sources["csr_values"] = csr.values
        for name, dt, shape, offset in layout:
            view = np.ndarray(shape, dtype=dt, buffer=shm.buf, offset=offset)
            view[...] = sources[name]
        return SharedCouplingModel(spec, shm)

    def shared_export(self, backend: str = "dense") -> SharedCouplingModel:
        """The cached shared-memory export of this model for one backend.

        Copying the matrices into a segment costs real time on big
        architectures (~1.3 s for a 64-tile mesh's 2 x 134 MB), so each
        export flavour is created once per process and reused by every
        worker pool; the segments are unlinked by
        :func:`clear_model_cache` or at interpreter exit, whichever comes
        first. ``backend="dense"`` ships dense matrix + transpose (the
        historical layout); ``backend="sparse"`` ships dense matrix + CSR
        triplet — the transpose is dropped because sparse-mode delta
        evaluation consumes CSR rows instead.
        """
        flavor = (
            (False, True) if backend == "sparse" else (True, False)
        )  # (with_transpose, with_csr)
        handle = self._shared_handles.get(flavor)
        if handle is None or handle._shm is None:
            handle = self.export_shared(
                with_transpose=flavor[0], with_csr=flavor[1]
            )
            self._shared_handles[flavor] = handle
            _register_export(handle)
        return handle

    @classmethod
    def attach_shared(
        cls, spec: SharedModelSpec, network: PhotonicNoC
    ) -> "CouplingModel":
        """Attach to an exported model without rebuilding anything.

        The returned instance's matrices are read-only views on the shared
        segment; the segment handle is kept alive on the instance, and the
        exporting process owns unlinking. Intended to run in pool workers
        (see :mod:`repro.core.parallel`), which also seed the process
        cache so :meth:`for_network` resolves to the attached model.
        """
        shm = _attach_segment(spec.shm_name)
        layout, _ = spec._layout()
        model = cls.__new__(cls)
        model.network = network
        model.n_tiles = spec.n_tiles
        model.n_pairs = spec.n_pairs
        model._coupling_T = None
        model._csr = None
        model._nnz = None
        model._shared_handles = {}
        model._shm = shm  # keeps the mapping alive as long as the model
        csr_parts = {}
        for name, dt, shape, offset in layout:
            view = np.ndarray(shape, dtype=dt, buffer=shm.buf, offset=offset)
            view.flags.writeable = False
            if name == "coupling_linear_T":
                model._coupling_T = view
            elif name.startswith("csr_"):
                csr_parts[name[4:]] = view
            else:
                setattr(model, name, view)
        if csr_parts:
            # The reduceat split tables are derived, not shipped: O(n_pairs)
            # to rebuild versus extra segment layout complexity.
            indptr = csr_parts["indptr"]
            nonzero_rows = np.nonzero(indptr[1:] > indptr[:-1])[0].astype(
                np.int64
            )
            model._csr = CouplingCSR(
                indptr=indptr,
                indices=csr_parts["indices"],
                values=csr_parts["values"],
                nonzero_rows=nonzero_rows,
                nonzero_row_starts=indptr[:-1][nonzero_rows],
            )
        return model

    # -- caching ---------------------------------------------------------------------

    @staticmethod
    def cache_key(network: PhotonicNoC, dtype) -> str:
        """Process-cache key of the model for ``network`` at ``dtype``."""
        return f"{network.signature}|{np.dtype(dtype).name}"

    @classmethod
    def register(cls, key: str, model: "CouplingModel") -> None:
        """Seed the process cache (worker-side of shared-memory attach)."""
        _CACHE[key] = model

    @classmethod
    def for_network(
        cls, network: PhotonicNoC, dtype=np.float64, use_cache: bool = True
    ) -> "CouplingModel":
        """Build (or fetch from the process cache) the model for a network."""
        key = cls.cache_key(network, dtype)
        if use_cache:
            cached = _CACHE.get(key)
            if cached is not None:
                return cached
        model = cls(network, dtype=dtype)
        if use_cache:
            _CACHE[key] = model
        return model


#: Shared-memory exports owned by this process, unlinked at exit.
_EXPORTS: List[SharedCouplingModel] = []


def _register_export(handle: SharedCouplingModel) -> None:
    if not _EXPORTS:
        import atexit

        atexit.register(_close_exports)
    _EXPORTS.append(handle)


def _close_exports() -> None:
    """Unlink every shared-memory export this process still owns."""
    while _EXPORTS:
        _EXPORTS.pop().close()


def clear_model_cache() -> None:
    """Drop all cached coupling models and their shared exports."""
    _close_exports()
    _CACHE.clear()
