"""Vectorized all-pairs coupling matrices for one architecture.

Evaluating the worst-case SNR of a mapping needs, for every ordered pair of
tile-to-tile paths, the noise the aggressor injects into the victim. This
module precomputes that once per architecture:

* ``signal_linear[p]`` — end-to-end transmission of path ``p``;
* ``insertion_loss_db[p]`` — the same in dB (eq. 3's per-edge term);
* ``coupling_linear[v, a]`` — noise power at the detector of victim path
  ``v`` per unit power injected by aggressor path ``a`` (the first-order
  walk model of :mod:`repro.models.crosstalk`, applied to all pairs at
  once via an element exit index).

Paths are indexed ``p = src * n_tiles + dst``. With the matrices in hand, a
mapping evaluation is a handful of numpy gathers (see
:class:`repro.core.evaluator.MappingEvaluator`), which is what makes the
paper's 100,000-random-mappings experiment and the optimizer loops cheap.

Because the walk model zeroes every pair of paths that never co-enter an
element (and attenuates walks below ``WALK_LOSS_CUTOFF_LINEAR`` to exact
zero), a substantial fraction of ``coupling_linear`` is exactly ``0.0`` —
around 55-77 % on the meshes of the paper's case studies. :meth:`CouplingModel.csr`
exposes the same physics as a compressed-sparse-row triplet
(``indptr``/``indices``/``values``, victim-major, columns sorted), which
the evaluator's sparse backend streams instead of gathering from the
dense ``O(n_pairs^2)`` matrix, and which shared-memory exports ship to
pool workers in place of the (equally large) dense transpose.

The matrices encode pure physics: *every* pair of simultaneously active
paths couples. Which pairs can actually be simultaneously active (the
transmitter/receiver serialization of DESIGN.md §3) is decided at the
communication-graph level by the evaluator.

Walk-once vectorized build (PR 5)
---------------------------------
The forward emission walk from an ``(element, out_port)`` channel depends
only on the network, never on the aggressor injecting into it. The
builder therefore resolves each unique emission channel **once** — walk
the noise forward, find every victim pair's *first* shared element, keep
the co-entering (port-matching) ones with their walk loss and cumulative
path divisors — and then reduces the whole build to vectorized gathers
plus one deterministic ``np.add.at`` scatter per aggressor block. The
scatter entries are ordered by emission instance (the legacy builder's
iteration order), and ``np.add.at`` applies them sequentially, so the
resulting matrices are **bit-identical** to the legacy per-aggressor walk
loop at both float64 and float32 — for any ``build_workers`` count, since
sharding splits *aggressor columns* and each column's accumulation order
is internal to its own aggressor. The legacy builder is kept
(``builder="legacy"``) as the cross-validation oracle for tests and
benches.

On top of the fast build sits an on-disk model cache
(:meth:`CouplingModel.for_network` with ``cache_dir=``, or the
process-wide :func:`set_model_cache_dir` default / the
``PHONOCMAP_MODEL_CACHE`` environment variable): finished models are
persisted as ``.npy`` files keyed by ``(network.signature, dtype,
MODEL_VERSION)`` and loaded back as read-only memory maps, so an
architecture sweep pays each build exactly once per machine. Corrupted or
stale entries fall back to a rebuild; unwritable cache directories fall
back to in-memory builds — the cache can slow nothing down and break
nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.models.crosstalk import WALK_LOSS_CUTOFF_LINEAR, _MAX_WALK_STEPS
from repro.noc.network import PhotonicNoC
from repro.photonics.elements import (
    ElementKind,
    passive_loss_db,
    straight_output,
    traversal_emissions,
)
from repro.photonics.units import db_to_linear

__all__ = [
    "MODEL_VERSION",
    "CouplingCSR",
    "CouplingModel",
    "SharedModelSpec",
    "SharedCouplingModel",
    "clear_model_cache",
    "set_model_cache_dir",
    "get_model_cache_dir",
]

#: Version of the build physics / on-disk layout. Bump whenever the
#: builder's numerics or the cache file format change: the disk key
#: includes it, so stale entries miss instead of resurrecting old physics.
MODEL_VERSION = 1

_CACHE: Dict[str, "CouplingModel"] = {}

#: Process-wide count of from-scratch model builds (every cache-miss
#: construction increments it). Observability for cache-effectiveness
#: assertions: a warm device-parameter sweep must leave it unchanged.
BUILD_COUNT = 0

#: Process-wide default directory of the on-disk model cache (``None``
#: disables it). Seeded from ``PHONOCMAP_MODEL_CACHE``; the CLI's
#: ``--model-cache`` and pool worker initializers override it.
_MODEL_CACHE_DIR: Optional[str] = os.environ.get("PHONOCMAP_MODEL_CACHE") or None


def set_model_cache_dir(path: Optional[str]) -> None:
    """Set the process-wide default on-disk model cache directory.

    ``None`` disables the default (explicit ``cache_dir=`` arguments
    still work). Worker initializers call this so pool workers resolve
    models from the same cache as their parent.
    """
    global _MODEL_CACHE_DIR
    _MODEL_CACHE_DIR = str(path) if path else None


def get_model_cache_dir() -> Optional[str]:
    """The process-wide default on-disk model cache directory (or None)."""
    return _MODEL_CACHE_DIR


@dataclass(frozen=True)
class CouplingCSR:
    """Compressed-sparse-row view of the coupling matrix.

    Victim-major: row ``v`` holds the nonzero aggressor columns of
    ``coupling_linear[v, :]`` in ascending column order, so one row is one
    contiguous ``values[indptr[v]:indptr[v + 1]]`` /
    ``indices[indptr[v]:indptr[v + 1]]`` slice. ``nonzero_row_starts``
    pre-splits the ``indptr`` walk for ``numpy.add.reduceat`` (which
    mishandles empty segments): it lists the start offset of every
    non-empty row, aligned with ``nonzero_rows``.
    """

    indptr: np.ndarray  # (n_pairs + 1,) int64
    indices: np.ndarray  # (nnz,) int32, column-sorted within each row
    values: np.ndarray  # (nnz,) coupling dtype
    nonzero_rows: np.ndarray  # (n_nonzero_rows,) int64
    nonzero_row_starts: np.ndarray  # (n_nonzero_rows,) int64

    @property
    def nnz(self) -> int:
        """Number of stored (nonzero) couplings."""
        return int(self.indices.shape[0])

    @property
    def n_rows(self) -> int:
        """Number of victim rows (``n_pairs``)."""
        return int(self.indptr.shape[0] - 1)

    @property
    def nbytes(self) -> int:
        """Bytes of the three CSR arrays (the shm-export footprint)."""
        return self.indptr.nbytes + self.indices.nbytes + self.values.nbytes

    def row_dots(self, weights: np.ndarray, out=None, scratch=None) -> np.ndarray:
        """Dot every CSR row with a dense ``(n_pairs,)`` weight vector.

        The workhorse of the sparse noise contraction and of the delta
        evaluator's row sums: returns ``r[q] = sum_k values[q, k] *
        weights[columns[q, k]]`` for every row ``q``, streaming the CSR
        arrays once (``O(nnz)``) instead of gathering across the dense
        matrix. The per-row reduction order is fixed (sequential within
        each row slice), so results do not depend on batching or worker
        count. ``out``/``scratch`` allow callers in hot loops to reuse
        ``(n_rows,)`` / ``(nnz,)`` buffers.
        """
        if out is None:
            out = np.zeros(self.n_rows, dtype=np.float64)
        else:
            out[:] = 0.0
        if self.nnz == 0:
            return out
        if scratch is None:
            scratch = np.empty(self.nnz, dtype=np.float64)
        np.take(weights, self.indices, out=scratch)
        np.multiply(scratch, self.values, out=scratch)
        out[self.nonzero_rows] = np.add.reduceat(
            scratch, self.nonzero_row_starts
        )
        return out


def _build_csr(coupling: np.ndarray) -> CouplingCSR:
    """Victim-major CSR of a dense coupling matrix.

    Built block-wise so the transient ``numpy.nonzero`` index arrays stay
    small relative to the matrix itself (on a 12x12 mesh the dense matrix
    is ~3.4 GB; a whole-matrix ``nonzero`` would add ~2 GB of transient
    int64 coordinates on top).
    """
    n_rows = coupling.shape[0]
    counts = np.count_nonzero(coupling, axis=1)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    nnz = int(indptr[-1])
    indices = np.empty(nnz, dtype=np.int32)
    values = np.empty(nnz, dtype=coupling.dtype)
    block = max(1, (8 << 20) // max(1, coupling.shape[1] * 8))
    for start in range(0, n_rows, block):
        stop = min(start + block, n_rows)
        rows, cols = np.nonzero(coupling[start:stop])
        lo, hi = indptr[start], indptr[stop]
        indices[lo:hi] = cols
        values[lo:hi] = coupling[start + rows, cols]
    nonzero_rows = np.nonzero(counts)[0].astype(np.int64)
    return CouplingCSR(
        indptr=indptr,
        indices=indices,
        values=values,
        nonzero_rows=nonzero_rows,
        nonzero_row_starts=indptr[:-1][nonzero_rows],
    )


@dataclass(frozen=True)
class SharedModelSpec:
    """Pickle-friendly handle describing an exported coupling model.

    Carries everything a worker process needs to attach the parent's
    matrices without rebuilding them: the shared-memory segment name, the
    layout parameters, and the process-cache key under which the attached
    model should be registered so that :meth:`CouplingModel.for_network`
    finds it transparently.

    ``csr_nnz >= 0`` means the segment also carries the CSR triplet
    (``indptr``/``indices``/``values``) of the coupling matrix, so workers
    serving the sparse evaluator backend attach the sparse arrays instead
    of rebuilding them from the dense matrix. Sparse-flavoured exports
    drop the dense transpose (``with_transpose=False``): the delta
    evaluator consumes CSR rows in its place, which is what shrinks the
    per-export footprint.

    ``nnz >= 0`` ships the coupling matrix's nonzero count, so a worker
    resolving a ``backend="auto"`` evaluator against an attached model
    reads it instead of re-scanning the whole shared matrix
    (``np.count_nonzero`` over ~134 MB at 8x8, once per worker).

    ``routes > 1`` marks a routed model: the pair axis is widened to
    ``n_tiles**2 * routes`` slots (``slot = pair * routes + route``), and
    the attached model scores joint mapping x routing candidates.
    """

    shm_name: str
    cache_key: str
    n_tiles: int
    dtype: str
    with_transpose: bool
    csr_nnz: int = -1
    nnz: int = -1
    routes: int = 1

    @property
    def n_pairs(self) -> int:
        return self.n_tiles * self.n_tiles * self.routes

    @property
    def with_csr(self) -> bool:
        """Whether the segment carries the CSR triplet."""
        return self.csr_nnz >= 0

    def _layout(self):
        """(name, dtype, shape, offset) for each array in the segment."""
        dtype = np.dtype(self.dtype)
        n_pairs = self.n_pairs
        layout = []
        offset = 0
        parts = [
            ("signal_linear", np.dtype(np.float64), (n_pairs,)),
            ("insertion_loss_db", np.dtype(np.float64), (n_pairs,)),
            ("coupling_linear", dtype, (n_pairs, n_pairs)),
        ]
        if self.with_transpose:
            parts.append(("coupling_linear_T", dtype, (n_pairs, n_pairs)))
        if self.with_csr:
            parts.append(("csr_indptr", np.dtype(np.int64), (n_pairs + 1,)))
            parts.append(("csr_indices", np.dtype(np.int32), (self.csr_nnz,)))
            parts.append(("csr_values", dtype, (self.csr_nnz,)))
        for name, dt, shape in parts:
            layout.append((name, dt, shape, offset))
            offset += dt.itemsize * int(np.prod(shape))
        return layout, offset

    @property
    def nbytes(self) -> int:
        return self._layout()[1]


class SharedCouplingModel:
    """Owner-side lifecycle handle for an exported coupling model.

    Created by :meth:`CouplingModel.export_shared`; the owner keeps it
    alive while worker processes are attached and calls :meth:`close`
    (which also unlinks) once the pool has shut down. Usable as a context
    manager.
    """

    def __init__(self, spec: SharedModelSpec, shm) -> None:
        self.spec = spec
        self._shm = shm

    def close(self) -> None:
        """Detach and remove the segment (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedCouplingModel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _attach_segment(name: str):
    """Attach an existing shared-memory segment without claiming ownership.

    Python < 3.13 registers every attached segment with the resource
    tracker as if the attacher owned it: under ``spawn`` the attacher's
    own tracker would unlink the segment (with a warning) when the
    attacher exits, and under ``fork`` — where the tracker process is
    shared with the exporter — an unregister-after-attach workaround
    would cancel the *exporter's* registration and make its eventual
    unlink double-unregister. Suppressing registration for the duration
    of the attach is correct in both modes: only the exporting process
    ever tracks (and unlinks) the segment.
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


@dataclass(frozen=True)
class _BuildTables:
    """Aggressor-independent gather/scatter tables of one network's physics.

    Everything the vectorized builder needs, flattened:

    * per emission *instance* (one ``(aggressor traversal, emission)``
      pair, in the legacy builder's iteration order): the aggressor pair,
      the injected base power ``k_linear * cum_in`` and the emission
      channel it exits into;
    * per unique emission *channel* ``(element, out_port)``: the resolved
      first-encounter table — for every victim pair credited by the
      channel, the walk loss accumulated before the join (1.0 for joins
      at the emitting element), the victim's end-to-end transmission and
      the cumulative divisor at the join position. Shielded victims
      (first shared element entered through the wrong port) contribute
      exactly zero and are dropped outright.

    The coupling matrix is then ``coupling[victim, aggressor] +=
    base * walk_loss * total / divisor`` scattered over all instances —
    the exact arithmetic (and accumulation order) of the legacy loop.
    """

    n_pairs: int
    inst_pair: np.ndarray  # (n_inst,) int64 aggressor pair per instance
    inst_base: np.ndarray  # (n_inst,) float64 k_linear * power_at_input
    inst_channel: np.ndarray  # (n_inst,) int64 channel id per instance
    ch_start: np.ndarray  # (n_channels,) int64 offset into the ch_* arrays
    ch_len: np.ndarray  # (n_channels,) int64 credited victims per channel
    ch_victim: np.ndarray  # (sum ch_len,) int64 victim pair
    ch_wl: np.ndarray  # (sum ch_len,) float64 walk loss before the join
    ch_total: np.ndarray  # (sum ch_len,) float64 victim total transmission
    ch_div: np.ndarray  # (sum ch_len,) float64 cum_out (exit) / cum_in (walk)


def _passive_lookup(network: PhotonicNoC):
    """Cached ``(element, in_port) -> linear passive straight-pass loss``.

    Shared by the legacy and the vectorized builder so the two can never
    drift apart on the loss arithmetic their bit-exactness parity rests
    on.
    """
    params = network.params
    cache: Dict[Tuple[int, int], float] = {}

    def passive_linear(element: int, in_port: int) -> float:
        key = (element, in_port)
        value = cache.get(key)
        if value is None:
            info = network.element(element)
            value = db_to_linear(
                passive_loss_db(info.kind, in_port, params, info.length_cm)
            )
            cache[key] = value
        return value

    return passive_linear


def _emissions_lookup(params):
    """Cached traversal -> ``((k_linear, out_port), ...)`` emission tuples.

    Shared by the legacy and the vectorized builder (see
    :func:`_passive_lookup`).
    """
    cache: Dict[Tuple[ElementKind, int, int, object], tuple] = {}

    def emissions_of(kind, in_port, out_port, state):
        key = (kind, in_port, out_port, state)
        value = cache.get(key)
        if value is None:
            value = tuple(
                (db_to_linear(e.coefficient_db), e.out_port)
                for e in traversal_emissions(kind, in_port, out_port, state, params)
            )
            cache[key] = value
        return value

    return emissions_of


def _slot_paths(network: PhotonicNoC, routes: int) -> List[tuple]:
    """``(slot, path)`` pairs in slot-major build order.

    With ``routes == 1`` the slots are exactly the legacy pair indices in
    ``all_paths()`` iteration order, so the build stays bit-identical to
    the single-route model. With ``routes > 1`` a pair's menu occupies
    ``routes`` consecutive slots (``slot = pair * routes + r``); route
    indices past the pair's menu size alias earlier plans, so every slot
    holds a fully valid column.
    """
    n_tiles = network.topology.n_tiles
    if routes == 1:
        return [
            (src * n_tiles + dst, path)
            for (src, dst), path in network.all_paths().items()
        ]
    return [
        ((src * n_tiles + dst) * routes + r, path)
        for (src, dst, r), path in network.all_paths_routed(routes).items()
    ]


def _build_tables(network: PhotonicNoC, routes: int = 1) -> _BuildTables:
    """Flatten a network's paths and emission walks into build tables.

    Pure function of the network: the emission-channel walks are executed
    exactly once per unique ``(element, out_port)`` channel (the legacy
    builder re-ran them once per aggressor traversal emitting into them),
    and the per-victim join/credit loops become lexsort-based
    first-encounter resolutions over the flattened entry/exit indices.

    With ``routes > 1`` the same pipeline runs over the routed slot set
    (:func:`_slot_paths`): victims and aggressors are routed slots, so
    the matrix resolves the route axis of both sides of every coupling.
    """
    params = network.params
    elements = network.elements
    follow = network.wiring.get
    paths = _slot_paths(network, routes)
    n_tiles = network.topology.n_tiles
    n_pairs = n_tiles * n_tiles * routes

    # Flatten every traversal of every path, in paths-iteration order —
    # the global traversal id doubles as the legacy index-append rank.
    pair_total = np.zeros(n_pairs, dtype=np.float64)
    trav_pair_l: List[int] = []
    trav_elem_l: List[int] = []
    trav_in_l: List[int] = []
    trav_out_l: List[int] = []
    cum_in_parts: List[np.ndarray] = []
    cum_out_parts: List[np.ndarray] = []
    for pair, path in paths:
        pair_total[pair] = path.total_linear
        for step in path.traversals:
            trav_pair_l.append(pair)
            trav_elem_l.append(step.element)
            trav_in_l.append(step.in_port)
            trav_out_l.append(step.out_port)
        cum_in_parts.append(path.cum_in_linear)
        cum_out_parts.append(path.cum_out_linear)
    trav_pair = np.asarray(trav_pair_l, dtype=np.int64)
    trav_elem = np.asarray(trav_elem_l, dtype=np.int64)
    trav_in = np.asarray(trav_in_l, dtype=np.int64)
    trav_out = np.asarray(trav_out_l, dtype=np.int64)
    trav_cum_in = (
        np.concatenate(cum_in_parts) if cum_in_parts else np.zeros(0)
    )
    trav_cum_out = (
        np.concatenate(cum_out_parts) if cum_out_parts else np.zeros(0)
    )

    # Entry index (element -> traversal ids) and exit index
    # ((element, out_port) -> traversal ids), grouped by stable sort so
    # within one group the ids keep the legacy append order.
    n_elements = len(elements)
    entry_order = np.argsort(trav_elem, kind="stable")
    entry_elem_sorted = trav_elem[entry_order]
    entry_ptr = np.searchsorted(
        entry_elem_sorted, np.arange(n_elements + 1, dtype=np.int64)
    )
    exit_key = trav_elem * 4 + trav_out  # ports are < 4
    exit_order = np.argsort(exit_key, kind="stable")
    exit_key_sorted = exit_key[exit_order]

    def exit_slice(element: int, out_port: int) -> np.ndarray:
        key = element * 4 + out_port
        lo = np.searchsorted(exit_key_sorted, key)
        hi = np.searchsorted(exit_key_sorted, key + 1)
        return exit_order[lo:hi]

    passive_linear = _passive_lookup(network)
    emissions_of = _emissions_lookup(params)

    # Emission instances, in the legacy builder's iteration order.
    channel_ids: Dict[Tuple[int, int], int] = {}
    channel_keys: List[Tuple[int, int]] = []
    inst_pair_l: List[int] = []
    inst_base_l: List[float] = []
    inst_channel_l: List[int] = []
    for pair, path in paths:
        cum_in = path.cum_in_linear
        for index, step in enumerate(path.traversals):
            info = elements[step.element]
            if info.kind is ElementKind.WAVEGUIDE:
                continue
            emitted = emissions_of(
                info.kind, step.in_port, step.out_port, step.state
            )
            if not emitted:
                continue
            power_at_input = cum_in[index]
            for k_linear, emission_port in emitted:
                key = (step.element, emission_port)
                cid = channel_ids.get(key)
                if cid is None:
                    cid = len(channel_keys)
                    channel_ids[key] = cid
                    channel_keys.append(key)
                inst_pair_l.append(pair)
                inst_base_l.append(k_linear * power_at_input)
                inst_channel_l.append(cid)

    # Resolve each unique channel once: walk forward, then pick every
    # victim pair's first encounter over (slot, append rank) and keep the
    # co-entering ones.
    ch_start = np.zeros(len(channel_keys), dtype=np.int64)
    ch_len = np.zeros(len(channel_keys), dtype=np.int64)
    victim_parts: List[np.ndarray] = []
    wl_parts: List[np.ndarray] = []
    div_parts: List[np.ndarray] = []
    offset = 0
    for cid, (element, emission_port) in enumerate(channel_keys):
        # Slot 0: the join at the emitting element itself (victims that
        # exit through the emission port; no loss inside the generating
        # switch). Slots 1..L: the forward walk, same termination rules
        # as the legacy builder — plus two exact shortcuts the legacy
        # loop pays for in full: a repeated walk *position* means the
        # rest of the walk is a lap of a cycle (torus orbits) that can
        # credit nothing new, and a repeated walk *element* has already
        # credited (or shielded) every pair entering it at its first
        # occurrence, so later occurrences carry no candidates.
        exit_tids = exit_slice(element, emission_port)
        slot_elems: List[int] = []
        slot_in = [-1]
        slot_wl = [1.0]
        seen_positions = set()
        seen_elements = set()
        walk_loss = 1.0
        position = follow((element, emission_port))
        steps = 0
        while (
            position is not None
            and walk_loss > WALK_LOSS_CUTOFF_LINEAR
            and steps < _MAX_WALK_STEPS
            and position not in seen_positions
        ):
            seen_positions.add(position)
            steps += 1
            walk_element, in_port = position
            if walk_element not in seen_elements:
                seen_elements.add(walk_element)
                slot_elems.append(walk_element)
                slot_in.append(in_port)
                slot_wl.append(walk_loss)
            walk_loss *= passive_linear(walk_element, in_port)
            position = follow(
                (
                    walk_element,
                    straight_output(elements[walk_element].kind, in_port),
                )
            )
        if slot_elems:
            elems_arr = np.asarray(slot_elems, dtype=np.int64)
            starts = entry_ptr[elems_arr]
            lens = entry_ptr[elems_arr + 1] - starts
            n_entries = int(lens.sum())
            slot_ends = np.cumsum(lens)
            within = np.arange(n_entries, dtype=np.int64) - np.repeat(
                slot_ends - lens, lens
            )
            entry_tids = entry_order[np.repeat(starts, lens) + within]
            entry_slots = np.repeat(
                np.arange(1, len(slot_elems) + 1, dtype=np.int64), lens
            )
        else:
            entry_tids = np.zeros(0, dtype=np.int64)
            entry_slots = np.zeros(0, dtype=np.int64)
        tids = np.concatenate([exit_tids, entry_tids])
        if len(tids):
            slots = np.concatenate(
                [np.zeros(len(exit_tids), dtype=np.int64), entry_slots]
            )
            pairs = trav_pair[tids]
            # First encounter wins: sort by (pair, slot, append rank) and
            # keep the first row of each pair — the legacy `credited` set.
            order = np.lexsort((tids, slots, pairs))
            pair_sorted = pairs[order]
            slot_sorted = slots[order]
            tid_sorted = tids[order]
            first = np.ones(len(order), dtype=bool)
            first[1:] = pair_sorted[1:] != pair_sorted[:-1]
            win_pair = pair_sorted[first]
            win_slot = slot_sorted[first]
            win_tid = tid_sorted[first]
            is_exit = win_slot == 0
            slot_in_arr = np.asarray(slot_in, dtype=np.int64)
            keep = is_exit | (trav_in[win_tid] == slot_in_arr[win_slot])
            win_pair = win_pair[keep]
            win_tid = win_tid[keep]
            win_slot = win_slot[keep]
            is_exit = is_exit[keep]
            victims = win_pair
            wl = np.asarray(slot_wl, dtype=np.float64)[win_slot]
            div = np.where(
                is_exit, trav_cum_out[win_tid], trav_cum_in[win_tid]
            )
        else:
            victims = np.zeros(0, dtype=np.int64)
            wl = np.zeros(0, dtype=np.float64)
            div = np.zeros(0, dtype=np.float64)
        ch_start[cid] = offset
        ch_len[cid] = len(victims)
        offset += len(victims)
        victim_parts.append(victims)
        wl_parts.append(wl)
        div_parts.append(div)

    ch_victim = (
        np.concatenate(victim_parts)
        if victim_parts
        else np.zeros(0, dtype=np.int64)
    )
    ch_wl = (
        np.concatenate(wl_parts) if wl_parts else np.zeros(0, dtype=np.float64)
    )
    ch_div = (
        np.concatenate(div_parts)
        if div_parts
        else np.zeros(0, dtype=np.float64)
    )
    return _BuildTables(
        n_pairs=n_pairs,
        inst_pair=np.asarray(inst_pair_l, dtype=np.int64),
        inst_base=np.asarray(inst_base_l, dtype=np.float64),
        inst_channel=np.asarray(inst_channel_l, dtype=np.int64),
        ch_start=ch_start,
        ch_len=ch_len,
        ch_victim=ch_victim,
        ch_wl=ch_wl,
        ch_total=pair_total[ch_victim],
        ch_div=ch_div,
    )


#: Expanded scatter entries per accumulation chunk: bounds the transient
#: gather arrays to ~5 x 8 bytes x this many entries (~160 MB).
_SCATTER_CHUNK = 4 << 20


def _accumulate_columns(
    tables: _BuildTables, out: np.ndarray, lo: int, hi: int
) -> None:
    """Scatter the couplings of aggressor pairs ``[lo, hi)`` into ``out``.

    ``out`` is the zeroed ``(n_pairs, hi - lo)`` C-contiguous column
    block at the model dtype. Deterministic and legacy-exact:
    ``np.add.at`` applies entries sequentially (computing in float64 and
    rounding to the block dtype per store, the same as the legacy
    ``+=``), entries are ordered by emission instance, and every
    ``(victim, aggressor)`` cell's contributions all come from the one
    aggressor owning the column — so any column sharding reproduces the
    legacy accumulation order exactly.
    """
    if lo == 0 and hi == tables.n_pairs:
        sel = np.arange(len(tables.inst_pair), dtype=np.int64)
    else:
        sel = np.nonzero(
            (tables.inst_pair >= lo) & (tables.inst_pair < hi)
        )[0]
    if not len(sel):
        return
    lens = tables.ch_len[tables.inst_channel[sel]]
    ends = np.cumsum(lens)
    width = hi - lo
    flat = out.reshape(-1)
    n_inst = len(sel)
    start = 0
    while start < n_inst:
        base = int(ends[start - 1]) if start else 0
        stop = int(np.searchsorted(ends, base + _SCATTER_CHUNK, side="right"))
        stop = min(max(stop, start + 1), n_inst)
        chunk_lens = lens[start:stop]
        total = int(ends[stop - 1]) - base
        if total == 0:
            start = stop
            continue
        local = np.repeat(np.arange(start, stop, dtype=np.int64), chunk_lens)
        inst = sel[local]
        chunk_ends = np.cumsum(chunk_lens)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            chunk_ends - chunk_lens, chunk_lens
        )
        j = tables.ch_start[tables.inst_channel[inst]] + within
        # ((base * walk_loss) * total) / div — the legacy association
        # order, elementwise, so every value matches bit for bit.
        values = tables.inst_base[inst] * tables.ch_wl[j]
        values *= tables.ch_total[j]
        values /= tables.ch_div[j]
        np.add.at(
            flat,
            tables.ch_victim[j] * width + (tables.inst_pair[inst] - lo),
            values,
        )
        start = stop


def _build_columns_task(
    tables: _BuildTables,
    dtype_name: str,
    lo: int,
    hi: int,
    shm_name: Optional[str] = None,
):
    """One build-pool task: the ``[lo, hi)`` aggressor columns of a model.

    The tables are built once in the parent and shipped (they are a few
    flat arrays, orders of magnitude smaller than the matrix), so every
    worker scatters from the *same* tables the inline path would use.
    With ``shm_name`` the finished ``(n_pairs, hi - lo)`` slab is copied
    into the named shared-memory matrix — pickling the slabs back
    through the result pipe costs more than computing them — and
    ``(lo, hi, None)`` is returned; without it the slab itself is.
    """
    dtype = np.dtype(dtype_name)
    block = np.zeros((tables.n_pairs, hi - lo), dtype=dtype)
    _accumulate_columns(tables, block, lo, hi)
    if shm_name is None:
        return lo, hi, block
    shm = _attach_segment(shm_name)
    try:
        matrix = np.ndarray(
            (tables.n_pairs, tables.n_pairs), dtype=dtype, buffer=shm.buf
        )
        matrix[:, lo:hi] = block
    finally:
        shm.close()
    return lo, hi, None


class CouplingModel:
    """Precomputed signal/coupling matrices for a :class:`PhotonicNoC`."""

    def __init__(
        self,
        network: PhotonicNoC,
        dtype=np.float64,
        build_workers: int = 1,
        builder: str = "vectorized",
        routes: int = 1,
    ) -> None:
        global BUILD_COUNT
        BUILD_COUNT += 1
        if routes < 1:
            raise ModelError(f"routes must be >= 1, got {routes}")
        if routes > 1 and builder == "legacy":
            raise ModelError("the legacy builder only supports routes=1")
        self.network = network
        self.n_tiles = network.topology.n_tiles
        self.routes = int(routes)
        self.n_pairs = self.n_tiles * self.n_tiles * self.routes
        self.signal_linear = np.zeros(self.n_pairs, dtype=np.float64)
        self.insertion_loss_db = np.full(self.n_pairs, np.nan, dtype=np.float64)
        self.coupling_linear = np.zeros((self.n_pairs, self.n_pairs), dtype=dtype)
        self._coupling_T: Optional[np.ndarray] = None
        self._csr: Optional[CouplingCSR] = None
        self._nnz: Optional[int] = None
        self._shared_handles: Dict[Tuple[bool, bool], "SharedCouplingModel"] = {}
        if builder == "vectorized":
            self._build(build_workers=int(build_workers))
        elif builder == "legacy":
            self._build_legacy()
        else:
            raise ModelError(
                f"builder must be 'vectorized' or 'legacy', got {builder!r}"
            )

    @property
    def coupling_linear_T(self) -> np.ndarray:
        """Contiguous transpose of :attr:`coupling_linear`, built lazily.

        The delta evaluator gathers ``coupling_linear[v, a]`` with ``a``
        fixed and ``v`` running over a victim set; on the row-major
        ``coupling_linear`` that walk is one cache miss per element, on
        the transpose it stays inside one row. Only delta users pay the
        doubled memory.
        """
        if self._coupling_T is None:
            self._coupling_T = np.ascontiguousarray(self.coupling_linear.T)
        return self._coupling_T

    def csr(self) -> CouplingCSR:
        """Victim-major CSR triplet of :attr:`coupling_linear`, built lazily.

        The sparse evaluator backend streams these arrays instead of
        gathering the dense ``(M, E, E)`` grid, and the delta evaluator
        consumes the rows in place of dense-transpose column walks; only
        sparse users pay the extra ``O(nnz)`` memory. Worker processes
        attaching a CSR-flavoured shared export get read-only views
        instead of a rebuild.
        """
        if self._csr is None:
            self._csr = _build_csr(self.coupling_linear)
        return self._csr

    @property
    def nnz(self) -> int:
        """Number of nonzero couplings (one matrix scan, cached).

        Deliberately cheaper than :meth:`csr`: ``backend="auto"``
        evaluators read this on every construction, and most of them
        resolve to the dense backend without ever needing the CSR arrays.
        """
        if self._csr is not None:
            return self._csr.nnz
        if self._nnz is None:
            self._nnz = int(np.count_nonzero(self.coupling_linear))
        return self._nnz

    @property
    def density(self) -> float:
        """Nonzero fraction of the coupling matrix (0.0 to 1.0).

        The statistic behind the evaluator's ``backend="auto"`` rule: the
        sparse contraction streams ``nnz = density * n_pairs^2`` values
        per evaluated mapping, the dense one gathers ``E^2``, so sparsity
        only pays off once the communication graph is edge-dense enough
        (see :meth:`repro.core.evaluator.MappingEvaluator`).
        """
        size = float(self.n_pairs * self.n_pairs)
        return self.nnz / size if size else 0.0

    # -- indexing ----------------------------------------------------------------

    def pair_index(self, src_tile: int, dst_tile: int) -> int:
        """Flat slot index of the ordered tile pair's route-0 entry.

        Routed models (``routes > 1``) lay a pair's menu out on
        ``routes`` consecutive slots, so route ``r`` of the pair lives at
        ``pair_index(src, dst) + r``. At ``routes == 1`` this is exactly
        the legacy pair index.
        """
        if self.routes == 1:
            return src_tile * self.n_tiles + dst_tile
        return (src_tile * self.n_tiles + dst_tile) * self.routes

    def pair_indices(self, src_tiles: np.ndarray, dst_tiles: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`pair_index`."""
        if self.routes == 1:
            return src_tiles * self.n_tiles + dst_tiles
        return (src_tiles * self.n_tiles + dst_tiles) * self.routes

    # -- construction --------------------------------------------------------------

    def _build(self, build_workers: int = 1) -> None:
        """Walk-once vectorized build (see the module docstring).

        ``build_workers > 1`` shards the aggressor columns across the
        build pool (:func:`repro.core.pool.get_build_pool`); any failure
        there falls back to the inline single-process path. Either way
        the matrices are bit-identical to :meth:`_build_legacy`.
        """
        network = self.network
        for slot, path in _slot_paths(network, self.routes):
            self.signal_linear[slot] = path.total_linear
            self.insertion_loss_db[slot] = path.loss_db
        tables = _build_tables(network, routes=self.routes)
        built = build_workers > 1 and self._build_sharded(tables, build_workers)
        if not built:
            self.coupling_linear.fill(0)
            _accumulate_columns(tables, self.coupling_linear, 0, self.n_pairs)
        # The channel tables credit every victim including the aggressor
        # itself (the legacy builder excluded it up front); self-coupling
        # is exactly the diagonal, which the physics defines as zero.
        np.fill_diagonal(self.coupling_linear, 0.0)

    def _build_sharded(
        self, tables: _BuildTables, build_workers: int
    ) -> bool:
        """Aggressor-sharded parallel build; True when the pool delivered.

        Each worker scatters a contiguous block of aggressor columns from
        the parent's tables into a shared-memory copy of the matrix;
        every ``(victim, aggressor)`` cell's accumulation order is
        internal to its own column, so results are bit-identical for any
        worker count. Any failure (no shared memory, no processes, a
        dead worker) reports False and the caller rebuilds inline.
        """
        from multiprocessing import shared_memory

        from repro.core import pool as _pool

        n_workers = min(int(build_workers), self.n_pairs)
        bounds = np.linspace(0, self.n_pairs, n_workers + 1).astype(np.int64)
        dtype_name = self.coupling_linear.dtype.name
        pool = None
        shm = None
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=self.coupling_linear.nbytes
            )
            pool = _pool.get_build_pool(n_workers)
            futures = [
                pool.submit(
                    _build_columns_task,
                    tables,
                    dtype_name,
                    int(lo),
                    int(hi),
                    shm.name,
                )
                for lo, hi in zip(bounds[:-1], bounds[1:])
                if hi > lo
            ]
            for future in futures:
                future.result()
            shared = np.ndarray(
                self.coupling_linear.shape,
                dtype=self.coupling_linear.dtype,
                buffer=shm.buf,
            )
            np.copyto(self.coupling_linear, shared)
            del shared
        except Exception:  # broken pool / no segments: rebuild inline
            if pool is not None:
                pool.broken = True
            return False
        finally:
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        return True

    def _build_legacy(self) -> None:
        """The seed per-aggressor walk loop, kept as the parity oracle.

        Pure Python, O(aggressor traversals x walk length x entries per
        element); the vectorized :meth:`_build` must reproduce it bit for
        bit (``tests/models/test_model_build.py``).
        """
        network = self.network
        params = network.params
        paths = network.all_paths()

        # Exit index: (element, out_port) -> [(pair, position), ...] for the
        # direct joins at the emitting element. Entry index: element ->
        # [(pair, position, in_port), ...] for the walk joins (a walk joins
        # a victim only by co-entering the first shared element).
        exit_index: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        entry_index: Dict[int, List[Tuple[int, int, int]]] = {}
        pair_paths: Dict[int, object] = {}
        for (src, dst), path in paths.items():
            pair = self.pair_index(src, dst)
            pair_paths[pair] = path
            self.signal_linear[pair] = path.total_linear
            self.insertion_loss_db[pair] = path.loss_db
            for position, step in enumerate(path.traversals):
                exit_index.setdefault((step.element, step.out_port), []).append(
                    (pair, position)
                )
                entry_index.setdefault(step.element, []).append(
                    (pair, position, step.in_port)
                )

        passive_linear = _passive_lookup(network)
        emissions_of = _emissions_lookup(params)

        coupling = self.coupling_linear
        follow = network.wiring.get
        elements = network.elements

        for (src, dst), path in paths.items():
            aggressor_pair = self.pair_index(src, dst)
            cum_in = path.cum_in_linear
            for index, step in enumerate(path.traversals):
                info = elements[step.element]
                if info.kind is ElementKind.WAVEGUIDE:
                    continue
                emitted = emissions_of(info.kind, step.in_port, step.out_port, step.state)
                if not emitted:
                    continue
                power_at_input = cum_in[index]
                for k_linear, emission_port in emitted:
                    base = k_linear * power_at_input
                    credited = set()
                    credited.add(aggressor_pair)
                    # Join at the emitting element: no loss inside the
                    # generating switch.
                    for victim_pair, position in exit_index.get(
                        (step.element, emission_port), ()
                    ):
                        if victim_pair in credited:
                            continue
                        credited.add(victim_pair)
                        victim = pair_paths[victim_pair]
                        coupling[victim_pair, aggressor_pair] += (
                            base
                            * victim.total_linear
                            / victim.cum_out_linear[position]
                        )
                    # Walk forward until attenuated away. The first shared
                    # element decides for each victim: a co-entering victim
                    # receives the noise (it follows the victim's configured
                    # route from there); any other encounter shields the
                    # victim (crossing guide, or its ON ring diverts the
                    # noise — a second-order residual the model zeroes).
                    walk_loss = 1.0
                    position_next = follow((step.element, emission_port))
                    steps = 0
                    while (
                        position_next is not None
                        and walk_loss > WALK_LOSS_CUTOFF_LINEAR
                        and steps < _MAX_WALK_STEPS
                    ):
                        steps += 1
                        element, in_port = position_next
                        for victim_pair, position, victim_in in entry_index.get(
                            element, ()
                        ):
                            if victim_pair in credited:
                                continue
                            credited.add(victim_pair)
                            if victim_in != in_port:
                                continue
                            victim = pair_paths[victim_pair]
                            coupling[victim_pair, aggressor_pair] += (
                                base
                                * walk_loss
                                * victim.total_linear
                                / victim.cum_in_linear[position]
                            )
                        walk_loss *= passive_linear(element, in_port)
                        position_next = follow(
                            (element, straight_output(elements[element].kind, in_port))
                        )

    # -- multi-process sharing ---------------------------------------------------------

    def export_shared(
        self, with_transpose: bool = True, with_csr: bool = False
    ) -> SharedCouplingModel:
        """Copy the read-only matrices into a shared-memory segment.

        Returns the owner-side handle whose :attr:`~SharedCouplingModel.spec`
        is what worker processes pass to :meth:`attach_shared`. With
        ``with_transpose`` (the default) the contiguous transpose used by
        the dense-mode delta evaluator is exported too, so workers never
        build their own copy; ``with_csr`` ships the CSR triplet instead,
        which is what the sparse backend's workers attach (a CSR export
        is typically several times smaller than the transpose it
        replaces). The owner must keep the handle alive while workers are
        attached and :meth:`~SharedCouplingModel.close` it afterwards.

        Raises whatever :mod:`multiprocessing.shared_memory` raises when
        segments are unavailable (callers fall back to fork inheritance /
        per-worker rebuilds).
        """
        from multiprocessing import shared_memory

        csr = self.csr() if with_csr else None
        spec = SharedModelSpec(
            shm_name="",
            cache_key=self.cache_key(
                self.network, self.coupling_linear.dtype, routes=self.routes
            ),
            n_tiles=self.n_tiles,
            dtype=self.coupling_linear.dtype.name,
            with_transpose=bool(with_transpose),
            csr_nnz=csr.nnz if csr is not None else -1,
            nnz=self.nnz,
            routes=self.routes,
        )
        layout, nbytes = spec._layout()
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        spec = SharedModelSpec(
            shm_name=shm.name,
            cache_key=spec.cache_key,
            n_tiles=spec.n_tiles,
            dtype=spec.dtype,
            with_transpose=spec.with_transpose,
            csr_nnz=spec.csr_nnz,
            nnz=spec.nnz,
            routes=spec.routes,
        )
        sources = {
            "signal_linear": self.signal_linear,
            "insertion_loss_db": self.insertion_loss_db,
            "coupling_linear": self.coupling_linear,
        }
        if with_transpose:
            sources["coupling_linear_T"] = self.coupling_linear_T
        if csr is not None:
            sources["csr_indptr"] = csr.indptr
            sources["csr_indices"] = csr.indices
            sources["csr_values"] = csr.values
        for name, dt, shape, offset in layout:
            view = np.ndarray(shape, dtype=dt, buffer=shm.buf, offset=offset)
            view[...] = sources[name]
        return SharedCouplingModel(spec, shm)

    def shared_export(self, backend: str = "dense") -> SharedCouplingModel:
        """The cached shared-memory export of this model for one backend.

        Copying the matrices into a segment costs real time on big
        architectures (~1.3 s for a 64-tile mesh's 2 x 134 MB), so each
        export flavour is created once per process and reused by every
        worker pool; the segments are unlinked by
        :func:`clear_model_cache` or at interpreter exit, whichever comes
        first. ``backend="dense"`` ships dense matrix + transpose (the
        historical layout); ``backend="sparse"`` ships dense matrix + CSR
        triplet — the transpose is dropped because sparse-mode delta
        evaluation consumes CSR rows instead.
        """
        flavor = (
            (False, True) if backend == "sparse" else (True, False)
        )  # (with_transpose, with_csr)
        handle = self._shared_handles.get(flavor)
        if handle is None or handle._shm is None:
            handle = self.export_shared(
                with_transpose=flavor[0], with_csr=flavor[1]
            )
            self._shared_handles[flavor] = handle
            _register_export(handle)
        return handle

    @classmethod
    def attach_shared(
        cls, spec: SharedModelSpec, network: PhotonicNoC
    ) -> "CouplingModel":
        """Attach to an exported model without rebuilding anything.

        The returned instance's matrices are read-only views on the shared
        segment; the segment handle is kept alive on the instance, and the
        exporting process owns unlinking. Intended to run in pool workers
        (see :mod:`repro.core.parallel`), which also seed the process
        cache so :meth:`for_network` resolves to the attached model.
        """
        shm = _attach_segment(spec.shm_name)
        layout, _ = spec._layout()
        model = cls.__new__(cls)
        model.network = network
        model.n_tiles = spec.n_tiles
        model.routes = spec.routes
        model.n_pairs = spec.n_pairs
        model._coupling_T = None
        model._csr = None
        # The spec ships the nonzero count, so attached backend="auto"
        # evaluators never re-scan the shared matrix to resolve.
        model._nnz = spec.nnz if spec.nnz >= 0 else None
        model._shared_handles = {}
        model._shm = shm  # keeps the mapping alive as long as the model
        csr_parts = {}
        for name, dt, shape, offset in layout:
            view = np.ndarray(shape, dtype=dt, buffer=shm.buf, offset=offset)
            view.flags.writeable = False
            if name == "coupling_linear_T":
                model._coupling_T = view
            elif name.startswith("csr_"):
                csr_parts[name[4:]] = view
            else:
                setattr(model, name, view)
        if csr_parts:
            # The reduceat split tables are derived, not shipped: O(n_pairs)
            # to rebuild versus extra segment layout complexity.
            indptr = csr_parts["indptr"]
            nonzero_rows = np.nonzero(indptr[1:] > indptr[:-1])[0].astype(
                np.int64
            )
            model._csr = CouplingCSR(
                indptr=indptr,
                indices=csr_parts["indices"],
                values=csr_parts["values"],
                nonzero_rows=nonzero_rows,
                nonzero_row_starts=indptr[:-1][nonzero_rows],
            )
        return model

    # -- caching ---------------------------------------------------------------------

    @staticmethod
    def cache_key(network: PhotonicNoC, dtype, routes: int = 1) -> str:
        """Process-cache key of the model for ``network`` at ``dtype``.

        Routed models (``routes > 1``) get a distinct key; single-route
        keys are byte-identical to the pre-routing layout, so existing
        cache entries stay valid.
        """
        key = f"{network.signature}|{np.dtype(dtype).name}"
        if routes > 1:
            key += f"|routes={int(routes)}"
        return key

    @classmethod
    def register(cls, key: str, model: "CouplingModel") -> None:
        """Seed the process cache (worker-side of shared-memory attach)."""
        _CACHE[key] = model

    # The three persisted arrays; CSR / transpose stay derived (cheap
    # relative to the build, and dtype-dependent consumers rebuild them).
    _DISK_ARRAYS = ("signal_linear", "insertion_loss_db", "coupling_linear")

    @staticmethod
    def disk_key(signature: str, dtype, routes: int = 1) -> str:
        """On-disk cache entry name for ``(signature, routes, dtype, version)``.

        A hash, not the raw signature: signatures embed the full physical
        parameter table and overflow path-component limits on big
        parameter sets. ``routes == 1`` hashes the pre-routing text, so
        existing single-route entries keep their names.
        """
        text = f"{signature}|{np.dtype(dtype).name}|v{MODEL_VERSION}"
        if routes > 1:
            text = (
                f"{signature}|routes={int(routes)}"
                f"|{np.dtype(dtype).name}|v{MODEL_VERSION}"
            )
        return hashlib.sha1(text.encode()).hexdigest()

    @classmethod
    def load_cached(
        cls, network: PhotonicNoC, dtype, cache_dir: str, routes: int = 1
    ) -> Optional["CouplingModel"]:
        """Load a model from the on-disk cache, or ``None`` on any miss.

        The arrays come back as read-only memory maps — a warm load is
        I/O-free until the matrices are touched. Every failure mode
        (absent entry, key mismatch after a hash collision, truncated or
        corrupted arrays, unreadable metadata) returns ``None`` so the
        caller rebuilds; the cache can only ever be a fast path.
        """
        entry = os.path.join(
            str(cache_dir), cls.disk_key(network.signature, dtype, routes=routes)
        )
        try:
            with open(os.path.join(entry, "meta.json")) as handle:
                meta = json.load(handle)
            if (
                meta.get("signature") != network.signature
                or meta.get("dtype") != np.dtype(dtype).name
                or meta.get("model_version") != MODEL_VERSION
                or int(meta.get("routes", 1)) != int(routes)
            ):
                return None
            arrays = {
                name: np.load(
                    os.path.join(entry, f"{name}.npy"), mmap_mode="r"
                )
                for name in cls._DISK_ARRAYS
            }
            n_tiles = network.topology.n_tiles
            n_pairs = n_tiles * n_tiles * int(routes)
            if (
                arrays["signal_linear"].shape != (n_pairs,)
                or arrays["insertion_loss_db"].shape != (n_pairs,)
                or arrays["coupling_linear"].shape != (n_pairs, n_pairs)
                or arrays["coupling_linear"].dtype != np.dtype(dtype)
            ):
                return None
            model = cls.__new__(cls)
            model.network = network
            model.n_tiles = n_tiles
            model.routes = int(routes)
            model.n_pairs = n_pairs
            model.signal_linear = arrays["signal_linear"]
            model.insertion_loss_db = arrays["insertion_loss_db"]
            model.coupling_linear = arrays["coupling_linear"]
            model._coupling_T = None
            model._csr = None
            # nnz ships in the metadata: auto-backend evaluators resolve
            # without faulting the whole memory-mapped matrix in.
            nnz = meta.get("nnz")
            model._nnz = int(nnz) if nnz is not None else None
            model._shared_handles = {}
            return model
        except Exception:
            return None

    def save_cached(self, cache_dir: str) -> Optional[str]:
        """Persist this model's arrays into the on-disk cache.

        Writes into a private temporary directory and renames it into
        place, so readers only ever see complete entries; a concurrent
        writer winning the rename (or an unwritable ``cache_dir``) makes
        this a silent no-op returning ``None`` — persisting is always
        best-effort.
        """
        directory = str(cache_dir)
        entry = os.path.join(
            directory,
            self.disk_key(
                self.network.signature,
                self.coupling_linear.dtype,
                routes=self.routes,
            ),
        )
        tmp = f"{entry}.tmp.{os.getpid()}"
        try:
            os.makedirs(tmp)
            for name in self._DISK_ARRAYS:
                np.save(
                    os.path.join(tmp, f"{name}.npy"),
                    np.ascontiguousarray(getattr(self, name)),
                )
            meta = {
                "signature": self.network.signature,
                "dtype": self.coupling_linear.dtype.name,
                "model_version": MODEL_VERSION,
                "n_tiles": self.n_tiles,
                "routes": self.routes,
                "nnz": self.nnz,
            }
            with open(os.path.join(tmp, "meta.json"), "w") as handle:
                json.dump(meta, handle, indent=2, sort_keys=True)
            if os.path.isdir(entry):  # stale/corrupt entry: replace it
                import shutil

                shutil.rmtree(entry, ignore_errors=True)
            os.replace(tmp, entry)
            return entry
        except OSError:
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)
            return None

    def export_arrays(self) -> dict:
        """Pack this model's arrays for a one-time streamed transfer.

        The cache-miss fallback of distributed hydration: when a remote
        worker holds neither a process- nor disk-cached model for a
        cache key, the scheduler streams this payload once and the
        worker persists it (:meth:`from_arrays` + :meth:`save_cached`),
        making every later hydration key-only again. Same array set as
        the disk cache (:attr:`_DISK_ARRAYS`), so a streamed model is
        bit-identical to a built or disk-loaded one.
        """
        payload = {
            name: np.ascontiguousarray(getattr(self, name))
            for name in self._DISK_ARRAYS
        }
        payload["nnz"] = self.nnz
        payload["routes"] = self.routes
        return payload

    @classmethod
    def from_arrays(cls, network: PhotonicNoC, payload: dict) -> "CouplingModel":
        """Rebuild a model from an :meth:`export_arrays` payload."""
        n_tiles = network.topology.n_tiles
        routes = int(payload.get("routes", 1))
        n_pairs = n_tiles * n_tiles * routes
        coupling = np.asarray(payload["coupling_linear"])
        if coupling.shape != (n_pairs, n_pairs):
            raise ModelError(
                f"streamed coupling matrix has shape {coupling.shape}, "
                f"expected {(n_pairs, n_pairs)} for {network.signature!r} "
                f"at routes={routes}"
            )
        model = cls.__new__(cls)
        model.network = network
        model.n_tiles = n_tiles
        model.routes = routes
        model.n_pairs = n_pairs
        model.signal_linear = np.asarray(payload["signal_linear"])
        model.insertion_loss_db = np.asarray(payload["insertion_loss_db"])
        model.coupling_linear = coupling
        model._coupling_T = None
        model._csr = None
        nnz = payload.get("nnz")
        model._nnz = int(nnz) if nnz is not None else None
        model._shared_handles = {}
        return model

    @classmethod
    def for_network(
        cls,
        network: PhotonicNoC,
        dtype=np.float64,
        use_cache: bool = True,
        cache_dir: Optional[str] = None,
        build_workers: int = 1,
        routes: int = 1,
    ) -> "CouplingModel":
        """Build (or fetch from a cache) the model for a network.

        Resolution order: the process cache (when ``use_cache``), then
        the on-disk cache (``cache_dir``, defaulting to
        :func:`get_model_cache_dir`; loaded models are read-only memory
        maps), then a fresh build — sharded across ``build_workers``
        processes when more than one — which is persisted back to the
        disk cache best-effort. Every path yields bit-identical matrices.
        """
        key = cls.cache_key(network, dtype, routes=routes)
        if use_cache:
            cached = _CACHE.get(key)
            if cached is not None:
                return cached
        directory = cache_dir if cache_dir is not None else get_model_cache_dir()
        model = None
        if directory:
            model = cls.load_cached(network, dtype, directory, routes=routes)
        if model is None:
            model = cls(
                network, dtype=dtype, build_workers=build_workers, routes=routes
            )
            if directory:
                model.save_cached(directory)
        if use_cache:
            _CACHE[key] = model
        return model


#: Shared-memory exports owned by this process, unlinked at exit.
_EXPORTS: List[SharedCouplingModel] = []


def _register_export(handle: SharedCouplingModel) -> None:
    if not _EXPORTS:
        import atexit

        atexit.register(_close_exports)
    _EXPORTS.append(handle)


def _close_exports() -> None:
    """Unlink every shared-memory export this process still owns."""
    while _EXPORTS:
        _EXPORTS.pop().close()


def clear_model_cache() -> None:
    """Drop all cached coupling models and their shared exports."""
    _close_exports()
    _CACHE.clear()
