"""Vectorized all-pairs coupling matrices for one architecture.

Evaluating the worst-case SNR of a mapping needs, for every ordered pair of
tile-to-tile paths, the noise the aggressor injects into the victim. This
module precomputes that once per architecture:

* ``signal_linear[p]`` — end-to-end transmission of path ``p``;
* ``insertion_loss_db[p]`` — the same in dB (eq. 3's per-edge term);
* ``coupling_linear[v, a]`` — noise power at the detector of victim path
  ``v`` per unit power injected by aggressor path ``a`` (the first-order
  walk model of :mod:`repro.models.crosstalk`, applied to all pairs at
  once via an element exit index).

Paths are indexed ``p = src * n_tiles + dst``. With the matrices in hand, a
mapping evaluation is a handful of numpy gathers (see
:class:`repro.core.evaluator.MappingEvaluator`), which is what makes the
paper's 100,000-random-mappings experiment and the optimizer loops cheap.

The matrices encode pure physics: *every* pair of simultaneously active
paths couples. Which pairs can actually be simultaneously active (the
transmitter/receiver serialization of DESIGN.md §3) is decided at the
communication-graph level by the evaluator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.models.crosstalk import WALK_LOSS_CUTOFF_LINEAR, _MAX_WALK_STEPS
from repro.noc.network import PhotonicNoC
from repro.photonics.elements import (
    ElementKind,
    passive_loss_db,
    straight_output,
    traversal_emissions,
)
from repro.photonics.units import db_to_linear

__all__ = ["CouplingModel", "clear_model_cache"]

_CACHE: Dict[str, "CouplingModel"] = {}


class CouplingModel:
    """Precomputed signal/coupling matrices for a :class:`PhotonicNoC`."""

    def __init__(self, network: PhotonicNoC, dtype=np.float64) -> None:
        self.network = network
        self.n_tiles = network.topology.n_tiles
        self.n_pairs = self.n_tiles * self.n_tiles
        self.signal_linear = np.zeros(self.n_pairs, dtype=np.float64)
        self.insertion_loss_db = np.full(self.n_pairs, np.nan, dtype=np.float64)
        self.coupling_linear = np.zeros((self.n_pairs, self.n_pairs), dtype=dtype)
        self._coupling_T: Optional[np.ndarray] = None
        self._build()

    @property
    def coupling_linear_T(self) -> np.ndarray:
        """Contiguous transpose of :attr:`coupling_linear`, built lazily.

        The delta evaluator gathers ``coupling_linear[v, a]`` with ``a``
        fixed and ``v`` running over a victim set; on the row-major
        ``coupling_linear`` that walk is one cache miss per element, on
        the transpose it stays inside one row. Only delta users pay the
        doubled memory.
        """
        if self._coupling_T is None:
            self._coupling_T = np.ascontiguousarray(self.coupling_linear.T)
        return self._coupling_T

    # -- indexing ----------------------------------------------------------------

    def pair_index(self, src_tile: int, dst_tile: int) -> int:
        """Flat index of the ordered tile pair."""
        return src_tile * self.n_tiles + dst_tile

    def pair_indices(self, src_tiles: np.ndarray, dst_tiles: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`pair_index`."""
        return src_tiles * self.n_tiles + dst_tiles

    # -- construction --------------------------------------------------------------

    def _build(self) -> None:
        network = self.network
        params = network.params
        paths = network.all_paths()

        # Exit index: (element, out_port) -> [(pair, position), ...] for the
        # direct joins at the emitting element. Entry index: element ->
        # [(pair, position, in_port), ...] for the walk joins (a walk joins
        # a victim only by co-entering the first shared element).
        exit_index: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        entry_index: Dict[int, List[Tuple[int, int, int]]] = {}
        pair_paths: Dict[int, object] = {}
        for (src, dst), path in paths.items():
            pair = self.pair_index(src, dst)
            pair_paths[pair] = path
            self.signal_linear[pair] = path.total_linear
            self.insertion_loss_db[pair] = path.loss_db
            for position, step in enumerate(path.traversals):
                exit_index.setdefault((step.element, step.out_port), []).append(
                    (pair, position)
                )
                entry_index.setdefault(step.element, []).append(
                    (pair, position, step.in_port)
                )

        # Per-element passive linear losses, cached by (element, in_port).
        passive_cache: Dict[Tuple[int, int], float] = {}

        def passive_linear(element: int, in_port: int) -> float:
            key = (element, in_port)
            value = passive_cache.get(key)
            if value is None:
                info = network.element(element)
                value = db_to_linear(
                    passive_loss_db(info.kind, in_port, params, info.length_cm)
                )
                passive_cache[key] = value
            return value

        emission_cache: Dict[Tuple[ElementKind, int, int, object], tuple] = {}

        def emissions_of(kind, in_port, out_port, state):
            key = (kind, in_port, out_port, state)
            value = emission_cache.get(key)
            if value is None:
                value = tuple(
                    (db_to_linear(e.coefficient_db), e.out_port)
                    for e in traversal_emissions(kind, in_port, out_port, state, params)
                )
                emission_cache[key] = value
            return value

        coupling = self.coupling_linear
        follow = network.wiring.get
        elements = network.elements

        for (src, dst), path in paths.items():
            aggressor_pair = self.pair_index(src, dst)
            cum_in = path.cum_in_linear
            for index, step in enumerate(path.traversals):
                info = elements[step.element]
                if info.kind is ElementKind.WAVEGUIDE:
                    continue
                emitted = emissions_of(info.kind, step.in_port, step.out_port, step.state)
                if not emitted:
                    continue
                power_at_input = cum_in[index]
                for k_linear, emission_port in emitted:
                    base = k_linear * power_at_input
                    credited = set()
                    credited.add(aggressor_pair)
                    # Join at the emitting element: no loss inside the
                    # generating switch.
                    for victim_pair, position in exit_index.get(
                        (step.element, emission_port), ()
                    ):
                        if victim_pair in credited:
                            continue
                        credited.add(victim_pair)
                        victim = pair_paths[victim_pair]
                        coupling[victim_pair, aggressor_pair] += (
                            base
                            * victim.total_linear
                            / victim.cum_out_linear[position]
                        )
                    # Walk forward until attenuated away. The first shared
                    # element decides for each victim: a co-entering victim
                    # receives the noise (it follows the victim's configured
                    # route from there); any other encounter shields the
                    # victim (crossing guide, or its ON ring diverts the
                    # noise — a second-order residual the model zeroes).
                    walk_loss = 1.0
                    position_next = follow((step.element, emission_port))
                    steps = 0
                    while (
                        position_next is not None
                        and walk_loss > WALK_LOSS_CUTOFF_LINEAR
                        and steps < _MAX_WALK_STEPS
                    ):
                        steps += 1
                        element, in_port = position_next
                        for victim_pair, position, victim_in in entry_index.get(
                            element, ()
                        ):
                            if victim_pair in credited:
                                continue
                            credited.add(victim_pair)
                            if victim_in != in_port:
                                continue
                            victim = pair_paths[victim_pair]
                            coupling[victim_pair, aggressor_pair] += (
                                base
                                * walk_loss
                                * victim.total_linear
                                / victim.cum_in_linear[position]
                            )
                        walk_loss *= passive_linear(element, in_port)
                        position_next = follow(
                            (element, straight_output(elements[element].kind, in_port))
                        )

    # -- caching ---------------------------------------------------------------------

    @classmethod
    def for_network(
        cls, network: PhotonicNoC, dtype=np.float64, use_cache: bool = True
    ) -> "CouplingModel":
        """Build (or fetch from the process cache) the model for a network."""
        key = f"{network.signature}|{np.dtype(dtype).name}"
        if use_cache:
            cached = _CACHE.get(key)
            if cached is not None:
                return cached
        model = cls(network, dtype=dtype)
        if use_cache:
            _CACHE[key] = model
        return model


def clear_model_cache() -> None:
    """Drop all cached coupling models (mainly for tests)."""
    _CACHE.clear()
