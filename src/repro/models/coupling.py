"""Vectorized all-pairs coupling matrices for one architecture.

Evaluating the worst-case SNR of a mapping needs, for every ordered pair of
tile-to-tile paths, the noise the aggressor injects into the victim. This
module precomputes that once per architecture:

* ``signal_linear[p]`` — end-to-end transmission of path ``p``;
* ``insertion_loss_db[p]`` — the same in dB (eq. 3's per-edge term);
* ``coupling_linear[v, a]`` — noise power at the detector of victim path
  ``v`` per unit power injected by aggressor path ``a`` (the first-order
  walk model of :mod:`repro.models.crosstalk`, applied to all pairs at
  once via an element exit index).

Paths are indexed ``p = src * n_tiles + dst``. With the matrices in hand, a
mapping evaluation is a handful of numpy gathers (see
:class:`repro.core.evaluator.MappingEvaluator`), which is what makes the
paper's 100,000-random-mappings experiment and the optimizer loops cheap.

The matrices encode pure physics: *every* pair of simultaneously active
paths couples. Which pairs can actually be simultaneously active (the
transmitter/receiver serialization of DESIGN.md §3) is decided at the
communication-graph level by the evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.models.crosstalk import WALK_LOSS_CUTOFF_LINEAR, _MAX_WALK_STEPS
from repro.noc.network import PhotonicNoC
from repro.photonics.elements import (
    ElementKind,
    passive_loss_db,
    straight_output,
    traversal_emissions,
)
from repro.photonics.units import db_to_linear

__all__ = [
    "CouplingModel",
    "SharedModelSpec",
    "SharedCouplingModel",
    "clear_model_cache",
]

_CACHE: Dict[str, "CouplingModel"] = {}


@dataclass(frozen=True)
class SharedModelSpec:
    """Pickle-friendly handle describing an exported coupling model.

    Carries everything a worker process needs to attach the parent's
    matrices without rebuilding them: the shared-memory segment name, the
    layout parameters, and the process-cache key under which the attached
    model should be registered so that :meth:`CouplingModel.for_network`
    finds it transparently.
    """

    shm_name: str
    cache_key: str
    n_tiles: int
    dtype: str
    with_transpose: bool

    @property
    def n_pairs(self) -> int:
        return self.n_tiles * self.n_tiles

    def _layout(self):
        """(name, dtype, shape, offset) for each array in the segment."""
        dtype = np.dtype(self.dtype)
        n_pairs = self.n_pairs
        layout = []
        offset = 0
        for name, dt, shape in (
            ("signal_linear", np.dtype(np.float64), (n_pairs,)),
            ("insertion_loss_db", np.dtype(np.float64), (n_pairs,)),
            ("coupling_linear", dtype, (n_pairs, n_pairs)),
        ):
            layout.append((name, dt, shape, offset))
            offset += dt.itemsize * int(np.prod(shape))
        if self.with_transpose:
            layout.append(("coupling_linear_T", dtype, (n_pairs, n_pairs), offset))
            offset += dtype.itemsize * n_pairs * n_pairs
        return layout, offset

    @property
    def nbytes(self) -> int:
        return self._layout()[1]


class SharedCouplingModel:
    """Owner-side lifecycle handle for an exported coupling model.

    Created by :meth:`CouplingModel.export_shared`; the owner keeps it
    alive while worker processes are attached and calls :meth:`close`
    (which also unlinks) once the pool has shut down. Usable as a context
    manager.
    """

    def __init__(self, spec: SharedModelSpec, shm) -> None:
        self.spec = spec
        self._shm = shm

    def close(self) -> None:
        """Detach and remove the segment (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedCouplingModel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _attach_segment(name: str):
    """Attach an existing shared-memory segment without claiming ownership.

    Python < 3.13 registers every attached segment with the resource
    tracker as if the attacher owned it: under ``spawn`` the attacher's
    own tracker would unlink the segment (with a warning) when the
    attacher exits, and under ``fork`` — where the tracker process is
    shared with the exporter — an unregister-after-attach workaround
    would cancel the *exporter's* registration and make its eventual
    unlink double-unregister. Suppressing registration for the duration
    of the attach is correct in both modes: only the exporting process
    ever tracks (and unlinks) the segment.
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class CouplingModel:
    """Precomputed signal/coupling matrices for a :class:`PhotonicNoC`."""

    def __init__(self, network: PhotonicNoC, dtype=np.float64) -> None:
        self.network = network
        self.n_tiles = network.topology.n_tiles
        self.n_pairs = self.n_tiles * self.n_tiles
        self.signal_linear = np.zeros(self.n_pairs, dtype=np.float64)
        self.insertion_loss_db = np.full(self.n_pairs, np.nan, dtype=np.float64)
        self.coupling_linear = np.zeros((self.n_pairs, self.n_pairs), dtype=dtype)
        self._coupling_T: Optional[np.ndarray] = None
        self._shared_handle: Optional["SharedCouplingModel"] = None
        self._build()

    @property
    def coupling_linear_T(self) -> np.ndarray:
        """Contiguous transpose of :attr:`coupling_linear`, built lazily.

        The delta evaluator gathers ``coupling_linear[v, a]`` with ``a``
        fixed and ``v`` running over a victim set; on the row-major
        ``coupling_linear`` that walk is one cache miss per element, on
        the transpose it stays inside one row. Only delta users pay the
        doubled memory.
        """
        if self._coupling_T is None:
            self._coupling_T = np.ascontiguousarray(self.coupling_linear.T)
        return self._coupling_T

    # -- indexing ----------------------------------------------------------------

    def pair_index(self, src_tile: int, dst_tile: int) -> int:
        """Flat index of the ordered tile pair."""
        return src_tile * self.n_tiles + dst_tile

    def pair_indices(self, src_tiles: np.ndarray, dst_tiles: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`pair_index`."""
        return src_tiles * self.n_tiles + dst_tiles

    # -- construction --------------------------------------------------------------

    def _build(self) -> None:
        network = self.network
        params = network.params
        paths = network.all_paths()

        # Exit index: (element, out_port) -> [(pair, position), ...] for the
        # direct joins at the emitting element. Entry index: element ->
        # [(pair, position, in_port), ...] for the walk joins (a walk joins
        # a victim only by co-entering the first shared element).
        exit_index: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        entry_index: Dict[int, List[Tuple[int, int, int]]] = {}
        pair_paths: Dict[int, object] = {}
        for (src, dst), path in paths.items():
            pair = self.pair_index(src, dst)
            pair_paths[pair] = path
            self.signal_linear[pair] = path.total_linear
            self.insertion_loss_db[pair] = path.loss_db
            for position, step in enumerate(path.traversals):
                exit_index.setdefault((step.element, step.out_port), []).append(
                    (pair, position)
                )
                entry_index.setdefault(step.element, []).append(
                    (pair, position, step.in_port)
                )

        # Per-element passive linear losses, cached by (element, in_port).
        passive_cache: Dict[Tuple[int, int], float] = {}

        def passive_linear(element: int, in_port: int) -> float:
            key = (element, in_port)
            value = passive_cache.get(key)
            if value is None:
                info = network.element(element)
                value = db_to_linear(
                    passive_loss_db(info.kind, in_port, params, info.length_cm)
                )
                passive_cache[key] = value
            return value

        emission_cache: Dict[Tuple[ElementKind, int, int, object], tuple] = {}

        def emissions_of(kind, in_port, out_port, state):
            key = (kind, in_port, out_port, state)
            value = emission_cache.get(key)
            if value is None:
                value = tuple(
                    (db_to_linear(e.coefficient_db), e.out_port)
                    for e in traversal_emissions(kind, in_port, out_port, state, params)
                )
                emission_cache[key] = value
            return value

        coupling = self.coupling_linear
        follow = network.wiring.get
        elements = network.elements

        for (src, dst), path in paths.items():
            aggressor_pair = self.pair_index(src, dst)
            cum_in = path.cum_in_linear
            for index, step in enumerate(path.traversals):
                info = elements[step.element]
                if info.kind is ElementKind.WAVEGUIDE:
                    continue
                emitted = emissions_of(info.kind, step.in_port, step.out_port, step.state)
                if not emitted:
                    continue
                power_at_input = cum_in[index]
                for k_linear, emission_port in emitted:
                    base = k_linear * power_at_input
                    credited = set()
                    credited.add(aggressor_pair)
                    # Join at the emitting element: no loss inside the
                    # generating switch.
                    for victim_pair, position in exit_index.get(
                        (step.element, emission_port), ()
                    ):
                        if victim_pair in credited:
                            continue
                        credited.add(victim_pair)
                        victim = pair_paths[victim_pair]
                        coupling[victim_pair, aggressor_pair] += (
                            base
                            * victim.total_linear
                            / victim.cum_out_linear[position]
                        )
                    # Walk forward until attenuated away. The first shared
                    # element decides for each victim: a co-entering victim
                    # receives the noise (it follows the victim's configured
                    # route from there); any other encounter shields the
                    # victim (crossing guide, or its ON ring diverts the
                    # noise — a second-order residual the model zeroes).
                    walk_loss = 1.0
                    position_next = follow((step.element, emission_port))
                    steps = 0
                    while (
                        position_next is not None
                        and walk_loss > WALK_LOSS_CUTOFF_LINEAR
                        and steps < _MAX_WALK_STEPS
                    ):
                        steps += 1
                        element, in_port = position_next
                        for victim_pair, position, victim_in in entry_index.get(
                            element, ()
                        ):
                            if victim_pair in credited:
                                continue
                            credited.add(victim_pair)
                            if victim_in != in_port:
                                continue
                            victim = pair_paths[victim_pair]
                            coupling[victim_pair, aggressor_pair] += (
                                base
                                * walk_loss
                                * victim.total_linear
                                / victim.cum_in_linear[position]
                            )
                        walk_loss *= passive_linear(element, in_port)
                        position_next = follow(
                            (element, straight_output(elements[element].kind, in_port))
                        )

    # -- multi-process sharing ---------------------------------------------------------

    def export_shared(self, with_transpose: bool = True) -> SharedCouplingModel:
        """Copy the read-only matrices into a shared-memory segment.

        Returns the owner-side handle whose :attr:`~SharedCouplingModel.spec`
        is what worker processes pass to :meth:`attach_shared`. With
        ``with_transpose`` (the default) the contiguous transpose used by
        the delta evaluator is exported too, so workers never build their
        own copy. The owner must keep the handle alive while workers are
        attached and :meth:`~SharedCouplingModel.close` it afterwards.

        Raises whatever :mod:`multiprocessing.shared_memory` raises when
        segments are unavailable (callers fall back to fork inheritance /
        per-worker rebuilds).
        """
        from multiprocessing import shared_memory

        spec = SharedModelSpec(
            shm_name="",
            cache_key=self.cache_key(self.network, self.coupling_linear.dtype),
            n_tiles=self.n_tiles,
            dtype=self.coupling_linear.dtype.name,
            with_transpose=bool(with_transpose),
        )
        layout, nbytes = spec._layout()
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        spec = SharedModelSpec(
            shm_name=shm.name,
            cache_key=spec.cache_key,
            n_tiles=spec.n_tiles,
            dtype=spec.dtype,
            with_transpose=spec.with_transpose,
        )
        sources = {
            "signal_linear": self.signal_linear,
            "insertion_loss_db": self.insertion_loss_db,
            "coupling_linear": self.coupling_linear,
        }
        if with_transpose:
            sources["coupling_linear_T"] = self.coupling_linear_T
        for name, dt, shape, offset in layout:
            view = np.ndarray(shape, dtype=dt, buffer=shm.buf, offset=offset)
            view[...] = sources[name]
        return SharedCouplingModel(spec, shm)

    def shared_export(self) -> SharedCouplingModel:
        """The cached shared-memory export of this model.

        Copying the matrices into a segment costs real time on big
        architectures (~1.3 s for a 64-tile mesh's 2 x 134 MB), so the
        export is created once per process and reused by every worker
        pool; the segment is unlinked by :func:`clear_model_cache` or at
        interpreter exit, whichever comes first.
        """
        if self._shared_handle is None or self._shared_handle._shm is None:
            self._shared_handle = self.export_shared()
            _register_export(self._shared_handle)
        return self._shared_handle

    @classmethod
    def attach_shared(
        cls, spec: SharedModelSpec, network: PhotonicNoC
    ) -> "CouplingModel":
        """Attach to an exported model without rebuilding anything.

        The returned instance's matrices are read-only views on the shared
        segment; the segment handle is kept alive on the instance, and the
        exporting process owns unlinking. Intended to run in pool workers
        (see :mod:`repro.core.parallel`), which also seed the process
        cache so :meth:`for_network` resolves to the attached model.
        """
        shm = _attach_segment(spec.shm_name)
        layout, _ = spec._layout()
        model = cls.__new__(cls)
        model.network = network
        model.n_tiles = spec.n_tiles
        model.n_pairs = spec.n_pairs
        model._coupling_T = None
        model._shared_handle = None
        model._shm = shm  # keeps the mapping alive as long as the model
        for name, dt, shape, offset in layout:
            view = np.ndarray(shape, dtype=dt, buffer=shm.buf, offset=offset)
            view.flags.writeable = False
            if name == "coupling_linear_T":
                model._coupling_T = view
            else:
                setattr(model, name, view)
        return model

    # -- caching ---------------------------------------------------------------------

    @staticmethod
    def cache_key(network: PhotonicNoC, dtype) -> str:
        """Process-cache key of the model for ``network`` at ``dtype``."""
        return f"{network.signature}|{np.dtype(dtype).name}"

    @classmethod
    def register(cls, key: str, model: "CouplingModel") -> None:
        """Seed the process cache (worker-side of shared-memory attach)."""
        _CACHE[key] = model

    @classmethod
    def for_network(
        cls, network: PhotonicNoC, dtype=np.float64, use_cache: bool = True
    ) -> "CouplingModel":
        """Build (or fetch from the process cache) the model for a network."""
        key = cls.cache_key(network, dtype)
        if use_cache:
            cached = _CACHE.get(key)
            if cached is not None:
                return cached
        model = cls(network, dtype=dtype)
        if use_cache:
            _CACHE[key] = model
        return model


#: Shared-memory exports owned by this process, unlinked at exit.
_EXPORTS: List[SharedCouplingModel] = []


def _register_export(handle: SharedCouplingModel) -> None:
    if not _EXPORTS:
        import atexit

        atexit.register(_close_exports)
    _EXPORTS.append(handle)


def _close_exports() -> None:
    """Unlink every shared-memory export this process still owns."""
    while _EXPORTS:
        _EXPORTS.pop().close()


def clear_model_cache() -> None:
    """Drop all cached coupling models and their shared exports."""
    _close_exports()
    _CACHE.clear()
