"""Laser power budget and network feasibility (paper §I).

"The power of an optical signal must be above a certain threshold when
arriving at the photodetectors ... the power injected into the chip must be
higher than the photodetector sensitivity plus the worst-case power loss.
However, the total power cannot exceed a certain threshold due to the
nonlinearities of the silicon material."

This module turns those two sentences into numbers: given a worst-case
insertion loss (from the mapping evaluator) and a technology budget, it
computes the required laser power and whether the network is feasible at
all — which is how mapping optimization "enables improved network
scalability" (quantified by :mod:`repro.analysis.scalability`).

Default constants are typical silicon-photonics figures: -20 dBm detector
sensitivity, +10 dBm nonlinearity ceiling, 1 dB system margin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, ModelError

__all__ = ["PowerBudget", "required_laser_power_dbm", "max_tolerable_loss_db", "is_feasible"]


@dataclass(frozen=True)
class PowerBudget:
    """Technology power constraints of the optical layer."""

    detector_sensitivity_dbm: float = -20.0
    max_injected_power_dbm: float = 10.0
    system_margin_db: float = 1.0

    def __post_init__(self) -> None:
        if self.system_margin_db < 0:
            raise ConfigurationError(
                f"system margin must be >= 0 dB, got {self.system_margin_db}"
            )
        if self.max_injected_power_dbm <= self.detector_sensitivity_dbm:
            raise ConfigurationError(
                "the nonlinearity ceiling must exceed the detector sensitivity"
            )


def required_laser_power_dbm(
    worst_case_loss_db: float, budget: PowerBudget = PowerBudget()
) -> float:
    """Laser power needed so the worst path still reaches the detector."""
    if worst_case_loss_db > 0:
        raise ModelError(
            f"insertion loss must be <= 0 dB, got {worst_case_loss_db}"
        )
    return (
        budget.detector_sensitivity_dbm
        - worst_case_loss_db
        + budget.system_margin_db
    )


def max_tolerable_loss_db(budget: PowerBudget = PowerBudget()) -> float:
    """The most negative worst-case loss the technology can support."""
    return -(
        budget.max_injected_power_dbm
        - budget.detector_sensitivity_dbm
        - budget.system_margin_db
    )


def is_feasible(
    worst_case_loss_db: float, budget: PowerBudget = PowerBudget()
) -> bool:
    """Whether a network with this worst-case loss can operate at all."""
    return (
        required_laser_power_dbm(worst_case_loss_db, budget)
        <= budget.max_injected_power_dbm
    )
