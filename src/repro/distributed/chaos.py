"""Deterministic fault injection for the distributed execution stack.

Chaos engineering, minus the chaos: faults here are **counted, not
random**. A :class:`Fault` names an instrumented *site* (a point in the
worker's serve loop), an *action*, and the hit indices it fires on —
``at`` (1-based first hit) and ``count`` (consecutive hits). A
:class:`ChaosPlan` is a set of faults with thread-safe per-site hit
counters. Because triggers are counted per process rather than drawn
from an RNG, a failing chaos test replays exactly, and the determinism
contract stays checkable: for a given ``(seed, n_workers)`` the final
results must be bit-identical to the inline oracle no matter which
faults fired.

Sites (all worker-side — the hub is the component under test, so it is
never instrumented):

``worker.loop``
    Top of the worker's message loop, before reading the next frame.
``worker.init``
    Before handling an ``init`` (context shipping / model hydration).
``worker.task``
    Before executing a dispatched task.
``worker.result``
    Before sending a task reply (the ``corrupt`` action mangles it).

Actions:

``delay``
    Sleep ``seconds`` (default 0.25) — a slow worker / slow frame.
``hang``
    Sleep ``seconds`` (default 30) — a silent worker; long enough to
    overrun any test-scale heartbeat budget or task deadline.
``drop``
    Raise ``ConnectionError`` at the site — a dropped connection.
``kill``
    ``os._exit(137)`` — a SIGKILL-grade mid-task death. Only meaningful
    in subprocess workers (an in-thread worker would take the test
    process down with it).
``corrupt``
    Return the marker string ``"corrupt"`` so the site mangles its
    *output* (the worker sends an undecodable result payload; the hub
    must retire the connection and re-place the task).

Plans install per process (:func:`install` / :func:`uninstall`) or ride
the ``PHONOCMAP_CHAOS`` environment variable into worker subprocesses —
``site:action[:key=value]...`` terms joined by ``;``, e.g.::

    PHONOCMAP_CHAOS='worker.task:hang:at=2:seconds=30;worker.result:corrupt'

:func:`run_scenario` packages the named end-to-end scenarios the
``phonocmap chaos`` CLI, the chaos test suite and
``benchmarks/bench_chaos.py`` share: each builds a small mapping
problem, computes the inline-oracle answer, runs the same workload on a
TCP fleet with one misbehaving worker (or a degraded/paranoid hub), and
asserts the contract — bit-identical results, or a fast typed failure
where the scenario's policy demands one.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError

__all__ = [
    "ACTIONS",
    "ChaosPlan",
    "Fault",
    "SCENARIOS",
    "SITES",
    "active",
    "install",
    "install_from_env",
    "parse_spec",
    "run_scenario",
    "trip",
    "uninstall",
]

#: Known injection sites (free-form site names are allowed for forward
#: compatibility, but these are the instrumented ones).
SITES = ("worker.loop", "worker.init", "worker.task", "worker.result")

#: Valid fault actions and their default ``seconds``.
ACTIONS = {"delay": 0.25, "hang": 30.0, "drop": None, "kill": None, "corrupt": None}


class Fault:
    """One deterministic fault: a site, an action, and its trigger window."""

    __slots__ = ("site", "action", "at", "count", "seconds")

    def __init__(
        self,
        site: str,
        action: str,
        at: int = 1,
        count: int = 1,
        seconds: Optional[float] = None,
    ):
        if action not in ACTIONS:
            raise ConfigurationError(
                f"chaos action must be one of {sorted(ACTIONS)}, got {action!r}"
            )
        if at < 1 or count < 1:
            raise ConfigurationError(
                f"chaos trigger window must be positive, got at={at} count={count}"
            )
        self.site = str(site)
        self.action = action
        self.at = int(at)
        self.count = int(count)
        default = ACTIONS[action]
        self.seconds = float(seconds) if seconds is not None else default

    def matches(self, hit: int) -> bool:
        """Whether this fault fires on the ``hit``-th visit to its site."""
        return self.at <= hit < self.at + self.count

    def spec(self) -> str:
        """The ``PHONOCMAP_CHAOS`` term encoding this fault."""
        term = f"{self.site}:{self.action}:at={self.at}:count={self.count}"
        if self.seconds is not None and self.seconds != ACTIONS[self.action]:
            term += f":seconds={self.seconds:g}"
        return term

    def __repr__(self) -> str:
        return f"Fault({self.spec()!r})"


class ChaosPlan:
    """A set of faults plus thread-safe hit accounting for one process."""

    def __init__(self, faults: Iterable[Fault]):
        self.faults: List[Fault] = list(faults)
        self._hits: Dict[str, int] = {}
        self._lock = threading.Lock()
        #: ``(site, action, hit)`` triples, in trigger order (diagnostics).
        self.triggered: List[tuple] = []

    def take(self, site: str) -> Optional[Fault]:
        """Count one visit to ``site``; return the fault firing on it."""
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            for fault in self.faults:
                if fault.site == site and fault.matches(hit):
                    self.triggered.append((site, fault.action, hit))
                    return fault
        return None

    def hits(self) -> Dict[str, int]:
        """Per-site visit counts so far."""
        with self._lock:
            return dict(self._hits)

    def spec(self) -> str:
        """The ``PHONOCMAP_CHAOS`` string encoding this plan."""
        return ";".join(fault.spec() for fault in self.faults)

    def __repr__(self) -> str:
        return f"ChaosPlan({self.spec()!r})"


def parse_spec(text: str) -> ChaosPlan:
    """Parse a ``PHONOCMAP_CHAOS`` string into a :class:`ChaosPlan`."""
    faults = []
    for term in text.split(";"):
        term = term.strip()
        if not term:
            continue
        fields = term.split(":")
        if len(fields) < 2:
            raise ConfigurationError(
                f"chaos term must be 'site:action[:key=value]...', got {term!r}"
            )
        site, action = fields[0], fields[1]
        kwargs: dict = {}
        for field in fields[2:]:
            key, sep, value = field.partition("=")
            if not sep or key not in ("at", "count", "seconds"):
                raise ConfigurationError(
                    f"chaos fault option must be at=/count=/seconds=, "
                    f"got {field!r} in {term!r}"
                )
            try:
                kwargs[key] = float(value) if key == "seconds" else int(value)
            except ValueError:
                raise ConfigurationError(
                    f"bad chaos option value {field!r} in {term!r}"
                ) from None
        faults.append(Fault(site, action, **kwargs))
    return ChaosPlan(faults)


_PLAN: Optional[ChaosPlan] = None


def install(plan: ChaosPlan) -> ChaosPlan:
    """Install a plan for this process (replacing any active one)."""
    global _PLAN
    _PLAN = plan
    return plan


def uninstall() -> Optional[ChaosPlan]:
    """Remove the active plan; returns it (with its trigger history)."""
    global _PLAN
    plan, _PLAN = _PLAN, None
    return plan


def active() -> Optional[ChaosPlan]:
    """The currently installed plan, if any."""
    return _PLAN


def install_from_env() -> Optional[ChaosPlan]:
    """Install the plan ``PHONOCMAP_CHAOS`` describes, if set.

    This is how a plan reaches ``phonocmap worker`` subprocesses: the
    scenario runner (or an operator reproducing an incident) sets the
    variable in the worker's environment and the worker installs it at
    startup.
    """
    spec = os.environ.get("PHONOCMAP_CHAOS")
    if not spec:
        return None
    return install(parse_spec(spec))


def trip(site: str) -> Optional[str]:
    """Visit an injection site; perform/report the firing fault's action.

    Returns ``None`` (no fault — the overwhelmingly common, nearly free
    path), or the action name after performing its side effect:
    ``delay``/``hang`` have already slept, ``drop`` raises
    ``ConnectionError``, ``kill`` does not return, and ``corrupt`` is
    returned for the call site to mangle its own output.
    """
    plan = _PLAN
    if plan is None:
        return None
    fault = plan.take(site)
    if fault is None:
        return None
    action = fault.action
    if action in ("delay", "hang"):
        time.sleep(fault.seconds)
        return action
    if action == "drop":
        raise ConnectionError(f"chaos: dropped connection at {site}")
    if action == "kill":
        os._exit(137)
    return action  # "corrupt": the site mangles its output


# ---------------------------------------------------------------------------
# End-to-end scenarios
# ---------------------------------------------------------------------------

#: Scenario name -> description. Fault-plan scenarios run a compare on a
#: TCP fleet of clean workers plus one misbehaving worker; the special
#: scenarios exercise fleet collapse (both policies) and authentication.
SCENARIOS = {
    "baseline": "no faults: plain TCP fleet vs the inline oracle",
    "hang": "a worker hangs mid-task; the soft deadline re-places the task",
    "silent": "a worker goes silent while idle; heartbeats retire it",
    "kill": "a worker dies (os._exit) mid-task; the task is re-placed",
    "corrupt": "a worker sends an undecodable result; connection retired",
    "drop": "a worker drops its connection mid-task",
    "slow": "a worker delays every reply; results unchanged, just later",
    "fleet-degrade": "no workers at all; policy 'degrade' finishes locally",
    "fleet-raise": "no workers at all; policy 'raise' fails fast, typed",
    "auth": "an unauthenticated worker is rejected; authed fleet proceeds",
}

#: Fault plans for the fleet-of-workers scenarios (the misbehaving
#: worker's ``PHONOCMAP_CHAOS``). ``at=1``: the first task (or loop
#: visit) the chaotic worker sees misfires — it connects first, so it
#: sees one.
_SCENARIO_FAULTS = {
    "baseline": None,
    "hang": "worker.task:hang:seconds=30",
    "silent": "worker.loop:hang:at=2:seconds=30",
    "kill": "worker.task:kill",
    "corrupt": "worker.result:corrupt",
    "drop": "worker.task:drop",
    "slow": "worker.task:delay:count=3:seconds=0.3",
}

_AUTH_TOKEN = "chaos-scenario-token"


def _spawn_worker(port: int, cache_dir: str, extra_env: Optional[dict] = None):
    """Start a ``phonocmap worker`` subprocess against a hub port."""
    import subprocess
    import sys

    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("PHONOCMAP_CHAOS", None)  # clean workers stay clean
    if extra_env:
        env.update(extra_env)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--connect", f"127.0.0.1:{port}", "--model-cache", cache_dir],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_workers(hub, count: int, timeout: float = 60.0) -> None:
    """Wait until ``count`` spawned workers have *settled* with the hub.

    Settled means connected, rejected at auth, or connected-then-lost —
    the sum covers every fate a spawned worker can meet, so the wait
    cannot deadlock when a chaotic worker is heartbeat-reaped while the
    rest of the fleet is still dialing in.
    """
    deadline = time.monotonic() + timeout
    while (
        hub.workers_connected + hub.workers_lost + hub.workers_rejected_auth
    ) < count:
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"only {hub.workers_connected}/{count} workers connected"
            )
        time.sleep(0.05)


def _results_identical(reference: dict, candidate: dict) -> bool:
    import numpy as np

    for strategy, ref in reference.items():
        got = candidate[strategy]
        if (
            got.best_score != ref.best_score
            or got.evaluations != ref.evaluations
            or got.history != ref.history
            or not np.array_equal(
                got.best_mapping.assignment, ref.best_mapping.assignment
            )
        ):
            return False
    return True


def run_scenario(
    name: str,
    app: str = "mwd",
    budget: int = 600,
    seed: int = 13,
    n_workers: int = 2,
    strategies: Optional[List[str]] = None,
    task_deadline_s: float = 4.0,
) -> dict:
    """Run one named chaos scenario end to end; returns a report dict.

    The report carries ``ok`` (the scenario's contract held), the
    observed ``outcome`` (``"identical"`` or ``"raised:<Type>"``), wall
    times for the oracle and the faulted run, and the hub's counters.
    Raises :class:`ConfigurationError` for an unknown scenario name —
    infrastructure failures (workers that never connect) propagate as
    their own exceptions rather than being folded into ``ok``.
    """
    import tempfile

    from repro.analysis.experiments import build_case_study_network
    from repro.appgraph.benchmarks import grid_side_for, load_benchmark
    from repro.core import executor as _executor
    from repro.core.dse import DesignSpaceExplorer
    from repro.core.executor import WorkerLostError
    from repro.core.pool import release_pools
    from repro.core.problem import MappingProblem
    from repro.distributed.scheduler import get_hub
    from repro.models.coupling import CouplingModel

    if name not in SCENARIOS:
        raise ConfigurationError(
            f"unknown chaos scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    strategies = list(strategies or ("rs", "ga"))
    fleet_scenario = name in ("fleet-degrade", "fleet-raise")

    cg = load_benchmark(app)
    network = build_case_study_network("mesh", grid_side_for(cg), "crux")
    problem = MappingProblem(cg, network, "snr")

    report = {
        "scenario": name,
        "description": SCENARIOS[name],
        "app": app,
        "budget": budget,
        "seed": seed,
        "n_workers": n_workers,
        "strategies": strategies,
    }

    with tempfile.TemporaryDirectory() as cache_dir:
        CouplingModel.for_network(network, cache_dir=cache_dir).save_cached(
            cache_dir
        )
        oracle = DesignSpaceExplorer(
            problem, n_workers=n_workers, executor="inline",
            model_cache_dir=cache_dir,
        )
        started = time.perf_counter()
        reference = oracle.compare(
            strategies, budget=budget, seed=seed, n_workers=n_workers
        )
        report["oracle_wall_s"] = time.perf_counter() - started

        hub = get_hub(
            "tcp://127.0.0.1:0",
            heartbeat_interval_s=0.5,
            heartbeat_timeout_s=0.5,
            heartbeat_misses=2,
            task_deadline_s=task_deadline_s,
            auth_token=_AUTH_TOKEN if name == "auth" else None,
        )
        spec = f"tcp://127.0.0.1:{hub.port}"
        workers = []
        saved_policy = None
        saved_env = {
            key: os.environ.get(key)
            for key in ("PHONOCMAP_WORKER_WAIT_TIMEOUT_S", "PHONOCMAP_DEGRADE_TO")
        }
        try:
            if fleet_scenario:
                # No workers, a short first-worker wait, and the policy
                # under test; "degrade" falls straight to the inline
                # rung — scenarios must not assume spare CPUs.
                os.environ["PHONOCMAP_WORKER_WAIT_TIMEOUT_S"] = "1"
                os.environ["PHONOCMAP_DEGRADE_TO"] = "inline"
                saved_policy = _executor.set_worker_loss_policy(
                    "degrade" if name == "fleet-degrade" else "raise"
                )
            else:
                clean_workers = n_workers
                if name == "auth":
                    # The intruder knows no token; the fleet does.
                    workers.append(_spawn_worker(hub.port, cache_dir))
                    fleet_env = {"PHONOCMAP_AUTH_TOKEN": _AUTH_TOKEN}
                    deadline = time.monotonic() + 30
                    while hub.workers_rejected_auth == 0:
                        if time.monotonic() > deadline:
                            raise TimeoutError("intruder was never rejected")
                        time.sleep(0.05)
                else:
                    fleet_env = {}
                    fault_spec = _SCENARIO_FAULTS[name]
                    if fault_spec:
                        # The chaotic worker connects first and
                        # *completes* the fleet (chaotic + n-1 clean):
                        # with exactly as many workers as concurrently
                        # dispatched tasks, every worker — the chaotic
                        # one included — is guaranteed to receive one,
                        # so the fault deterministically fires.
                        workers.append(
                            _spawn_worker(
                                hub.port, cache_dir,
                                {"PHONOCMAP_CHAOS": fault_spec},
                            )
                        )
                        _wait_for_workers(hub, 1)
                        clean_workers = max(1, n_workers - 1)
                for _ in range(clean_workers):
                    workers.append(
                        _spawn_worker(hub.port, cache_dir, fleet_env)
                    )
                _wait_for_workers(hub, len(workers))
                if name == "silent":
                    # The hung worker must be reaped by heartbeats while
                    # *idle* — before any task exists that a deadline
                    # could catch instead. interval + misses × timeout
                    # bounds this at seconds, not the 20 allowed here.
                    deadline = time.monotonic() + 20
                    while hub.workers_lost == 0:
                        if time.monotonic() > deadline:
                            raise TimeoutError(
                                "silent worker was never heartbeat-reaped"
                            )
                        time.sleep(0.05)

            explorer = DesignSpaceExplorer(
                problem, n_workers=n_workers, executor=spec,
                model_cache_dir=cache_dir,
            )
            started = time.perf_counter()
            outcome = "identical"
            try:
                candidate = explorer.compare(
                    strategies, budget=budget, seed=seed, n_workers=n_workers
                )
                if not _results_identical(reference, candidate):
                    outcome = "mismatch"
            except WorkerLostError:
                outcome = "raised:WorkerLostError"
            report["faulted_wall_s"] = time.perf_counter() - started
            report["outcome"] = outcome
            report["hub"] = hub.stats()

            expected = (
                "raised:WorkerLostError" if name == "fleet-raise" else "identical"
            )
            report["expected"] = expected
            ok = outcome == expected
            if name == "auth":
                ok = ok and report["hub"]["workers_rejected_auth"] >= 1
            if name in ("hang", "silent", "kill", "corrupt", "drop"):
                ok = ok and report["hub"]["workers_lost"] >= 1
            report["ok"] = ok
        finally:
            if saved_policy is not None or fleet_scenario:
                _executor.set_worker_loss_policy(saved_policy)
            for key, value in saved_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
            release_pools(problem=problem)
            hub.close()
            for worker in workers:
                if worker.poll() is None:
                    worker.terminate()
            for worker in workers:
                try:
                    worker.wait(timeout=10)
                except Exception:
                    worker.kill()
    return report
