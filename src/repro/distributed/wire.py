"""Newline-JSON framing shared by the service and the distributed stack.

One message per line: a JSON object, UTF-8 encoded, terminated by
``\\n``. This is the PR 6 service framing, factored out so the
``phonocmap worker`` / scheduler link (:mod:`repro.distributed.worker`,
:mod:`repro.distributed.scheduler`) and the unix-socket service
transport (:mod:`repro.service.server`) speak the same protocol with the
same code.

Binary values (pickled problems, streamed model arrays) ride inside the
JSON envelope as zlib-compressed, base64-encoded pickle payloads —
:func:`encode_payload` / :func:`decode_payload`. JSON-with-base64 is
deliberate over a binary framing: it keeps the protocol debuggable with
``nc`` and needs nothing beyond the standard library (the container has
no msgpack). The big payloads are rare by design — the distributed
scheduler ships ~40-byte model cache keys, not matrices — so the base64
overhead is confined to the one-time cache-miss fallback.

Robustness limits
-----------------
Both framing layers are bounded so a malformed or hostile peer cannot
make the reader allocate unbounded memory:

* :func:`read_frame` / :func:`read_message` cap the raw line length at
  ``max_bytes`` (default :func:`max_frame_bytes`, 64 MiB, env
  ``PHONOCMAP_MAX_FRAME_BYTES``); an over-long frame raises
  :class:`~repro.errors.ProtocolError` instead of buffering forever.
* :func:`decode_payload` caps the *decompressed* pickle size at
  ``max_bytes`` (default :func:`max_payload_bytes`, 1 GiB, env
  ``PHONOCMAP_MAX_PAYLOAD_BYTES``) via an incremental ``decompressobj``,
  so a small zlib bomb cannot expand past the cap before being rejected.

Socket timeouts propagate: :func:`read_frame` translates connection
errors to ``None`` (peer gone — nothing more to say) but re-raises
:class:`TimeoutError`, because a *silent* peer is a different condition
from a *gone* one — the scheduler's heartbeat / task-deadline machinery
keys on exactly that distinction.

Security note: payloads are **pickle** and are only ever exchanged
between a scheduler and workers that authenticated with the shared
token (``PHONOCMAP_AUTH_TOKEN`` — see
:mod:`repro.distributed.scheduler`) on hosts the same user controls;
the worker CLI refuses to listen on public interfaces by default for
the same reason.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import zlib
from typing import Any, Optional

from repro.errors import ProtocolError

__all__ = [
    "decode_payload",
    "encode_payload",
    "max_frame_bytes",
    "max_payload_bytes",
    "read_frame",
    "read_message",
    "write_message",
]

#: Default raw-frame (line) length cap; env ``PHONOCMAP_MAX_FRAME_BYTES``
#: overrides. Large enough for sharded metric tables and explicit
#: mapping batches, small enough that one hostile line cannot OOM a hub.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Default decompressed-payload cap; env ``PHONOCMAP_MAX_PAYLOAD_BYTES``
#: overrides. Generous because the one-time model-stream fallback is a
#: legitimate multi-hundred-MB payload on large meshes.
DEFAULT_MAX_PAYLOAD_BYTES = 1024 * 1024 * 1024


def _env_int(name: str, default: int) -> int:
    """An integer environment override, falling back on bad values."""
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def max_frame_bytes() -> int:
    """The effective raw-frame length cap (env-overridable)."""
    return _env_int("PHONOCMAP_MAX_FRAME_BYTES", DEFAULT_MAX_FRAME_BYTES)


def max_payload_bytes() -> int:
    """The effective decompressed-payload cap (env-overridable)."""
    return _env_int("PHONOCMAP_MAX_PAYLOAD_BYTES", DEFAULT_MAX_PAYLOAD_BYTES)


def read_frame(rfile, max_bytes: Optional[int] = None) -> Optional[bytes]:
    """Read one raw frame (line) from a buffered reader, bounded.

    Parameters
    ----------
    rfile : file-like
        Buffered binary reader (a socket ``makefile``).
    max_bytes : int, optional
        Frame length cap; ``None`` uses :func:`max_frame_bytes`, ``0``
        disables the cap (trusted same-process pipes only).

    Returns
    -------
    bytes or None
        The frame, or ``None`` on EOF, a blank line (keep-alive /
        polite hang-up), or a connection-level error — all the cases
        where the peer has nothing more to say on this connection.

    Raises
    ------
    ProtocolError
        The peer sent a line longer than ``max_bytes``.
    TimeoutError
        The underlying socket timed out — the peer is *silent*, not
        gone; callers (heartbeats, task deadlines) decide what that
        means.
    """
    limit = max_frame_bytes() if max_bytes is None else int(max_bytes)
    try:
        if limit:
            line = rfile.readline(limit + 1)
        else:
            line = rfile.readline()
    except TimeoutError:
        raise  # silence is a first-class signal, not a hang-up
    except (ConnectionError, OSError):
        return None
    if limit and len(line) > limit:
        raise ProtocolError(
            f"frame exceeds the {limit}-byte cap "
            f"(set PHONOCMAP_MAX_FRAME_BYTES to raise it)"
        )
    if not line or not line.strip():
        return None
    return line


def read_message(rfile, max_bytes: Optional[int] = None) -> Optional[dict]:
    """Read and decode one JSON message; ``None`` on EOF or bad frame.

    Propagates :class:`~repro.errors.ProtocolError` (oversized frame)
    and :class:`TimeoutError` (silent peer) from :func:`read_frame`.
    """
    frame = read_frame(rfile, max_bytes=max_bytes)
    if frame is None:
        return None
    try:
        message = json.loads(frame)
    except ValueError:
        return None
    return message if isinstance(message, dict) else None


def write_message(wfile, message: dict) -> None:
    """Encode and write one JSON message, flushed.

    Raises the underlying :class:`OSError` on a dead peer — callers
    own the decision between requeue (scheduler) and hang-up (server).
    """
    wfile.write(json.dumps(message, separators=(",", ":")).encode() + b"\n")
    wfile.flush()


def encode_payload(obj: Any) -> str:
    """Pack an arbitrary picklable object into a JSON-safe string."""
    return base64.b64encode(
        zlib.compress(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    ).decode("ascii")


def decode_payload(text: str, max_bytes: Optional[int] = None) -> Any:
    """Inverse of :func:`encode_payload`, with a decompression cap.

    Parameters
    ----------
    text : str
        The base64/zlib/pickle payload string.
    max_bytes : int, optional
        Decompressed-size cap; ``None`` uses :func:`max_payload_bytes`,
        ``0`` disables the cap.

    Raises
    ------
    ProtocolError
        The payload is not valid base64/zlib, or its decompressed size
        exceeds the cap (checked incrementally — a zlib bomb is
        rejected without materializing past the cap).
    """
    limit = max_payload_bytes() if max_bytes is None else int(max_bytes)
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as error:
        raise ProtocolError(f"undecodable payload: {error}") from None
    try:
        if limit:
            decompressor = zlib.decompressobj()
            data = decompressor.decompress(raw, limit)
            if not decompressor.eof:
                raise ProtocolError(
                    f"payload decompresses past the {limit}-byte cap "
                    f"(set PHONOCMAP_MAX_PAYLOAD_BYTES to raise it)"
                )
        else:
            data = zlib.decompress(raw)
    except zlib.error as error:
        raise ProtocolError(f"undecodable payload: {error}") from None
    return pickle.loads(data)
