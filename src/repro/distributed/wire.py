"""Newline-JSON framing shared by the service and the distributed stack.

One message per line: a JSON object, UTF-8 encoded, terminated by
``\\n``. This is the PR 6 service framing, factored out so the
``phonocmap worker`` / scheduler link (:mod:`repro.distributed.worker`,
:mod:`repro.distributed.scheduler`) and the unix-socket service
transport (:mod:`repro.service.server`) speak the same protocol with the
same code.

Binary values (pickled problems, streamed model arrays) ride inside the
JSON envelope as zlib-compressed, base64-encoded pickle payloads —
:func:`encode_payload` / :func:`decode_payload`. JSON-with-base64 is
deliberate over a binary framing: it keeps the protocol debuggable with
``nc`` and needs nothing beyond the standard library (the container has
no msgpack). The big payloads are rare by design — the distributed
scheduler ships ~40-byte model cache keys, not matrices — so the base64
overhead is confined to the one-time cache-miss fallback.

Security note: payloads are **pickle** and are only ever exchanged
between a scheduler and workers the same user started on hosts they
control; the worker CLI refuses to listen on public interfaces by
default for the same reason.
"""

from __future__ import annotations

import base64
import json
import pickle
import zlib
from typing import Any, Optional

__all__ = [
    "decode_payload",
    "encode_payload",
    "read_frame",
    "read_message",
    "write_message",
]


def read_frame(rfile) -> Optional[bytes]:
    """Read one raw frame (line) from a buffered reader.

    Returns ``None`` on EOF, a blank line (keep-alive / polite
    hang-up), or a connection-level error — all the cases where the
    peer has nothing more to say on this connection.
    """
    try:
        line = rfile.readline()
    except (ConnectionError, OSError):
        return None
    if not line or not line.strip():
        return None
    return line


def read_message(rfile) -> Optional[dict]:
    """Read and decode one JSON message; ``None`` on EOF or bad frame."""
    frame = read_frame(rfile)
    if frame is None:
        return None
    try:
        message = json.loads(frame)
    except ValueError:
        return None
    return message if isinstance(message, dict) else None


def write_message(wfile, message: dict) -> None:
    """Encode and write one JSON message, flushed.

    Raises the underlying :class:`OSError` on a dead peer — callers
    own the decision between requeue (scheduler) and hang-up (server).
    """
    wfile.write(json.dumps(message, separators=(",", ":")).encode() + b"\n")
    wfile.flush()


def encode_payload(obj: Any) -> str:
    """Pack an arbitrary picklable object into a JSON-safe string."""
    return base64.b64encode(
        zlib.compress(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    ).decode("ascii")


def decode_payload(text: str) -> Any:
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(zlib.decompress(base64.b64decode(text.encode("ascii"))))
