"""The ``phonocmap worker`` process: remote execution with cache-keyed hydration.

A worker dials the scheduler (``phonocmap worker --connect HOST:PORT``),
announces itself, and then serves a simple request loop over the
newline-JSON wire protocol (:mod:`repro.distributed.wire`):

``init``
    Carries a pickled :class:`~repro.core.problem.MappingProblem`
    (kilobytes — CG plus network description, never coupling matrices)
    plus dtype / contraction backend. The worker hydrates the coupling
    model for the problem's **cache key** locally: process cache first,
    then the on-disk model cache (PR 5), and only when both miss does it
    ask the scheduler to stream the arrays once (``need_model`` /
    ``model``), persisting them to its disk cache so every later
    hydration for that key is again key-only. The reply reports which
    source won (``"process"`` / ``"disk"`` / ``"streamed"``) — the
    parity suite asserts ``"streamed"`` never happens on a warm cache.

``task``
    Names a registered task function (``"strategy"`` →
    :func:`repro.core.parallel.run_strategy_task`, ``"shard"`` →
    :func:`repro.core.parallel.evaluate_shard_task`) plus pickled
    arguments. The task runs under the context built by ``init`` —
    exactly the state a local pool worker holds — so results are
    bit-identical to any other backend. Task-level exceptions are
    pickled back whole (the scheduler re-raises the original exception,
    matching local-pool semantics) and do **not** kill the worker.

``ping`` / ``shutdown``
    Liveness probe (the hub's heartbeat) / graceful exit.

``goodbye``
    The hub refused this worker (failed authentication). The worker
    exits non-zero and never retries: a wrong token is a configuration
    error, not weather.

Authentication: when the hub requires a shared token
(``PHONOCMAP_AUTH_TOKEN`` on both sides, or ``--auth-token``), the
worker presents it in the hello frame.

Reconnection: by default a vanished scheduler (EOF, connection error,
timeout) still ends the worker — cattle-style, restart to reconnect.
With ``reconnect_attempts > 0`` (``--reconnect`` /
``PHONOCMAP_RECONNECT_ATTEMPTS``) the worker instead redials with
capped exponential backoff plus *deterministic* jitter (hashed from
``address | pid | attempt``, no RNG — two workers desynchronize their
retries, yet every run of the same worker retries on the same
schedule). A successfully served connection resets the budget.

Fault injection: the serve loop is instrumented with the
:mod:`repro.distributed.chaos` sites (``worker.loop``, ``worker.init``,
``worker.task``, ``worker.result``); a plan arrives per process via
``PHONOCMAP_CHAOS``. Without a plan the hooks are a dictionary miss.
"""

from __future__ import annotations

import hashlib
import os
import socket
import time
import traceback
from typing import Optional, Tuple

import numpy as np

from repro.core import parallel as _parallel
from repro.core.executor import split_tcp_address
from repro.distributed import chaos, wire
from repro.errors import ProtocolError
from repro.models import coupling as _coupling
from repro.models.coupling import CouplingModel

__all__ = ["run_worker"]

#: Registered task functions a scheduler may dispatch, by wire name.
TASK_FUNCTIONS = {
    "strategy": _parallel.run_strategy_task,
    "shard": _parallel.evaluate_shard_task,
}

#: Per-message socket timeout: a scheduler silent for this long means
#: the link is gone (the hub heartbeats idle workers far more often).
READ_TIMEOUT_S = 3600.0

#: Reconnect backoff shape: ``min(cap, base * 2**attempt)`` plus up to
#: 25% deterministic jitter.
BACKOFF_BASE_S = 0.5
BACKOFF_CAP_S = 30.0


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def reconnect_backoff_s(address: str, attempt: int, pid: Optional[int] = None) -> float:
    """The delay before reconnect ``attempt`` (1-based), jitter included.

    Exponential with a cap, plus up to 25% jitter derived from
    ``sha1(address | pid | attempt)`` — deterministic for a given
    worker-and-attempt (replayable tests, reproducible incident
    timelines) while distinct workers spread their redials instead of
    stampeding a recovering hub in lockstep.
    """
    base = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2 ** (attempt - 1)))
    seed = f"{address}|{os.getpid() if pid is None else pid}|{attempt}"
    digest = hashlib.sha1(seed.encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return base * (1.0 + 0.25 * fraction)


def _hydrate(
    network,
    dtype,
    model_cache_dir: Optional[str],
    rfile,
    wfile,
    ctx_id: str,
    routes: int = 1,
) -> str:
    """Materialize the coupling model for a cache key; returns the source.

    Resolution order mirrors :meth:`CouplingModel.for_network` with the
    build step replaced by a one-time streamed transfer from the
    scheduler — a worker never burns CPU rebuilding a matrix the
    scheduler already holds.
    """
    key = CouplingModel.cache_key(network, dtype, routes=routes)
    if key in _coupling._CACHE:
        return "process"
    model = None
    if model_cache_dir:
        model = CouplingModel.load_cached(
            network, dtype, model_cache_dir, routes=routes
        )
    if model is not None:
        CouplingModel.register(key, model)
        return "disk"
    wire.write_message(wfile, {"op": "need_model", "ctx_id": ctx_id})
    # A streamed model is the one legitimately huge frame on this link;
    # bound it by the payload cap, not the (much smaller) frame cap.
    message = wire.read_message(rfile, max_bytes=wire.max_payload_bytes())
    if message is None or message.get("op") != "model":
        raise ConnectionError("scheduler hung up during model transfer")
    model = CouplingModel.from_arrays(
        network, wire.decode_payload(message["payload"])
    )
    if model_cache_dir:
        model.save_cached(model_cache_dir)
    CouplingModel.register(key, model)
    return "streamed"


def run_worker(
    address: str,
    model_cache_dir: Optional[str] = None,
    auth_token: Optional[str] = None,
    reconnect_attempts: Optional[int] = None,
) -> int:
    """Serve tasks from the scheduler at ``address`` until it hangs up.

    Parameters
    ----------
    address : str
        ``HOST:PORT`` (a ``tcp://`` prefix is tolerated) of the
        scheduler's :class:`~repro.distributed.scheduler.WorkerHub`.
    model_cache_dir : str, optional
        On-disk model cache this worker hydrates from (and persists
        streamed models into). Strongly recommended: a shared or
        pre-seeded cache keeps model matrices off the wire entirely.
    auth_token : str, optional
        Shared secret presented in the hello frame; defaults to
        ``PHONOCMAP_AUTH_TOKEN``. Required when the hub enforces
        authentication — without it the hub replies ``goodbye`` and
        this function returns 1.
    reconnect_attempts : int, optional
        Consecutive redials after a lost connection before giving up
        (default ``PHONOCMAP_RECONNECT_ATTEMPTS``, else 0: exit on the
        first loss, the historical cattle-process behaviour). Delays
        follow :func:`reconnect_backoff_s`; a connection that served
        successfully resets the budget. An authentication rejection
        never retries.

    Returns
    -------
    int
        Process exit code — 0 on a graceful shutdown or scheduler EOF,
        1 on rejection or when the reconnect budget runs out on a
        connect failure.
    """
    if chaos.active() is None:
        chaos.install_from_env()
    if auth_token is None:
        auth_token = os.environ.get("PHONOCMAP_AUTH_TOKEN") or None
    if reconnect_attempts is None:
        reconnect_attempts = _env_int("PHONOCMAP_RECONNECT_ATTEMPTS", 0)
    attempt = 0
    while True:
        try:
            code, retryable = _serve_connection(
                address, model_cache_dir, auth_token
            )
            attempt = 0  # served: a later loss starts a fresh budget
        except (ConnectionError, TimeoutError, OSError, ProtocolError, EOFError):
            code, retryable = 1, True
        if not retryable or attempt >= reconnect_attempts:
            return code
        attempt += 1
        time.sleep(reconnect_backoff_s(address, attempt))


def _serve_connection(
    address: str,
    model_cache_dir: Optional[str],
    auth_token: Optional[str],
) -> Tuple[int, bool]:
    """Dial and serve one connection; returns ``(exit_code, retryable)``."""
    host, port = split_tcp_address(address)
    sock = socket.create_connection((host, port))
    try:
        sock.settimeout(READ_TIMEOUT_S)
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        hello = {"op": "hello", "pid": os.getpid(), "host": socket.gethostname()}
        if auth_token is not None:
            hello["token"] = auth_token
        wire.write_message(wfile, hello)
        contexts = {}
        while True:
            chaos.trip("worker.loop")
            message = wire.read_message(rfile)
            if message is None:
                return 0, True  # scheduler EOF: redial if budgeted
            op = message.get("op")
            if op == "shutdown":
                return 0, False
            if op == "goodbye":
                # Refused (failed auth): a retry cannot succeed.
                return 1, False
            if op == "ping":
                wire.write_message(wfile, {"op": "pong"})
            elif op == "init":
                chaos.trip("worker.init")
                ctx_id = message["ctx_id"]
                problem = wire.decode_payload(message["problem"])
                dtype = np.dtype(message["dtype"])
                source = _hydrate(
                    problem.network,
                    dtype,
                    model_cache_dir,
                    rfile,
                    wfile,
                    ctx_id,
                    routes=getattr(problem, "routes", 1),
                )
                contexts[ctx_id] = _parallel.WorkerContext(
                    problem, dtype, message.get("backend", "dense")
                )
                wire.write_message(
                    wfile,
                    {"op": "ready", "ctx_id": ctx_id, "model_source": source},
                )
            elif op == "task":
                chaos.trip("worker.task")
                reply = _run_task(contexts, message)
                if chaos.trip("worker.result") == "corrupt":
                    # Not base64: the hub must fail to decode this and
                    # retire the connection, never trust the frame.
                    reply = dict(reply, payload="!!chaos-corrupt!!")
                wire.write_message(wfile, reply)
            # Unknown ops are skipped: lets the protocol grow without
            # stranding older workers.
    finally:
        sock.close()


def _run_task(contexts: dict, message: dict) -> dict:
    """Execute one dispatched task; never raises (errors ride the reply)."""
    task_id = message.get("task_id")
    try:
        context = contexts[message["ctx_id"]]
        fn = TASK_FUNCTIONS[message["fn"]]
        args, kwargs = wire.decode_payload(message["payload"])
        with _parallel.activate_context(context):
            result = fn(*args, **kwargs)
        return {
            "op": "result",
            "task_id": task_id,
            "payload": wire.encode_payload(result),
        }
    except Exception as error:  # noqa: BLE001 — forwarded to the scheduler
        try:
            payload = wire.encode_payload(error)
        except Exception:  # unpicklable exception: ship the text
            payload = None
        return {
            "op": "error",
            "task_id": task_id,
            "error": f"{type(error).__name__}: {error}",
            "traceback": traceback.format_exc(),
            "payload": payload,
        }
