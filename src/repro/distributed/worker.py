"""The ``phonocmap worker`` process: remote execution with cache-keyed hydration.

A worker dials the scheduler (``phonocmap worker --connect HOST:PORT``),
announces itself, and then serves a simple request loop over the
newline-JSON wire protocol (:mod:`repro.distributed.wire`):

``init``
    Carries a pickled :class:`~repro.core.problem.MappingProblem`
    (kilobytes — CG plus network description, never coupling matrices)
    plus dtype / contraction backend. The worker hydrates the coupling
    model for the problem's **cache key** locally: process cache first,
    then the on-disk model cache (PR 5), and only when both miss does it
    ask the scheduler to stream the arrays once (``need_model`` /
    ``model``), persisting them to its disk cache so every later
    hydration for that key is again key-only. The reply reports which
    source won (``"process"`` / ``"disk"`` / ``"streamed"``) — the
    parity suite asserts ``"streamed"`` never happens on a warm cache.

``task``
    Names a registered task function (``"strategy"`` →
    :func:`repro.core.parallel.run_strategy_task`, ``"shard"`` →
    :func:`repro.core.parallel.evaluate_shard_task`) plus pickled
    arguments. The task runs under the context built by ``init`` —
    exactly the state a local pool worker holds — so results are
    bit-identical to any other backend. Task-level exceptions are
    pickled back whole (the scheduler re-raises the original exception,
    matching local-pool semantics) and do **not** kill the worker.

``ping`` / ``shutdown``
    Liveness probe / graceful exit.

A vanished scheduler (EOF, connection error) ends the worker: workers
are cheap, cattle-style processes — restart them to reconnect.
"""

from __future__ import annotations

import os
import socket
import traceback
from typing import Optional

import numpy as np

from repro.core import parallel as _parallel
from repro.core.executor import split_tcp_address
from repro.distributed import wire
from repro.models import coupling as _coupling
from repro.models.coupling import CouplingModel

__all__ = ["run_worker"]

#: Registered task functions a scheduler may dispatch, by wire name.
TASK_FUNCTIONS = {
    "strategy": _parallel.run_strategy_task,
    "shard": _parallel.evaluate_shard_task,
}


def _hydrate(
    network,
    dtype,
    model_cache_dir: Optional[str],
    rfile,
    wfile,
    ctx_id: str,
) -> str:
    """Materialize the coupling model for a cache key; returns the source.

    Resolution order mirrors :meth:`CouplingModel.for_network` with the
    build step replaced by a one-time streamed transfer from the
    scheduler — a worker never burns CPU rebuilding a matrix the
    scheduler already holds.
    """
    key = CouplingModel.cache_key(network, dtype)
    if key in _coupling._CACHE:
        return "process"
    model = None
    if model_cache_dir:
        model = CouplingModel.load_cached(network, dtype, model_cache_dir)
    if model is not None:
        CouplingModel.register(key, model)
        return "disk"
    wire.write_message(wfile, {"op": "need_model", "ctx_id": ctx_id})
    message = wire.read_message(rfile)
    if message is None or message.get("op") != "model":
        raise ConnectionError("scheduler hung up during model transfer")
    model = CouplingModel.from_arrays(
        network, wire.decode_payload(message["payload"])
    )
    if model_cache_dir:
        model.save_cached(model_cache_dir)
    CouplingModel.register(key, model)
    return "streamed"


def run_worker(address: str, model_cache_dir: Optional[str] = None) -> int:
    """Serve tasks from the scheduler at ``address`` until it hangs up.

    Parameters
    ----------
    address : str
        ``HOST:PORT`` (a ``tcp://`` prefix is tolerated) of the
        scheduler's :class:`~repro.distributed.scheduler.WorkerHub`.
    model_cache_dir : str, optional
        On-disk model cache this worker hydrates from (and persists
        streamed models into). Strongly recommended: a shared or
        pre-seeded cache keeps model matrices off the wire entirely.

    Returns
    -------
    int
        Process exit code (0 on a graceful shutdown or scheduler EOF).
    """
    host, port = split_tcp_address(address)
    sock = socket.create_connection((host, port))
    try:
        # Generous per-message timeout: a silent scheduler for this long
        # means the link is gone, and exiting lets a supervisor restart.
        sock.settimeout(3600.0)
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        wire.write_message(
            wfile,
            {"op": "hello", "pid": os.getpid(), "host": socket.gethostname()},
        )
        contexts = {}
        while True:
            message = wire.read_message(rfile)
            if message is None:
                return 0
            op = message.get("op")
            if op == "shutdown":
                return 0
            if op == "ping":
                wire.write_message(wfile, {"op": "pong"})
            elif op == "init":
                ctx_id = message["ctx_id"]
                problem = wire.decode_payload(message["problem"])
                dtype = np.dtype(message["dtype"])
                source = _hydrate(
                    problem.network, dtype, model_cache_dir, rfile, wfile, ctx_id
                )
                contexts[ctx_id] = _parallel.WorkerContext(
                    problem, dtype, message.get("backend", "dense")
                )
                wire.write_message(
                    wfile,
                    {"op": "ready", "ctx_id": ctx_id, "model_source": source},
                )
            elif op == "task":
                reply = _run_task(contexts, message)
                wire.write_message(wfile, reply)
            # Unknown ops are skipped: lets the protocol grow without
            # stranding older workers.
    finally:
        sock.close()


def _run_task(contexts: dict, message: dict) -> dict:
    """Execute one dispatched task; never raises (errors ride the reply)."""
    task_id = message.get("task_id")
    try:
        context = contexts[message["ctx_id"]]
        fn = TASK_FUNCTIONS[message["fn"]]
        args, kwargs = wire.decode_payload(message["payload"])
        with _parallel.activate_context(context):
            result = fn(*args, **kwargs)
        return {
            "op": "result",
            "task_id": task_id,
            "payload": wire.encode_payload(result),
        }
    except Exception as error:  # noqa: BLE001 — forwarded to the scheduler
        try:
            payload = wire.encode_payload(error)
        except Exception:  # unpicklable exception: ship the text
            payload = None
        return {
            "op": "error",
            "task_id": task_id,
            "error": f"{type(error).__name__}: {error}",
            "traceback": traceback.format_exc(),
            "payload": payload,
        }
