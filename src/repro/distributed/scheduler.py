"""Scheduler side of distributed execution: WorkerHub + RemoteTcpBackend.

The :class:`WorkerHub` is the process-wide rendezvous point for one
listening address: it accepts ``phonocmap worker`` connections, holds a
shared task queue, and runs one dispatch thread per connected worker.
Dispatch threads pull tasks, lazily initialize the task's execution
context on their worker (shipping the pickled problem and — only on a
double cache miss — streaming the coupling model once), run the
synchronous request/reply round-trip, and resolve the task's future.

Failure domains (PR 9)
----------------------
Liveness is active, not inferred from task traffic:

* **Heartbeats** — an idle dispatch thread pings its worker every
  :attr:`WorkerHub.heartbeat_interval_s`; the pong is awaited with a
  short per-read timeout and a miss budget
  (:attr:`WorkerHub.heartbeat_misses`), after which the connection is
  retired and the worker counts as lost. A *silent* worker is thereby
  distinguished from a merely *idle* one within
  ``interval + misses × timeout`` seconds instead of the hour-scale
  round-trip timeout.
* **Soft task deadlines** — with :attr:`WorkerHub.task_deadline_s` set,
  a dispatched task whose reply does not arrive in time is treated as
  sitting on a hung worker: the connection is dropped and the task is
  requeued for a live worker (bounded by :data:`MAX_TASK_ATTEMPTS`).
  The deadline is *soft*: it never cancels work, it only re-places it —
  and because tasks are pure functions of their pickled arguments, a
  re-placed (or even double-executed) task cannot change any result.
* **Authentication** — when a shared token is configured
  (``PHONOCMAP_AUTH_TOKEN`` or the ``auth_token`` hub argument), a
  connecting worker must present it in the hello frame; the compare is
  constant-time (:func:`hmac.compare_digest`) and rejection happens
  *before* the worker joins the fleet, so a hostile or misconfigured
  peer can never receive a task or disturb in-flight ones. The hello
  frame itself is read with a tight size cap so an unauthenticated
  peer cannot push the hub into buffering an arbitrarily long line.

Failure handling stays bounded retry + reassignment: a connection
error, heartbeat exhaustion or deadline overrun requeues the in-hand
task (up to :data:`MAX_TASK_ATTEMPTS` total attempts) for any other
live worker and retires the dead one. When attempts run out — or the
last worker is gone, which now *drains the queue* instead of stranding
queued futures — each affected task either fails fast with a typed
:class:`~repro.core.executor.WorkerLostError` (policy ``"raise"``) or
is handed to its backend's local fallback (policy ``"degrade"``, see
:class:`RemoteTcpBackend`).

Determinism: tasks are pure functions of their pickled arguments, so
which worker (or fallback backend) runs a task — first try or third —
cannot change its result; ``n_workers`` on the backend stays the
*logical* decomposition knob and the number of connected workers only
affects placement. The chaos suite (``tests/distributed/test_chaos.py``)
holds every recovery path to bit-identity against the inline oracle.

:class:`RemoteTcpBackend` plugs the hub into the pool registry
(:func:`repro.core.pool.get_pool` with ``executor="tcp://HOST:PORT"``).
Backends share hubs by address: closing a backend never tears a hub
down, because other pool-registry entries (another dtype, another
problem) may be dispatching through it.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import queue
import socket
import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core import parallel as _parallel
from repro.core.executor import (
    ExecutorBackend,
    InlineBackend,
    LocalProcessBackend,
    WorkerLostError,
    parse_executor_spec,
    split_tcp_address,
    worker_loss_policy,
)
from repro.distributed import wire
from repro.errors import ExecutorError, ProtocolError

__all__ = [
    "MAX_TASK_ATTEMPTS",
    "RemoteTcpBackend",
    "WorkerHub",
    "get_hub",
    "worker_wait_timeout_s",
]

#: Total tries per task (1 initial + 2 reassignments) before its future
#: fails with :class:`WorkerLostError` (or degrades, per policy).
MAX_TASK_ATTEMPTS = 3

#: Default wait for the first worker before a submit fails; env
#: ``PHONOCMAP_WORKER_WAIT_TIMEOUT_S`` overrides — long enough to start
#: workers by hand, short enough that a forgotten ``phonocmap worker``
#: surfaces as an error.
DEFAULT_WORKER_WAIT_TIMEOUT_S = 60.0

#: Per-round-trip socket timeout on the scheduler side — the hard upper
#: bound a soft task deadline tightens. A worker silent for this long is
#: treated as lost (task requeued elsewhere).
ROUND_TRIP_TIMEOUT_S = 3600.0

#: Liveness defaults (env-overridable, see :class:`WorkerHub`).
DEFAULT_HEARTBEAT_INTERVAL_S = 5.0
DEFAULT_HEARTBEAT_TIMEOUT_S = 2.0
DEFAULT_HEARTBEAT_MISSES = 3

#: Cap on the hello frame — read *before* authentication, so it must be
#: small enough that an unauthenticated peer cannot buffer-bloat the hub.
HELLO_MAX_BYTES = 64 * 1024

#: How long a connecting peer gets to produce its hello frame.
HELLO_TIMEOUT_S = 30.0


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def _resolve(explicit, env_name: str, default: float) -> float:
    """Resolve a liveness knob: explicit value > environment > default."""
    if explicit is not None:
        return float(explicit)
    return _env_float(env_name, default)


def worker_wait_timeout_s() -> float:
    """The effective first-worker wait (env-overridable)."""
    return _env_float(
        "PHONOCMAP_WORKER_WAIT_TIMEOUT_S", DEFAULT_WORKER_WAIT_TIMEOUT_S
    )


def _fail_future(future: Future, error: BaseException) -> None:
    """Fail a future, tolerating races with cancellation/resolution."""
    if future.cancelled():
        return
    try:
        future.set_exception(error)
    except InvalidStateError:
        pass


def _chain_future(inner: Future, outer: Future) -> None:
    """Propagate ``inner``'s outcome into ``outer`` when it completes."""

    def _copy(done: Future) -> None:
        if outer.cancelled():
            return
        try:
            if done.cancelled():
                outer.cancel()
            elif done.exception() is not None:
                outer.set_exception(done.exception())
            else:
                outer.set_result(done.result())
        except InvalidStateError:
            pass

    inner.add_done_callback(_copy)


class _Task:
    """One queued task: wire form plus the future and retry bookkeeping."""

    __slots__ = ("ctx_id", "fn_name", "payload", "future", "attempts", "backend")

    def __init__(self, ctx_id: str, fn_name: str, payload: str, backend):
        self.ctx_id = ctx_id
        self.fn_name = fn_name
        self.payload = payload
        self.future: Future = Future()
        self.attempts = 0
        self.backend = backend


class _Context:
    """A registered execution context workers can be initialized with."""

    __slots__ = ("ctx_id", "problem_payload", "dtype_name", "backend", "model_supplier")

    def __init__(self, ctx_id, problem_payload, dtype_name, backend, model_supplier):
        self.ctx_id = ctx_id
        self.problem_payload = problem_payload
        self.dtype_name = dtype_name
        self.backend = backend
        #: Called only on a worker's double cache miss; returns the
        #: ``export_arrays`` payload for the one-time stream.
        self.model_supplier = model_supplier


class WorkerHub:
    """Listener + task queue + per-worker dispatch threads for one address.

    Liveness parameters default from the environment
    (``PHONOCMAP_HEARTBEAT_INTERVAL_S``, ``PHONOCMAP_HEARTBEAT_TIMEOUT_S``,
    ``PHONOCMAP_HEARTBEAT_MISSES``, ``PHONOCMAP_TASK_DEADLINE_S``) and can
    be pinned per hub via constructor arguments (tests use sub-second
    values; production keeps the defaults). ``task_deadline_s=None``
    (the default, and env unset) leaves the PR 7 behaviour: a hung
    worker is only detected at :data:`ROUND_TRIP_TIMEOUT_S`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        heartbeat_interval_s: Optional[float] = None,
        heartbeat_timeout_s: Optional[float] = None,
        heartbeat_misses: Optional[int] = None,
        task_deadline_s: Optional[float] = None,
        auth_token: Optional[str] = None,
    ):
        self.host = host
        self.heartbeat_interval_s = _resolve(
            heartbeat_interval_s,
            "PHONOCMAP_HEARTBEAT_INTERVAL_S",
            DEFAULT_HEARTBEAT_INTERVAL_S,
        )
        self.heartbeat_timeout_s = _resolve(
            heartbeat_timeout_s,
            "PHONOCMAP_HEARTBEAT_TIMEOUT_S",
            DEFAULT_HEARTBEAT_TIMEOUT_S,
        )
        self.heartbeat_misses = int(
            _resolve(
                heartbeat_misses,
                "PHONOCMAP_HEARTBEAT_MISSES",
                DEFAULT_HEARTBEAT_MISSES,
            )
        )
        deadline = _resolve(task_deadline_s, "PHONOCMAP_TASK_DEADLINE_S", 0.0)
        self.task_deadline_s = deadline if deadline > 0 else None
        self.auth_token = (
            auth_token
            if auth_token is not None
            else os.environ.get("PHONOCMAP_AUTH_TOKEN") or None
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        #: Bound port — differs from the requested one when it was 0.
        self.port = self._listener.getsockname()[1]
        self._tasks: "queue.Queue[_Task]" = queue.Queue()
        self._contexts: Dict[str, _Context] = {}
        self._lock = threading.Lock()
        self._worker_event = threading.Event()
        self._stop = threading.Event()
        self.workers_connected = 0
        self.workers_lost = 0
        self.workers_rejected_auth = 0
        self.tasks_dispatched = 0
        self.tasks_retried = 0
        self.tasks_timed_out = 0
        self.heartbeats_sent = 0
        self.heartbeats_missed = 0
        self.models_streamed = 0
        self.model_bytes_streamed = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"phonocmap-hub-{self.port}",
            daemon=True,
        )
        self._accept_thread.start()

    # -- the backend-facing surface ------------------------------------------

    def register_context(
        self,
        ctx_id: str,
        problem,
        dtype,
        backend: str,
        model_supplier: Callable[[], dict],
    ) -> None:
        """Make a context available for worker-side initialization."""
        with self._lock:
            if ctx_id not in self._contexts:
                self._contexts[ctx_id] = _Context(
                    ctx_id,
                    wire.encode_payload(problem),
                    np.dtype(dtype).name,
                    str(backend),
                    model_supplier,
                )

    def ensure_worker(self, timeout: Optional[float] = None) -> None:
        """Block until at least one worker is connected, or fail typed.

        On timeout, queued futures are failed with
        :class:`WorkerLostError` too (they could only ever be served by
        a worker that is not coming), so callers' one-resubmit recovery
        — or a backend's degrade policy — engages instead of waiting
        out a future that nobody will resolve.
        """
        if timeout is None:
            timeout = worker_wait_timeout_s()
        if not self._worker_event.wait(timeout):
            error = WorkerLostError(
                f"no worker connected to tcp://{self.host}:{self.port} "
                f"after {timeout:.0f}s — start one with "
                f"'phonocmap worker --connect {self.host}:{self.port}'"
            )
            self._drain_pending(error)
            raise error

    def submit(self, ctx_id: str, fn_name: str, args, kwargs, backend) -> Future:
        """Queue one task for any worker; returns its future."""
        task = _Task(ctx_id, fn_name, wire.encode_payload((args, kwargs)), backend)
        with self._lock:
            self.tasks_dispatched += 1
        self._tasks.put(task)
        return task.future

    def stats(self) -> dict:
        """Hub-level observability counters."""
        return {
            "address": f"tcp://{self.host}:{self.port}",
            "workers_connected": self.workers_connected,
            "workers_lost": self.workers_lost,
            "workers_rejected_auth": self.workers_rejected_auth,
            "tasks_queued": self._tasks.qsize(),
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_retried": self.tasks_retried,
            "tasks_timed_out": self.tasks_timed_out,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_missed": self.heartbeats_missed,
            "auth_required": self.auth_token is not None,
            "task_deadline_s": self.task_deadline_s,
            "models_streamed": self.models_streamed,
            "model_bytes_streamed": self.model_bytes_streamed,
        }

    def close(self) -> None:
        """Stop accepting, hang up on every worker (tests / teardown)."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass

    # -- listener / dispatch machinery ---------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_worker,
                args=(conn,),
                name=f"phonocmap-dispatch-{self.port}",
                daemon=True,
            ).start()

    def _handshake(self, conn: socket.socket, rfile, wfile) -> bool:
        """Read + authenticate the hello frame; True admits the worker.

        Runs entirely *before* the worker joins the fleet: a rejected
        peer never touches ``workers_connected``, the worker event, or
        the task queue — in-flight tasks on other workers are
        undisturbed by an authentication failure.
        """
        conn.settimeout(HELLO_TIMEOUT_S)
        try:
            hello = wire.read_message(rfile, max_bytes=HELLO_MAX_BYTES)
        except (TimeoutError, ProtocolError):
            return False
        if hello is None or hello.get("op") != "hello":
            return False
        if self.auth_token is not None:
            supplied = str(hello.get("token") or "")
            if not hmac.compare_digest(
                supplied.encode(), self.auth_token.encode()
            ):
                with self._lock:
                    self.workers_rejected_auth += 1
                try:
                    wire.write_message(
                        wfile, {"op": "goodbye", "error": "auth_failed"}
                    )
                except OSError:
                    pass
                return False
        return True

    def _serve_worker(self, conn: socket.socket) -> None:
        """Own one worker connection: init contexts, dispatch, retry."""
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        if not self._handshake(conn, rfile, wfile):
            conn.close()
            return
        conn.settimeout(ROUND_TRIP_TIMEOUT_S)
        with self._lock:
            self.workers_connected += 1
            self._worker_event.set()
        initialized = set()
        task: Optional[_Task] = None
        idle_since = time.monotonic()
        try:
            while not self._stop.is_set():
                try:
                    task = self._tasks.get(timeout=0.2)
                except queue.Empty:
                    if (
                        self.heartbeat_interval_s
                        and time.monotonic() - idle_since
                        >= self.heartbeat_interval_s
                    ):
                        self._heartbeat(conn, rfile, wfile)
                        idle_since = time.monotonic()
                    continue
                if task.future.cancelled():
                    task = None
                    continue
                task.attempts += 1
                try:
                    if task.ctx_id not in initialized:
                        self._init_context(conn, rfile, wfile, task.ctx_id)
                        initialized.add(task.ctx_id)
                    reply = self._round_trip(conn, rfile, wfile, task)
                except (ConnectionError, OSError, EOFError):
                    raise  # worker lost: handled below, task still in hand
                self._resolve(task, reply)
                task = None
                idle_since = time.monotonic()
        except (ConnectionError, OSError, EOFError, ProtocolError):
            pass
        finally:
            with self._lock:
                self.workers_connected -= 1
                survivors = self.workers_connected
                if survivors == 0:
                    self._worker_event.clear()
                if not self._stop.is_set():
                    self.workers_lost += 1
            if task is not None:
                self._reassign(task, survivors)
            if survivors == 0 and not self._stop.is_set():
                # Fleet collapse: nobody is left to serve the queue.
                # Fail (or degrade) queued tasks now so caller retry
                # layers engage, instead of stranding futures until a
                # replacement worker maybe appears.
                self._drain_pending(
                    WorkerLostError(
                        f"all workers lost on tcp://{self.host}:{self.port} "
                        f"with tasks queued"
                    )
                )
            conn.close()

    def _heartbeat(self, conn: socket.socket, rfile, wfile) -> None:
        """Ping an idle worker; raise ``ConnectionError`` when it is gone.

        One ping, then up to :attr:`heartbeat_misses` bounded reads for
        the *same* pong — repeated pings are never stacked, so the
        protocol cannot desync on a slow-but-alive worker.
        """
        wire.write_message(wfile, {"op": "ping"})
        with self._lock:
            self.heartbeats_sent += 1
        misses = 0
        conn.settimeout(self.heartbeat_timeout_s)
        try:
            while True:
                try:
                    reply = wire.read_message(rfile)
                except TimeoutError:
                    misses += 1
                    with self._lock:
                        self.heartbeats_missed += 1
                    if misses >= self.heartbeat_misses:
                        raise ConnectionError(
                            f"worker missed {misses} heartbeats "
                            f"({self.heartbeat_timeout_s:.1f}s each)"
                        ) from None
                    continue
                if reply is None:
                    raise ConnectionError("worker hung up during heartbeat")
                if reply.get("op") == "pong":
                    return
                raise ConnectionError(
                    f"unexpected heartbeat reply {reply.get('op')!r}"
                )
        finally:
            conn.settimeout(ROUND_TRIP_TIMEOUT_S)

    def _init_context(self, conn: socket.socket, rfile, wfile, ctx_id: str) -> None:
        """Initialize a context on the connected worker (may stream).

        The *first* reply (``ready`` or ``need_model``) is bounded by the
        soft task deadline when one is set: producing it costs only a
        kilobyte-scale unpickle plus a cache probe, so a worker silent
        past the deadline here is hung, not busy. Once the worker asks
        for the model, the deadline comes *off* — streaming and
        persisting a multi-hundred-MB model legitimately takes a while,
        and the round-trip timeout still bounds that phase.
        """
        with self._lock:
            context = self._contexts[ctx_id]
        wire.write_message(
            wfile,
            {
                "op": "init",
                "ctx_id": ctx_id,
                "problem": context.problem_payload,
                "dtype": context.dtype_name,
                "backend": context.backend,
            },
        )
        deadline = self.task_deadline_s
        if deadline:
            conn.settimeout(deadline)
        try:
            while True:
                try:
                    reply = wire.read_message(rfile)
                except TimeoutError:
                    with self._lock:
                        self.tasks_timed_out += 1
                    bound = deadline if deadline else ROUND_TRIP_TIMEOUT_S
                    raise ConnectionError(
                        f"worker silent past the {bound:.1f}s deadline "
                        "during init"
                    ) from None
                if reply is None:
                    raise ConnectionError("worker hung up during init")
                op = reply.get("op")
                if op == "ready":
                    return
                if op == "need_model":
                    if deadline:
                        conn.settimeout(ROUND_TRIP_TIMEOUT_S)
                        deadline = None
                    self._stream_model(wfile, context)
                else:
                    raise ConnectionError(f"unexpected init reply {op!r}")
        finally:
            if deadline:
                conn.settimeout(ROUND_TRIP_TIMEOUT_S)

    def _stream_model(self, wfile, context) -> None:
        """Ship a context's coupling model to the asking worker once."""
        payload = wire.encode_payload(context.model_supplier())
        with self._lock:
            self.models_streamed += 1
            self.model_bytes_streamed += len(payload)
        wire.write_message(wfile, {"op": "model", "payload": payload})

    def _round_trip(self, conn: socket.socket, rfile, wfile, task: _Task) -> dict:
        """Send one task, await its reply under the soft deadline."""
        wire.write_message(
            wfile,
            {
                "op": "task",
                "task_id": id(task),
                "ctx_id": task.ctx_id,
                "fn": task.fn_name,
                "payload": task.payload,
            },
        )
        deadline = self.task_deadline_s
        if deadline:
            conn.settimeout(deadline)
        try:
            reply = wire.read_message(rfile)
        except TimeoutError:
            with self._lock:
                self.tasks_timed_out += 1
            raise ConnectionError(
                f"worker silent past the {deadline:.1f}s task deadline"
            ) from None
        finally:
            if deadline:
                conn.settimeout(ROUND_TRIP_TIMEOUT_S)
        if reply is None:
            raise ConnectionError("worker hung up mid-task")
        return reply

    def _resolve(self, task: _Task, reply: dict) -> None:
        """Resolve a task's future from the worker's reply.

        An undecodable result payload (a corrupt frame) is a *worker*
        fault, not a task failure: it raises ``ConnectionError`` so the
        connection is retired and the task requeues on a healthy worker
        — determinism is preserved because the task simply re-runs.
        """
        op = reply.get("op")
        if op == "result":
            try:
                value = wire.decode_payload(reply.get("payload", ""))
            except ProtocolError as error:
                raise ConnectionError(
                    f"undecodable result frame: {error}"
                ) from None
            if not task.future.cancelled():
                try:
                    task.future.set_result(value)
                except InvalidStateError:
                    pass
            return
        if op == "error":
            error = None
            if reply.get("payload"):
                try:
                    error = wire.decode_payload(reply["payload"])
                except Exception:
                    error = None
            if not isinstance(error, BaseException):
                error = ExecutorError(
                    f"remote task failed: {reply.get('error')}\n"
                    f"{reply.get('traceback', '')}"
                )
            _fail_future(task.future, error)
            return
        raise ConnectionError(f"unexpected task reply {op!r}")

    def _reassign(self, task: _Task, survivors: int) -> None:
        """Requeue a task from a dead worker, or fail/degrade it out."""
        if task.attempts < MAX_TASK_ATTEMPTS and survivors > 0:
            with self._lock:
                self.tasks_retried += 1
            if task.backend is not None:
                task.backend.note_retry()
            self._tasks.put(task)
            return
        reason = (
            "no live worker left to reassign to"
            if survivors == 0
            else f"task failed on {task.attempts} workers"
        )
        self._fail_or_degrade(
            task, WorkerLostError(f"worker lost mid-task and {reason}")
        )

    def _fail_or_degrade(self, task: _Task, error: BaseException) -> None:
        """Fail a task's future, unless its backend rescues it first."""
        backend = task.backend
        rescue = getattr(backend, "degrade_task", None)
        if rescue is not None:
            try:
                if rescue(task):
                    return
            except Exception:
                pass  # a broken fallback must not mask the real error
        _fail_future(task.future, error)

    def _drain_pending(self, error: BaseException) -> int:
        """Fail or degrade every queued task; returns how many."""
        drained = 0
        while True:
            try:
                task = self._tasks.get_nowait()
            except queue.Empty:
                return drained
            drained += 1
            if not task.future.cancelled():
                self._fail_or_degrade(task, error)


#: address ("host:port") -> hub, plus spec aliases for port-0 binds.
_HUBS: Dict[str, WorkerHub] = {}
_HUBS_LOCK = threading.Lock()


def get_hub(spec: str, **hub_kwargs) -> WorkerHub:
    """Fetch (or lazily create) the hub listening at an executor spec.

    Hubs are per-address singletons: every backend whose spec resolves
    to the same listen address shares one listener, one worker fleet
    and one task queue. Port 0 explicitly requests a *fresh* ephemeral
    listener (tests, embedding); the created hub is registered under
    its resolved address only, so backends addressing the real port
    keep finding it. ``hub_kwargs`` (liveness/auth overrides, see
    :class:`WorkerHub`) apply only when this call creates the hub — an
    existing hub keeps its configuration.
    """
    spec = parse_executor_spec(spec)
    host, port = split_tcp_address(spec)
    with _HUBS_LOCK:
        if port != 0:
            hub = _HUBS.get(f"{host}:{port}")
            if hub is not None:
                return hub
        hub = WorkerHub(host, port, **hub_kwargs)
        _HUBS[f"{hub.host}:{hub.port}"] = hub
        return hub


def shutdown_hubs() -> None:
    """Close every hub (test teardown)."""
    with _HUBS_LOCK:
        hubs = set(_HUBS.values())
        _HUBS.clear()
    for hub in hubs:
        hub.close()


class RemoteTcpBackend(ExecutorBackend):
    """Executor backend dispatching through a :class:`WorkerHub`.

    Registered in the pool registry like any other backend
    (``get_pool(..., executor="tcp://HOST:PORT")``). On construction it
    resolves the coupling model locally — a process-cache hit whenever
    an evaluator for the problem exists, and the source of the streamed
    fallback payload — and registers its execution context with the
    hub. ``n_workers`` remains the logical shard/chain count; the hub's
    connected-worker count only affects placement.

    Graceful degradation (``on_worker_loss="degrade"``): when remote
    execution is out of road — retries exhausted, the fleet collapsed,
    or no worker ever connected — tasks are finished on a local
    fallback backend built for the *same* ``(key, n_workers)``. The
    ladder is tcp → local → inline (``degrade_to`` /
    ``PHONOCMAP_DEGRADE_TO`` pins the first fallback rung; a local
    pool that cannot be built drops to inline). Because the logical
    decomposition is unchanged, degraded results stay bit-identical.
    The :attr:`degraded` flag is sticky while the fleet is empty and
    clears automatically once workers reconnect. The default policy is
    ``"raise"`` (PR 7 semantics: typed ``WorkerLostError``), resolved
    via :func:`repro.core.executor.worker_loss_policy`.
    """

    kind = "tcp"

    def __init__(
        self,
        key: Tuple,
        problem,
        dtype,
        n_workers: int,
        backend: str = "dense",
        model_cache_dir: Optional[str] = None,
        executor: str = "tcp://127.0.0.1:0",
        on_worker_loss: Optional[str] = None,
        degrade_to: Optional[str] = None,
        worker_wait_timeout: Optional[float] = None,
    ):
        from repro.models.coupling import CouplingModel

        super().__init__(key, n_workers)
        self.problem = problem
        self.dtype = np.dtype(dtype)
        self.backend = str(backend)
        self.model_cache_dir = model_cache_dir
        self.spec = parse_executor_spec(executor)
        self.hub = get_hub(self.spec)
        self.on_worker_loss = worker_loss_policy(on_worker_loss)
        self.degrade_to = self._resolve_degrade_to(degrade_to)
        self.worker_wait_timeout = worker_wait_timeout
        self.degraded = False
        self.tasks_degraded = 0
        self._closed = False
        self._fallback_lock = threading.Lock()
        self._fallback_backend: Optional[ExecutorBackend] = None
        self._ctx_id = hashlib.sha1(repr(key).encode()).hexdigest()[:16]
        model = CouplingModel.for_network(
            problem.network,
            dtype=self.dtype,
            cache_dir=model_cache_dir,
            routes=getattr(problem, "routes", 1),
        )
        self.hub.register_context(
            self._ctx_id, problem, self.dtype, self.backend, model.export_arrays
        )

    @staticmethod
    def _resolve_degrade_to(explicit: Optional[str]) -> str:
        choice = explicit or os.environ.get("PHONOCMAP_DEGRADE_TO") or "local"
        if choice not in ("local", "inline"):
            raise ExecutorError(
                f"degrade_to must be 'local' or 'inline', got {choice!r}"
            )
        return choice

    @staticmethod
    def _task_function(fn_name: str):
        return (
            _parallel.run_strategy_task
            if fn_name == "strategy"
            else _parallel.evaluate_shard_task
        )

    def _submit(self, fn, /, *args, **kwargs) -> Future:
        if self._closed:
            raise RuntimeError("pool has been shut down")
        if fn is _parallel.run_strategy_task:
            fn_name = "strategy"
        elif fn is _parallel.evaluate_shard_task:
            fn_name = "shard"
        else:
            raise ExecutorError(
                f"{fn!r} is not a registered distributed task function"
            )
        if self.degraded:
            if self.hub.workers_connected > 0:
                self.degraded = False  # fleet recovered: back to remote
            else:
                self.tasks_degraded += 1
                return self._fallback().submit(fn, *args, **kwargs)
        try:
            self.hub.ensure_worker(timeout=self.worker_wait_timeout)
        except WorkerLostError:
            if self.on_worker_loss != "degrade":
                raise
            self.degraded = True
            self.tasks_degraded += 1
            return self._fallback().submit(fn, *args, **kwargs)
        return self.hub.submit(self._ctx_id, fn_name, args, kwargs, self)

    # -- degradation ---------------------------------------------------------

    def degrade_task(self, task: _Task) -> bool:
        """Rescue a remote task onto the fallback backend (hub hook).

        Called by the hub when a task is out of remote attempts. True
        means the task's future will be resolved by the fallback; False
        declines (policy ``"raise"``) and the hub fails the future.
        """
        if self._closed or self.on_worker_loss != "degrade":
            return False
        fallback = self._fallback()
        fn = self._task_function(task.fn_name)
        args, kwargs = wire.decode_payload(task.payload)
        inner = fallback.submit(fn, *args, **kwargs)
        self.degraded = True
        self.tasks_degraded += 1
        _chain_future(inner, task.future)
        return True

    def _fallback(self) -> ExecutorBackend:
        """The lazily-built local fallback backend (ladder local→inline)."""
        with self._fallback_lock:
            if self._fallback_backend is not None and self._fallback_backend.alive():
                return self._fallback_backend
            self._fallback_backend = None
            if self.degrade_to == "local":
                try:
                    self._fallback_backend = LocalProcessBackend(
                        self.key,
                        self.problem,
                        self.dtype,
                        self.n_workers,
                        self.backend,
                        self.model_cache_dir,
                    )
                except Exception:
                    pass  # no process pool here: drop to the inline rung
            if self._fallback_backend is None:
                self._fallback_backend = InlineBackend(
                    self.key,
                    self.problem,
                    self.dtype,
                    self.n_workers,
                    self.backend,
                    self.model_cache_dir,
                )
            return self._fallback_backend

    # -- the ExecutorBackend surface -----------------------------------------

    def alive(self) -> bool:
        return not self.broken and not self._closed

    def info(self) -> dict:
        info = super().info()
        info.update(self.hub.stats())
        fallback = self._fallback_backend
        info.update(
            {
                "on_worker_loss": self.on_worker_loss,
                "degrade_to": self.degrade_to,
                "degraded": self.degraded,
                "tasks_degraded": self.tasks_degraded,
                "fallback": None if fallback is None else fallback.kind,
            }
        )
        return info

    def close(self, wait: bool = True) -> None:
        # The hub is shared by address across backends (other dtypes,
        # other problems) — closing one backend must not strand them.
        self._closed = True
        with self._fallback_lock:
            fallback, self._fallback_backend = self._fallback_backend, None
        if fallback is not None:
            fallback.close(wait=wait)

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"hub {self.hub.host}:{self.hub.port}"
        if self.degraded:
            state += f", degraded->{self.degrade_to}"
        return f"RemoteTcpBackend({self.problem!r}, {state})"
