"""Scheduler side of distributed execution: WorkerHub + RemoteTcpBackend.

The :class:`WorkerHub` is the process-wide rendezvous point for one
listening address: it accepts ``phonocmap worker`` connections, holds a
shared task queue, and runs one dispatch thread per connected worker.
Dispatch threads pull tasks, lazily initialize the task's execution
context on their worker (shipping the pickled problem and — only on a
double cache miss — streaming the coupling model once), run the
synchronous request/reply round-trip, and resolve the task's future.

Failure handling is bounded retry + reassignment, mirroring the local
broken-pool rebuild: a connection error mid-task requeues the task (up
to :data:`MAX_TASK_ATTEMPTS` total attempts) for any other live worker
and retires the dead one; when attempts run out — or no worker is left
to reassign to — the future fails with
:class:`~repro.core.executor.WorkerLostError`, which the evaluator/DSE
retry layer treats exactly like a ``BrokenProcessPool``.

Determinism: tasks are pure functions of their pickled arguments, so
which worker runs a task — first try or third — cannot change its
result; ``n_workers`` on the backend stays the *logical* decomposition
knob and the number of connected workers only affects placement.

:class:`RemoteTcpBackend` plugs the hub into the pool registry
(:func:`repro.core.pool.get_pool` with ``executor="tcp://HOST:PORT"``).
Backends share hubs by address: closing a backend never tears a hub
down, because other pool-registry entries (another dtype, another
problem) may be dispatching through it.
"""

from __future__ import annotations

import hashlib
import queue
import socket
import threading
from concurrent.futures import Future
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core import parallel as _parallel
from repro.core.executor import (
    ExecutorBackend,
    WorkerLostError,
    parse_executor_spec,
    split_tcp_address,
)
from repro.distributed import wire
from repro.errors import ExecutorError

__all__ = ["MAX_TASK_ATTEMPTS", "RemoteTcpBackend", "WorkerHub", "get_hub"]

#: Total tries per task (1 initial + 2 reassignments) before its future
#: fails with :class:`WorkerLostError`.
MAX_TASK_ATTEMPTS = 3

#: How long a backend waits for the first worker to connect before
#: failing a submit — long enough to start workers by hand, short
#: enough that a forgotten ``phonocmap worker`` surfaces as an error.
WORKER_WAIT_TIMEOUT_S = 60.0

#: Per-round-trip socket timeout on the scheduler side. A worker silent
#: for this long is treated as lost (task requeued elsewhere).
ROUND_TRIP_TIMEOUT_S = 3600.0


class _Task:
    """One queued task: wire form plus the future and retry bookkeeping."""

    __slots__ = ("ctx_id", "fn_name", "payload", "future", "attempts", "backend")

    def __init__(self, ctx_id: str, fn_name: str, payload: str, backend):
        self.ctx_id = ctx_id
        self.fn_name = fn_name
        self.payload = payload
        self.future: Future = Future()
        self.attempts = 0
        self.backend = backend


class _Context:
    """A registered execution context workers can be initialized with."""

    __slots__ = ("ctx_id", "problem_payload", "dtype_name", "backend", "model_supplier")

    def __init__(self, ctx_id, problem_payload, dtype_name, backend, model_supplier):
        self.ctx_id = ctx_id
        self.problem_payload = problem_payload
        self.dtype_name = dtype_name
        self.backend = backend
        #: Called only on a worker's double cache miss; returns the
        #: ``export_arrays`` payload for the one-time stream.
        self.model_supplier = model_supplier


class WorkerHub:
    """Listener + task queue + per-worker dispatch threads for one address."""

    def __init__(self, host: str, port: int):
        self.host = host
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        #: Bound port — differs from the requested one when it was 0.
        self.port = self._listener.getsockname()[1]
        self._tasks: "queue.Queue[_Task]" = queue.Queue()
        self._contexts: Dict[str, _Context] = {}
        self._lock = threading.Lock()
        self._worker_event = threading.Event()
        self._stop = threading.Event()
        self.workers_connected = 0
        self.workers_lost = 0
        self.tasks_dispatched = 0
        self.tasks_retried = 0
        self.models_streamed = 0
        self.model_bytes_streamed = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"phonocmap-hub-{self.port}",
            daemon=True,
        )
        self._accept_thread.start()

    # -- the backend-facing surface ------------------------------------------

    def register_context(
        self,
        ctx_id: str,
        problem,
        dtype,
        backend: str,
        model_supplier: Callable[[], dict],
    ) -> None:
        """Make a context available for worker-side initialization."""
        with self._lock:
            if ctx_id not in self._contexts:
                self._contexts[ctx_id] = _Context(
                    ctx_id,
                    wire.encode_payload(problem),
                    np.dtype(dtype).name,
                    str(backend),
                    model_supplier,
                )

    def ensure_worker(self, timeout: float = WORKER_WAIT_TIMEOUT_S) -> None:
        """Block until at least one worker is connected, or raise."""
        if not self._worker_event.wait(timeout):
            raise ExecutorError(
                f"no worker connected to tcp://{self.host}:{self.port} "
                f"after {timeout:.0f}s — start one with "
                f"'phonocmap worker --connect HOST:{self.port}'"
            )

    def submit(self, ctx_id: str, fn_name: str, args, kwargs, backend) -> Future:
        """Queue one task for any worker; returns its future."""
        task = _Task(ctx_id, fn_name, wire.encode_payload((args, kwargs)), backend)
        with self._lock:
            self.tasks_dispatched += 1
        self._tasks.put(task)
        return task.future

    def stats(self) -> dict:
        """Hub-level observability counters."""
        return {
            "address": f"tcp://{self.host}:{self.port}",
            "workers_connected": self.workers_connected,
            "workers_lost": self.workers_lost,
            "tasks_queued": self._tasks.qsize(),
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_retried": self.tasks_retried,
            "models_streamed": self.models_streamed,
            "model_bytes_streamed": self.model_bytes_streamed,
        }

    def close(self) -> None:
        """Stop accepting, hang up on every worker (tests / teardown)."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass

    # -- listener / dispatch machinery ---------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_worker,
                args=(conn,),
                name=f"phonocmap-dispatch-{self.port}",
                daemon=True,
            ).start()

    def _serve_worker(self, conn: socket.socket) -> None:
        """Own one worker connection: init contexts, dispatch, retry."""
        conn.settimeout(ROUND_TRIP_TIMEOUT_S)
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        hello = wire.read_message(rfile)
        if hello is None or hello.get("op") != "hello":
            conn.close()
            return
        with self._lock:
            self.workers_connected += 1
            self._worker_event.set()
        initialized = set()
        task: Optional[_Task] = None
        try:
            while not self._stop.is_set():
                try:
                    task = self._tasks.get(timeout=0.2)
                except queue.Empty:
                    continue
                if task.future.cancelled():
                    task = None
                    continue
                task.attempts += 1
                try:
                    if task.ctx_id not in initialized:
                        self._init_context(rfile, wfile, task.ctx_id)
                        initialized.add(task.ctx_id)
                    reply = self._round_trip(rfile, wfile, task)
                except (ConnectionError, OSError, EOFError):
                    raise  # worker lost: handled below, task still in hand
                self._resolve(task, reply)
                task = None
        except (ConnectionError, OSError, EOFError):
            pass
        finally:
            with self._lock:
                self.workers_connected -= 1
                survivors = self.workers_connected
                if survivors == 0:
                    self._worker_event.clear()
            if task is not None:
                self._reassign(task, survivors)
            conn.close()

    def _init_context(self, rfile, wfile, ctx_id: str) -> None:
        """Initialize a context on the connected worker (may stream)."""
        with self._lock:
            context = self._contexts[ctx_id]
        wire.write_message(
            wfile,
            {
                "op": "init",
                "ctx_id": ctx_id,
                "problem": context.problem_payload,
                "dtype": context.dtype_name,
                "backend": context.backend,
            },
        )
        while True:
            reply = wire.read_message(rfile)
            if reply is None:
                raise ConnectionError("worker hung up during init")
            op = reply.get("op")
            if op == "ready":
                return
            if op == "need_model":
                payload = wire.encode_payload(context.model_supplier())
                with self._lock:
                    self.models_streamed += 1
                    self.model_bytes_streamed += len(payload)
                wire.write_message(wfile, {"op": "model", "payload": payload})
            else:
                raise ConnectionError(f"unexpected init reply {op!r}")

    def _round_trip(self, rfile, wfile, task: _Task) -> dict:
        """Send one task, await its reply."""
        wire.write_message(
            wfile,
            {
                "op": "task",
                "task_id": id(task),
                "ctx_id": task.ctx_id,
                "fn": task.fn_name,
                "payload": task.payload,
            },
        )
        reply = wire.read_message(rfile)
        if reply is None:
            raise ConnectionError("worker hung up mid-task")
        return reply

    def _resolve(self, task: _Task, reply: dict) -> None:
        """Resolve a task's future from the worker's reply."""
        op = reply.get("op")
        if op == "result":
            task.future.set_result(wire.decode_payload(reply["payload"]))
            return
        if op == "error":
            error = None
            if reply.get("payload"):
                try:
                    error = wire.decode_payload(reply["payload"])
                except Exception:
                    error = None
            if not isinstance(error, BaseException):
                error = ExecutorError(
                    f"remote task failed: {reply.get('error')}\n"
                    f"{reply.get('traceback', '')}"
                )
            task.future.set_exception(error)
            return
        raise ConnectionError(f"unexpected task reply {op!r}")

    def _reassign(self, task: _Task, survivors: int) -> None:
        """Requeue a task from a dead worker, or fail it out."""
        with self._lock:
            self.workers_lost += 1
        if task.attempts < MAX_TASK_ATTEMPTS and survivors > 0:
            with self._lock:
                self.tasks_retried += 1
            if task.backend is not None:
                task.backend.note_retry()
            self._tasks.put(task)
            return
        reason = (
            "no live worker left to reassign to"
            if survivors == 0
            else f"task failed on {task.attempts} workers"
        )
        task.future.set_exception(
            WorkerLostError(f"worker lost mid-task and {reason}")
        )


#: address ("host:port") -> hub, plus spec aliases for port-0 binds.
_HUBS: Dict[str, WorkerHub] = {}
_HUBS_LOCK = threading.Lock()


def get_hub(spec: str) -> WorkerHub:
    """Fetch (or lazily create) the hub listening at an executor spec.

    Hubs are per-address singletons: every backend whose spec resolves
    to the same listen address shares one listener, one worker fleet
    and one task queue. Port 0 explicitly requests a *fresh* ephemeral
    listener (tests, embedding); the created hub is registered under
    its resolved address only, so backends addressing the real port
    keep finding it.
    """
    spec = parse_executor_spec(spec)
    host, port = split_tcp_address(spec)
    with _HUBS_LOCK:
        if port != 0:
            hub = _HUBS.get(f"{host}:{port}")
            if hub is not None:
                return hub
        hub = WorkerHub(host, port)
        _HUBS[f"{hub.host}:{hub.port}"] = hub
        return hub


def shutdown_hubs() -> None:
    """Close every hub (test teardown)."""
    with _HUBS_LOCK:
        hubs = set(_HUBS.values())
        _HUBS.clear()
    for hub in hubs:
        hub.close()


class RemoteTcpBackend(ExecutorBackend):
    """Executor backend dispatching through a :class:`WorkerHub`.

    Registered in the pool registry like any other backend
    (``get_pool(..., executor="tcp://HOST:PORT")``). On construction it
    resolves the coupling model locally — a process-cache hit whenever
    an evaluator for the problem exists, and the source of the streamed
    fallback payload — and registers its execution context with the
    hub. ``n_workers`` remains the logical shard/chain count; the hub's
    connected-worker count only affects placement.
    """

    kind = "tcp"

    def __init__(
        self,
        key: Tuple,
        problem,
        dtype,
        n_workers: int,
        backend: str = "dense",
        model_cache_dir: Optional[str] = None,
        executor: str = "tcp://127.0.0.1:0",
    ):
        from repro.models.coupling import CouplingModel

        super().__init__(key, n_workers)
        self.problem = problem
        self.dtype = np.dtype(dtype)
        self.backend = str(backend)
        self.spec = parse_executor_spec(executor)
        self.hub = get_hub(self.spec)
        self._closed = False
        self._ctx_id = hashlib.sha1(repr(key).encode()).hexdigest()[:16]
        model = CouplingModel.for_network(
            problem.network, dtype=self.dtype, cache_dir=model_cache_dir
        )
        self.hub.register_context(
            self._ctx_id, problem, self.dtype, self.backend, model.export_arrays
        )

    def _submit(self, fn, /, *args, **kwargs) -> Future:
        if self._closed:
            raise RuntimeError("pool has been shut down")
        if fn is _parallel.run_strategy_task:
            fn_name = "strategy"
        elif fn is _parallel.evaluate_shard_task:
            fn_name = "shard"
        else:
            raise ExecutorError(
                f"{fn!r} is not a registered distributed task function"
            )
        self.hub.ensure_worker()
        return self.hub.submit(self._ctx_id, fn_name, args, kwargs, self)

    def alive(self) -> bool:
        return not self.broken and not self._closed

    def info(self) -> dict:
        info = super().info()
        info.update(self.hub.stats())
        return info

    def close(self, wait: bool = True) -> None:
        # The hub is shared by address across backends (other dtypes,
        # other problems) — closing one backend must not strand them.
        self._closed = True

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"hub {self.hub.host}:{self.hub.port}"
        return f"RemoteTcpBackend({self.problem!r}, {state})"
