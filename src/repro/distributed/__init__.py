"""Distributed execution: TCP workers and the dispatching scheduler.

The remote leg of the executor abstraction (:mod:`repro.core.executor`):

* :mod:`repro.distributed.wire` — the newline-JSON framing shared with
  the PR 6 service transport;
* :mod:`repro.distributed.worker` — the ``phonocmap worker --connect``
  process: dials the scheduler, hydrates coupling models from cache
  keys, runs strategy/shard tasks;
* :mod:`repro.distributed.scheduler` — the in-process
  :class:`~repro.distributed.scheduler.WorkerHub` (listener + task
  queue + per-worker dispatch threads with bounded retry) and the
  :class:`~repro.distributed.scheduler.RemoteTcpBackend` that plugs it
  into the pool registry.

Submodules import lazily — ``import repro`` stays light.
"""
