#!/usr/bin/env python
"""Documentation checks: README doctests, docstring coverage, doc headers.

The docs CI job runs this script (see ``.github/workflows/ci.yml``); it
needs ``PYTHONPATH=src`` so the README's doctest examples can import the
package. Three checks, each printing its verdict:

1. **README doctests** — every ``>>>`` example in ``README.md`` runs and
   its output matches (the quickstart snippet, ~5 s).
2. **Docstring coverage of the public core API** — every module, public
   class, public function and public method under ``src/repro/core/``
   has a docstring (the AST mirror of pydocstyle/ruff rules
   D100-D103, which the CI job also runs via ruff when available).
3. **Example / benchmark doc headers** — every ``examples/*.py`` and
   ``benchmarks/*.py`` module states its paper artefact and expected
   runtime in its module docstring, and every relative link in
   ``README.md`` resolves.

Exit status is non-zero when any check fails, so it slots into CI as-is.
"""

from __future__ import annotations

import ast
import doctest
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def check_readme_doctests() -> list:
    """Run the README's ``>>>`` examples; return failure messages."""
    results = doctest.testfile(
        str(REPO / "README.md"), module_relative=False, verbose=False
    )
    if results.failed:
        return [f"README.md: {results.failed}/{results.attempted} doctests failed"]
    print(f"ok: README.md doctests ({results.attempted} examples)")
    return []


def _missing_docstrings(path: Path) -> list:
    """D100-D103-style findings for one file: public defs lacking docstrings."""
    tree = ast.parse(path.read_text(), filename=str(path))
    findings = []
    if ast.get_docstring(tree) is None and path.name != "__init__.py":
        findings.append(f"{path}:1 missing module docstring")

    def visit(node, inside_def: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                public = not child.name.startswith("_")
                # Nested functions are helpers, not API (pydocstyle skips
                # them too); methods of public classes are checked.
                is_nested_function = inside_def and not isinstance(
                    node, ast.ClassDef
                )
                if public and not is_nested_function:
                    if ast.get_docstring(child) is None:
                        kind = (
                            "class" if isinstance(child, ast.ClassDef) else "function"
                        )
                        findings.append(
                            f"{path}:{child.lineno} missing docstring on "
                            f"public {kind} {child.name!r}"
                        )
                visit(child, inside_def=not isinstance(child, ast.ClassDef))
    visit(tree, inside_def=False)
    return findings


def check_core_docstrings() -> list:
    """Docstring coverage of ``src/repro/core/``."""
    failures = []
    files = sorted((REPO / "src" / "repro" / "core").glob("*.py"))
    for path in files:
        failures.extend(_missing_docstrings(path))
    if not failures:
        print(f"ok: docstring coverage of src/repro/core/ ({len(files)} files)")
    return failures


def check_doc_headers() -> list:
    """Examples/benchmarks state artefact + runtime; README links resolve."""
    failures = []
    scripts = sorted((REPO / "examples").glob("*.py")) + sorted(
        path
        for path in (REPO / "benchmarks").glob("*.py")
        if path.name != "conftest.py"
    )
    for path in scripts:
        docstring = ast.get_docstring(ast.parse(path.read_text()))
        if not docstring:
            failures.append(f"{path}: missing module docstring")
            continue
        if "runtime" not in docstring.lower():
            failures.append(f"{path}: docstring states no expected runtime")
        if not re.search(r"(?i)(paper|fig\.|table|artefact|artifact)", docstring):
            failures.append(f"{path}: docstring names no paper artefact")
    readme = (REPO / "README.md").read_text()
    for target in re.findall(r"\]\(((?!https?:)[^)#]+)\)", readme):
        if not (REPO / target).exists():
            failures.append(f"README.md: broken link {target!r}")
    if not failures:
        print(f"ok: doc headers on {len(scripts)} scripts, README links resolve")
    return failures


def main() -> int:
    """Run all checks; print findings; non-zero exit on any failure."""
    failures = (
        check_readme_doctests() + check_core_docstrings() + check_doc_headers()
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        print(f"{len(failures)} documentation check(s) failed")
        return 1
    print("all documentation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
