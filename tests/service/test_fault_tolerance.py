"""Service-layer fault tolerance: structured 503s, degradation, timeouts.

The daemon's contract when its execution backend misbehaves: never hang
a request, never crash the process. Policy ``"raise"`` turns an
unavailable remote fleet into a structured 503 ``executor_unavailable``;
policy ``"degrade"`` finishes the request on the local fallback with the
*same bits* the fleet would have produced, and says so in ``stats``.
"""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest

from repro.analysis.experiments import build_case_study_network
from repro.appgraph.benchmarks import grid_side_for, load_benchmark
from repro.core import pool as pool_registry
from repro.core.evaluator import MappingEvaluator
from repro.core.mapping import random_assignment_batch
from repro.core.problem import MappingProblem
from repro.errors import ServiceError
from repro.service import ServiceClient, ServiceCore

pytestmark = [pytest.mark.chaos]

#: Enough random rows that the evaluate path genuinely shards across the
#: pool (>= 2 x MIN_SHARD_ROWS) instead of running inline.
ROWS = 160


def _offline_scores(app, seed, n_random):
    cg = load_benchmark(app)
    network = build_case_study_network("mesh", grid_side_for(cg), "crux")
    problem = MappingProblem(cg, network, "snr")
    evaluator = MappingEvaluator(problem)
    rows = random_assignment_batch(
        n_random, evaluator.n_tasks, evaluator.n_tiles,
        np.random.default_rng(seed),
    )
    return evaluator.evaluate_batch(rows).score


class TestPolicyRaise:
    def test_unreachable_fleet_answers_structured_503(self, monkeypatch):
        monkeypatch.setenv("PHONOCMAP_WORKER_WAIT_TIMEOUT_S", "0.5")
        core = ServiceCore(n_workers=2, executor="tcp://127.0.0.1:0")
        try:
            started = time.monotonic()
            body, status = core.handle(
                {"kind": "evaluate", "app": "pip", "seed": 3, "n_random": ROWS}
            )
            elapsed = time.monotonic() - started
            assert status == 503
            assert body["ok"] is False
            assert body["error"]["kind"] == "executor_unavailable"
            assert elapsed < 30  # the wait timeout bounds it, not a hang
            # The daemon survives: observability still answers.
            stats, stats_status = core.handle({"kind": "stats"})
            assert stats_status == 200
            assert stats["result"]["on_worker_loss"] == "raise"
        finally:
            core.close(timeout=30)
            pool_registry.shutdown_pools()


class TestPolicyDegrade:
    def test_degraded_request_is_bit_identical_and_reported(self, monkeypatch):
        monkeypatch.setenv("PHONOCMAP_WORKER_WAIT_TIMEOUT_S", "0.5")
        monkeypatch.setenv("PHONOCMAP_DEGRADE_TO", "inline")
        core = ServiceCore(
            n_workers=2,
            executor="tcp://127.0.0.1:0",
            on_worker_loss="degrade",
        )
        try:
            body, status = core.handle(
                {"kind": "evaluate", "app": "pip", "seed": 3, "n_random": ROWS}
            )
            assert status == 200, body
            offline = _offline_scores("pip", seed=3, n_random=ROWS)
            np.testing.assert_array_equal(
                np.asarray(body["result"]["score"]), offline
            )
            stats, _ = core.handle({"kind": "stats"})
            assert stats["result"]["degraded"] is True
            assert stats["result"]["on_worker_loss"] == "degrade"
        finally:
            core.close(timeout=30)
            pool_registry.shutdown_pools()


class TestClientTimeouts:
    def test_dead_port_fails_within_connect_timeout(self):
        # Grab a port that is definitely not listening.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(port=port, connect_timeout=0.5, timeout=1.0)
        started = time.monotonic()
        with pytest.raises(ServiceError) as info:
            client.request({"kind": "stats"})
        assert time.monotonic() - started < 10
        assert info.value.kind == "unreachable"
        assert info.value.status == 503

    def test_missing_socket_fails_fast_and_typed(self, tmp_path):
        client = ServiceClient(
            socket_path=str(tmp_path / "nope.sock"), connect_timeout=0.5
        )
        started = time.monotonic()
        with pytest.raises(ServiceError) as info:
            client.request({"kind": "stats"})
        assert time.monotonic() - started < 10
        assert info.value.kind == "unreachable"

    def test_backoff_is_capped(self):
        client = ServiceClient(port=1, retries=10)
        delays = [client._backoff(retry) for retry in range(1, 11)]
        assert delays[0] == pytest.approx(0.2)
        assert max(delays) <= 2.0
        assert delays == sorted(delays)
