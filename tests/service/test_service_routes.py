"""Service-layer tests for joint mapping x routing requests.

The ``routes`` request field must thread end to end: the schema
validates widened mapping rows and gene ranges, the core builds routed
problems whose responses stay bit-identical to the equivalent offline
run, daemon-level ``default_routes`` applies only when the request does
not choose its own, and ``routes: 1`` responses keep the historical
shape (no ``route_genes`` key).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import build_case_study_network
from repro.appgraph.benchmarks import load_benchmark
from repro.core import pool as pool_registry
from repro.core.dse import DesignSpaceExplorer
from repro.core.evaluator import MappingEvaluator
from repro.core.problem import MappingProblem
from repro.errors import ServiceError
from repro.service import ServiceCore
from repro.service.schema import parse_request


def routed_problem(app="pip", routes=3):
    cg = load_benchmark(app)
    network = build_case_study_network("torus", 4, "crux")
    return MappingProblem(cg, network, routes=routes)


@pytest.fixture
def core():
    core = ServiceCore(n_workers=1)
    yield core
    core.close(timeout=30)
    pool_registry.shutdown_pools()


class TestRoutesSchema:
    def test_routes_field_parsed(self):
        request = parse_request(
            {"kind": "evaluate", "app": "pip", "routes": 3}
        )
        assert request.routes == 3
        assert request.problem().routes == 3

    def test_default_routes_applies_when_absent(self):
        request = parse_request(
            {"kind": "evaluate", "app": "pip"}, default_routes=3
        )
        assert request.routes == 3

    def test_explicit_routes_beats_default(self):
        request = parse_request(
            {"kind": "evaluate", "app": "pip", "routes": 1}, default_routes=3
        )
        assert request.routes == 1

    def test_routes_below_one_rejected(self):
        with pytest.raises(ServiceError, match="routes"):
            parse_request({"kind": "evaluate", "app": "pip", "routes": 0})

    def test_widened_rows_accepted_when_routed(self):
        cg = load_benchmark("pip")  # 8 tasks
        row = list(range(cg.n_tasks)) + [0] * cg.n_edges
        request = parse_request(
            {"kind": "evaluate", "app": "pip", "routes": 3, "mappings": [row]}
        )
        assert request.assignments.shape == (1, cg.n_tasks + cg.n_edges)

    def test_widened_rows_rejected_without_routes(self):
        cg = load_benchmark("pip")
        row = list(range(cg.n_tasks)) + [0] * cg.n_edges
        with pytest.raises(ServiceError, match="tile indices"):
            parse_request({"kind": "evaluate", "app": "pip", "mappings": [row]})

    def test_out_of_range_gene_rejected(self):
        cg = load_benchmark("pip")
        row = list(range(cg.n_tasks)) + [0] * cg.n_edges
        row[-1] = 3  # genes live in [0, routes)
        with pytest.raises(ServiceError, match="route genes"):
            parse_request(
                {"kind": "evaluate", "app": "pip", "routes": 3,
                 "mappings": [row]}
            )

    def test_injectivity_checked_on_head_only(self):
        cg = load_benchmark("pip")
        row = list(range(cg.n_tasks)) + [1] * cg.n_edges  # repeated genes OK
        request = parse_request(
            {"kind": "evaluate", "app": "pip", "routes": 3, "mappings": [row]}
        )
        assert request.assignments is not None


class TestRoutedDispatch:
    def test_optimize_returns_route_genes_and_matches_offline(self, core):
        body, status = core.handle(
            {
                "kind": "optimize", "app": "pip", "topology": "torus",
                "side": 4, "strategy": "tabu", "budget": 200, "seed": 5,
                "routes": 3,
            }
        )
        assert status == 200 and body["ok"], body
        with DesignSpaceExplorer(routed_problem()) as explorer:
            offline = explorer.run("tabu", budget=200, seed=5)
        result = body["result"]
        assert result["best_score"] == offline.best_score
        assert result["assignment"] == offline.best_mapping.assignment.tolist()
        assert result["route_genes"] == offline.route_genes.tolist()
        assert all(0 <= g < 3 for g in result["route_genes"])

    def test_single_route_response_has_no_route_genes(self, core):
        body, status = core.handle(
            {
                "kind": "optimize", "app": "pip", "strategy": "rs",
                "budget": 64, "seed": 1,
            }
        )
        assert status == 200, body
        assert "route_genes" not in body["result"]

    def test_routed_random_evaluate_matches_offline(self, core):
        body, status = core.handle(
            {
                "kind": "evaluate", "app": "pip", "topology": "torus",
                "side": 4, "routes": 3, "seed": 11, "n_random": 8,
            }
        )
        assert status == 200, body
        evaluator = MappingEvaluator(routed_problem())
        rows = evaluator.random_vector_batch(8, np.random.default_rng(11))
        offline = evaluator.evaluate_batch(rows)
        evaluator.close()
        assert body["result"]["worst_snr_db"] == offline.worst_snr_db.tolist()

    def test_routed_explicit_design_vectors(self, core):
        problem = routed_problem()
        evaluator = MappingEvaluator(problem)
        rng = np.random.default_rng(13)
        rows = [evaluator.random_vector(rng).tolist() for _ in range(2)]
        body, status = core.handle(
            {
                "kind": "evaluate", "app": "pip", "topology": "torus",
                "side": 4, "routes": 3, "mappings": rows,
            }
        )
        assert status == 200, body
        offline = evaluator.evaluate_batch(np.asarray(rows))
        evaluator.close()
        assert body["result"]["worst_snr_db"] == offline.worst_snr_db.tolist()


class TestDefaultRoutes:
    def test_daemon_default_applies(self):
        core = ServiceCore(n_workers=1, default_routes=3)
        try:
            body, status = core.handle(
                {
                    "kind": "optimize", "app": "pip", "topology": "torus",
                    "side": 4, "strategy": "rs", "budget": 64, "seed": 2,
                }
            )
            assert status == 200, body
            assert "route_genes" in body["result"]

            body, status = core.handle(
                {
                    "kind": "optimize", "app": "pip", "topology": "torus",
                    "side": 4, "strategy": "rs", "budget": 64, "seed": 2,
                    "routes": 1,
                }
            )
            assert status == 200, body
            assert "route_genes" not in body["result"]

            stats, status = core.handle({"kind": "stats"})
            assert status == 200
            assert stats["result"]["default_routes"] == 3
        finally:
            core.close(timeout=30)
            pool_registry.shutdown_pools()
