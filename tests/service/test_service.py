"""End-to-end tests of the mapping-service daemon.

The contract under test is the determinism clause from
``docs/ARCHITECTURE.md``: every response the daemon returns is
**bit-identical to the equivalent offline run with the same seed**,
including while the request's batch work rides coalesced flights shared
with concurrent requests — of the same signature or interleaved with a
different one.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.analysis.distribution import random_mapping_distribution
from repro.analysis.experiments import build_case_study_network
from repro.appgraph.benchmarks import grid_side_for, load_benchmark
from repro.core import pool as pool_registry
from repro.core.dse import DesignSpaceExplorer
from repro.core.evaluator import MappingEvaluator
from repro.core.problem import MappingProblem
from repro.errors import ServiceError
from repro.models.coupling import clear_model_cache
from repro.service import (
    BatchCoalescer,
    CoalescingEvaluator,
    ServiceClient,
    ServiceCore,
    ServiceLimits,
    ServiceServer,
)
from repro.service.schema import parse_request


def offline_problem(app, objective="snr"):
    cg = load_benchmark(app)
    network = build_case_study_network("mesh", grid_side_for(cg), "crux")
    return MappingProblem(cg, network, objective)


@pytest.fixture
def core():
    core = ServiceCore(n_workers=1)
    yield core
    core.close(timeout=30)
    pool_registry.shutdown_pools()


class TestSchema:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="kind"):
            parse_request({"kind": "teleport"})

    def test_request_must_be_object(self):
        with pytest.raises(ServiceError, match="JSON object"):
            parse_request(["optimize"])

    def test_app_and_cg_are_exclusive(self):
        with pytest.raises(ServiceError, match="exactly one"):
            parse_request({"kind": "evaluate", "app": "pip", "cg": {}})
        with pytest.raises(ServiceError, match="exactly one"):
            parse_request({"kind": "evaluate"})

    def test_unknown_benchmark(self):
        with pytest.raises(ServiceError, match="unknown benchmark"):
            parse_request({"kind": "evaluate", "app": "doom"})

    def test_bad_dtype_and_backend(self):
        with pytest.raises(ServiceError, match="dtype"):
            parse_request({"kind": "evaluate", "app": "pip", "dtype": "f16"})
        with pytest.raises(ServiceError, match="backend"):
            parse_request({"kind": "evaluate", "app": "pip", "backend": "gpu"})

    def test_non_injective_mapping_rejected(self):
        with pytest.raises(ServiceError, match="distinct tiles"):
            parse_request(
                {"kind": "evaluate", "app": "pip", "mappings": [[0] * 8]}
            )

    def test_wrong_row_width_rejected(self):
        with pytest.raises(ServiceError, match="8 tile indices"):
            parse_request(
                {"kind": "evaluate", "app": "pip", "mappings": [[0, 1, 2]]}
            )

    def test_negative_seed_rejected(self):
        with pytest.raises(ServiceError, match="seed"):
            parse_request({"kind": "evaluate", "app": "pip", "seed": -1})


class TestCoreDispatch:
    def test_evaluate_matches_offline_bit_exactly(self, core):
        body, status = core.handle(
            {"kind": "evaluate", "app": "pip", "seed": 3, "n_random": 16}
        )
        assert status == 200 and body["ok"], body
        problem = offline_problem("pip")
        evaluator = MappingEvaluator(problem)
        from repro.core.mapping import random_assignment_batch

        rows = random_assignment_batch(
            16, evaluator.n_tasks, evaluator.n_tiles, np.random.default_rng(3)
        )
        offline = evaluator.evaluate_batch(rows)
        evaluator.close()
        # Through a JSON round-trip: repr-based float serialization is
        # exact, so the wire format preserves bit-identity.
        wire = json.loads(json.dumps(body["result"]))
        assert wire["worst_snr_db"] == offline.worst_snr_db.tolist()
        assert (
            wire["worst_insertion_loss_db"]
            == offline.worst_insertion_loss_db.tolist()
        )

    def test_explicit_mappings_and_float32_backend(self, core):
        problem = offline_problem("pip")
        rows = [list(range(8)), list(range(8))[::-1]]
        body, status = core.handle(
            {
                "kind": "evaluate", "app": "pip", "mappings": rows,
                "dtype": "float32", "backend": "sparse",
            }
        )
        assert status == 200, body
        evaluator = MappingEvaluator(problem, dtype=np.float32, backend="sparse")
        offline = evaluator.evaluate_batch(np.asarray(rows))
        evaluator.close()
        assert body["result"]["worst_snr_db"] == offline.worst_snr_db.tolist()

    def test_optimize_matches_offline_run(self, core):
        body, status = core.handle(
            {
                "kind": "optimize", "app": "pip", "strategy": "rs",
                "budget": 128, "seed": 9,
            }
        )
        assert status == 200, body
        with DesignSpaceExplorer(offline_problem("pip")) as explorer:
            offline = explorer.run("rs", budget=128, seed=9)
        result = body["result"]
        assert result["best_score"] == offline.best_score
        assert result["assignment"] == offline.best_mapping.assignment.tolist()
        assert result["evaluations"] == offline.evaluations
        assert result["history"] == [[n, s] for n, s in offline.history]

    def test_distribution_matches_offline_sweep(self, core):
        body, status = core.handle(
            {"kind": "distribution", "app": "pip", "samples": 96, "seed": 5}
        )
        assert status == 200, body
        cg = load_benchmark("pip")
        offline = random_mapping_distribution(
            cg, build_case_study_network("mesh", grid_side_for(cg), "crux"),
            n_samples=96, seed=5,
        )
        assert body["result"]["worst_snr_db"] == offline.worst_snr_db.tolist()
        assert body["result"]["worst_loss_db"] == offline.worst_loss_db.tolist()

    def test_budget_caps_enforced(self):
        core = ServiceCore(limits=ServiceLimits(max_budget=100, max_samples=50,
                                                max_mappings=4))
        try:
            body, status = core.handle(
                {"kind": "optimize", "app": "pip", "budget": 101}
            )
            assert status == 400 and body["error"]["kind"] == "over_budget"
            body, status = core.handle(
                {"kind": "distribution", "app": "pip", "samples": 51}
            )
            assert status == 400 and body["error"]["kind"] == "over_budget"
            body, status = core.handle(
                {"kind": "evaluate", "app": "pip", "n_random": 5}
            )
            assert status == 400 and body["error"]["kind"] == "over_budget"
        finally:
            core.close(timeout=10)

    def test_queue_full_is_structured_429(self):
        limits = ServiceLimits(max_inflight=1, queue_size=1)
        core = ServiceCore(limits=limits)
        try:
            # Deterministically exhaust admission: take every queue slot
            # ourselves, then knock.
            taken = 0
            while core._queue_slots.acquire(blocking=False):
                taken += 1
            assert taken == limits.max_inflight + limits.queue_size
            body, status = core.handle({"kind": "evaluate", "app": "pip"})
            assert status == 429
            assert body["ok"] is False
            assert body["error"]["kind"] == "queue_full"
            assert "retry" in body["error"]["message"]
            for _ in range(taken):
                core._queue_slots.release()
            # stats still answers while the queue is full, and counts it
            assert core.stats()["rejected_queue_full"] == 1
        finally:
            core.close(timeout=10)

    def test_closed_core_answers_503(self, core):
        core.close(timeout=10)
        body, status = core.handle({"kind": "evaluate", "app": "pip"})
        assert status == 503
        assert body["error"]["kind"] == "shutting_down"

    def test_malformed_json_is_structured_error(self, core):
        body, status = core.handle_json(b"{nope")
        assert status == 400
        assert body["error"]["kind"] == "invalid_json"

    def test_infeasible_problem_is_400(self, core):
        # VOPD (16 tasks) cannot fit a 3x3 grid: eq. (2) violation.
        body, status = core.handle(
            {"kind": "evaluate", "app": "vopd", "side": 3}
        )
        assert status == 400
        assert body["ok"] is False


class TestCoalescing:
    def test_concurrent_requests_coalesce_and_stay_bit_identical(self):
        """The tentpole invariant, end to end over the unix socket.

        Two same-signature requests plus an interleaved different-seed
        distribution run concurrently; coalescing must engage (merged
        flights carry more than one submission) and every response must
        equal its offline counterpart bit for bit.
        """
        core = ServiceCore(n_workers=1, coalesce_window_s=0.05)
        responses = {}

        def call(name, payload, path):
            with ServiceClient(socket_path=path) as client:
                responses[name] = client.request(payload)

        requests = {
            "opt_snr": {"kind": "optimize", "app": "pip", "strategy": "rs",
                        "budget": 192, "seed": 11},
            "opt_loss": {"kind": "optimize", "app": "pip", "strategy": "rs",
                         "budget": 192, "seed": 11, "objective": "loss"},
            "dist": {"kind": "distribution", "app": "pip", "samples": 256,
                     "seed": 6},
        }
        import tempfile, os
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "daemon.sock")
            with ServiceServer(core, socket_path=path):
                threads = [
                    threading.Thread(target=call, args=(name, payload, path))
                    for name, payload in requests.items()
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                with ServiceClient(socket_path=path) as client:
                    stats = client.request({"kind": "stats"})["result"]
        for name, response in responses.items():
            assert response["ok"], (name, response)

        totals = stats["coalescing"]["totals"]
        assert totals["flights"] >= 1
        assert totals["coalesced_batches"] > 0, (
            "coalescing never engaged: " + json.dumps(totals)
        )
        assert totals["batches"] > totals["flights"]

        with DesignSpaceExplorer(offline_problem("pip", "snr")) as explorer:
            off_snr = explorer.run("rs", budget=192, seed=11)
        with DesignSpaceExplorer(offline_problem("pip", "loss")) as explorer:
            off_loss = explorer.run("rs", budget=192, seed=11)
        cg = load_benchmark("pip")
        off_dist = random_mapping_distribution(
            cg, build_case_study_network("mesh", grid_side_for(cg), "crux"),
            n_samples=256, seed=6,
        )
        assert responses["opt_snr"]["result"]["best_score"] == off_snr.best_score
        assert (
            responses["opt_snr"]["result"]["assignment"]
            == off_snr.best_mapping.assignment.tolist()
        )
        # Same seed, different objective: different winner, still exact —
        # the two rode the same flights (same objective-free pool key).
        assert responses["opt_loss"]["result"]["best_score"] == off_loss.best_score
        assert (
            responses["opt_loss"]["result"]["assignment"]
            == off_loss.best_mapping.assignment.tolist()
        )
        assert (
            responses["dist"]["result"]["worst_snr_db"]
            == off_dist.worst_snr_db.tolist()
        )

    def test_coalescer_splits_tables_per_ticket(self):
        problem = offline_problem("pip")
        shared = MappingEvaluator(problem)
        coalescer = BatchCoalescer(shared, window_s=0.05)
        try:
            from repro.core.mapping import random_assignment_batch

            rng = np.random.default_rng(0)
            a = random_assignment_batch(5, shared.n_tasks, shared.n_tiles, rng)
            b = random_assignment_batch(3, shared.n_tasks, shared.n_tiles, rng)
            ticket_a = coalescer.submit(a)
            ticket_b = coalescer.submit(b)
            tables_a = ticket_a.tables()
            tables_b = ticket_b.tables()
            reference = shared.submit_batch(np.concatenate([a, b])).tables()
            for column_a, column_b, column in zip(tables_a, tables_b, reference):
                np.testing.assert_array_equal(
                    np.concatenate([column_a, column_b]), column
                )
            assert coalescer.stats.batches == 2
        finally:
            coalescer.close()
            shared.close()

    def test_closed_coalescer_rejects_submissions(self):
        problem = offline_problem("pip")
        shared = MappingEvaluator(problem)
        coalescer = BatchCoalescer(shared)
        coalescer.close()
        try:
            with pytest.raises(ServiceError, match="shutting down"):
                coalescer.submit(np.arange(8, dtype=np.int64)[None, :])
        finally:
            shared.close()

    def test_unbound_coalescing_evaluator_stays_inline(self):
        problem = offline_problem("pip")
        evaluator = CoalescingEvaluator(problem)
        try:
            from repro.core.mapping import random_assignment_batch

            rows = random_assignment_batch(
                4, evaluator.n_tasks, evaluator.n_tiles,
                np.random.default_rng(1),
            )
            metrics = evaluator.evaluate_batch(rows)
            assert metrics.score.shape == (4,)
        finally:
            evaluator.close()


class TestWarmRestart:
    def test_restart_with_model_cache_loads_memmaps(self, tmp_path):
        """A restarted daemon must warm-load models, not rebuild them."""
        cache = str(tmp_path / "models")
        request = {"kind": "evaluate", "app": "pip", "seed": 2, "n_random": 4}

        clear_model_cache()  # cold daemon: force a real build + disk save
        first = ServiceCore(model_cache_dir=cache)
        body_cold, status = first.handle(request)
        assert status == 200, body_cold
        first.close(timeout=30)
        pool_registry.shutdown_pools()
        clear_model_cache()  # drop the in-process registry: fresh daemon

        second = ServiceCore(model_cache_dir=cache)
        try:
            body_warm, status = second.handle(request)
            assert status == 200, body_warm
            assert body_warm["result"] == body_cold["result"]
            # The shared evaluator's model came off disk: its coupling
            # matrix is a read-only memory map, not a rebuilt array.
            models = [
                coalescer.evaluator.model
                for coalescer in second._coalescers.values()
            ]
            assert models
            assert all(
                isinstance(model.coupling_linear, np.memmap)
                for model in models
            )
        finally:
            second.close(timeout=30)
            pool_registry.shutdown_pools()
            clear_model_cache()


class TestTransports:
    def test_http_round_trip_and_stats(self):
        core = ServiceCore()
        server = ServiceServer(core, port=0)
        server.start()
        try:
            with ServiceClient(port=server.port) as client:
                response = client.request(
                    {"kind": "evaluate", "app": "pip", "seed": 1}
                )
                assert response["ok"], response
                response = client.request({"kind": "bogus"})
                assert response["ok"] is False
                assert response["error"]["status"] == 400
            # GET is the stats endpoint
            import http.client

            connection = http.client.HTTPConnection("127.0.0.1", server.port)
            connection.request("GET", "/")
            stats = json.loads(connection.getresponse().read())
            connection.close()
            assert stats["ok"] and stats["kind"] == "stats"
            assert stats["result"]["served"] == {"evaluate": 1}
        finally:
            server.stop()

    def test_unix_socket_multiple_requests_per_connection(self, tmp_path):
        core = ServiceCore()
        path = str(tmp_path / "daemon.sock")
        with ServiceServer(core, socket_path=path):
            with ServiceClient(socket_path=path) as client:
                for seed in (1, 2):
                    response = client.request(
                        {"kind": "evaluate", "app": "pip", "seed": seed}
                    )
                    assert response["ok"], response

    def test_stopped_server_unlinks_socket(self, tmp_path):
        import os

        core = ServiceCore()
        path = str(tmp_path / "daemon.sock")
        server = ServiceServer(core, socket_path=path)
        server.start()
        assert os.path.exists(path)
        server.stop()
        server.stop()  # idempotent
        assert not os.path.exists(path)

    def test_client_refuses_ambiguous_endpoint(self):
        with pytest.raises(ServiceError, match="exactly one"):
            ServiceClient()
        with pytest.raises(ServiceError, match="exactly one"):
            ServiceServer(ServiceCore())

    def test_client_reports_unreachable_daemon(self, tmp_path):
        client = ServiceClient(socket_path=str(tmp_path / "nobody.sock"))
        with pytest.raises(ServiceError, match="cannot reach"):
            client.request({"kind": "stats"})
