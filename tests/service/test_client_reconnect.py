"""Client reconnect semantics and the stats executor section.

The :class:`~repro.service.client.ServiceClient` keeps one persistent
unix connection per client. A daemon restart (or idle reap) silently
kills that connection server-side; the client must absorb exactly one
such failure — by redialing and retrying — and only for requests whose
replay cannot change the answer: ``stats``, explicit-mapping
``evaluate``, and anything carrying an explicit ``seed``. An unseeded
request draws fresh OS entropy per execution, so replaying it could
return a different answer: it surfaces the failure instead.
"""

from __future__ import annotations

import pytest

from repro.core import pool as pool_registry
from repro.errors import ServiceError
from repro.service import ServiceClient, ServiceCore, ServiceServer


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    pool_registry.shutdown_pools()


def _serve(path):
    server = ServiceServer(ServiceCore(n_workers=1), socket_path=path)
    server.start()
    return server


class TestIdempotencyRule:
    def test_rule(self):
        idempotent = ServiceClient._idempotent
        assert idempotent({"kind": "stats"})
        assert idempotent({"kind": "optimize", "seed": 7})
        assert idempotent({"kind": "evaluate", "mappings": [[0, 1]]})
        assert idempotent({"kind": "distribution", "samples": 8, "seed": 0})
        assert not idempotent({"kind": "distribution", "samples": 8})
        assert not idempotent({"kind": "optimize", "seed": None})
        assert not idempotent("not a dict")


class TestReconnect:
    def test_stats_survives_daemon_restart(self, tmp_path):
        path = str(tmp_path / "daemon.sock")
        server = _serve(path)
        client = ServiceClient(socket_path=path)
        try:
            first = client.request({"kind": "stats"})
            assert first["ok"], first
            server.stop()
            server = _serve(path)  # rebinds the same path
            # The client's persistent connection is now dead; the retry
            # must be transparent for a read-only request.
            second = client.request({"kind": "stats"})
            assert second["ok"], second
        finally:
            client.close()
            server.stop()

    def test_seeded_request_bit_identical_across_restart(self, tmp_path):
        path = str(tmp_path / "daemon.sock")
        payload = {"kind": "distribution", "app": "pip",
                   "samples": 64, "seed": 5}
        server = _serve(path)
        client = ServiceClient(socket_path=path)
        try:
            before = client.request(payload)
            assert before["ok"], before
            server.stop()
            server = _serve(path)
            after = client.request(payload)
            assert after["ok"], after
            assert after["result"] == before["result"]
        finally:
            client.close()
            server.stop()

    def test_unseeded_request_is_not_retried(self, tmp_path):
        path = str(tmp_path / "daemon.sock")
        server = _serve(path)
        client = ServiceClient(socket_path=path)
        try:
            assert client.request({"kind": "stats"})["ok"]
            server.stop()
            server = _serve(path)
            with pytest.raises(ServiceError) as excinfo:
                client.request(
                    {"kind": "distribution", "app": "pip", "samples": 8}
                )
            assert excinfo.value.kind == "unreachable"
            assert excinfo.value.status == 503
            # The connection was dropped; the *next* idempotent request
            # dials fresh and succeeds.
            assert client.request({"kind": "stats"})["ok"]
        finally:
            client.close()
            server.stop()

    def test_fresh_connection_failure_raises_immediately(self, tmp_path):
        client = ServiceClient(socket_path=str(tmp_path / "nobody.sock"))
        with pytest.raises(ServiceError) as excinfo:
            client.request({"kind": "stats"})  # idempotent, but fresh dial
        assert excinfo.value.kind == "unreachable"


class TestStatsExecutorSection:
    def test_stats_reports_executor_info(self, tmp_path):
        path = str(tmp_path / "daemon.sock")
        server = _serve(path)
        try:
            with ServiceClient(socket_path=path) as client:
                warm = client.request(
                    {"kind": "distribution", "app": "pip",
                     "samples": 64, "seed": 2}
                )
                assert warm["ok"], warm
                stats = client.request({"kind": "stats"})["result"]
        finally:
            server.stop()
        assert stats["executor"] == "local"
        executors = stats["executors"]
        assert set(executors) == {"backends", "totals"}
        assert set(executors["totals"]) == {
            "tasks_dispatched", "tasks_retried", "workers",
            "tasks_degraded", "degraded",
        }
        for entry in executors["backends"]:
            assert {"kind", "broken", "tasks_dispatched"} <= set(entry)

    def test_core_threads_executor_spec_through(self):
        core = ServiceCore(n_workers=1, executor="inline")
        try:
            assert core.stats()["executor"] == "inline"
        finally:
            core.close(timeout=30)
