"""End-to-end integration tests exercising the public API as a user would."""

import numpy as np
import pytest

from repro import (
    DesignSpaceExplorer,
    Mapping,
    MappingProblem,
    PhotonicNoC,
    PowerBudget,
    load_benchmark,
    mesh,
    required_laser_power_dbm,
    torus,
)


class TestQuickstartFlow:
    """The README quickstart, verified."""

    def test_full_flow(self):
        cg = load_benchmark("vopd")
        network = PhotonicNoC(mesh(4, 4), router="crux")
        problem = MappingProblem(cg, network, objective="snr")
        result = DesignSpaceExplorer(problem).run("r-pbla", budget=2000, seed=1)
        assert result.best_metrics.worst_snr_db > 5.0
        assert result.best_metrics.worst_insertion_loss_db < 0.0
        laser = required_laser_power_dbm(
            result.best_metrics.worst_insertion_loss_db, PowerBudget()
        )
        assert laser < 0.0  # small meshes need modest laser power


class TestOptimizationQuality:
    def test_optimized_beats_median_random(self, pip_cg, mesh3_network):
        """The paper's core claim end-to-end: optimization significantly
        improves the worst-case SNR over typical random mappings."""
        from repro.core import MappingEvaluator
        from repro.core.mapping import random_assignment_batch

        problem = MappingProblem(pip_cg, mesh3_network, "snr")
        evaluator = MappingEvaluator(problem)
        rng = np.random.default_rng(0)
        sample = evaluator.evaluate_batch(
            random_assignment_batch(512, 8, 9, rng)
        )
        median_random = float(np.median(sample.worst_snr_db))
        explorer = DesignSpaceExplorer(problem)
        optimized = explorer.run("r-pbla", budget=4000, seed=1)
        assert optimized.best_metrics.worst_snr_db > median_random + 5.0

    def test_loss_objective_trades_against_snr(self, pip_cg, mesh3_network):
        """Optimizing loss and optimizing SNR pick different champions."""
        snr_explorer = DesignSpaceExplorer(
            MappingProblem(pip_cg, mesh3_network, "snr")
        )
        loss_explorer = DesignSpaceExplorer(
            MappingProblem(pip_cg, mesh3_network, "loss")
        )
        best_snr = snr_explorer.run("r-pbla", budget=4000, seed=2)
        best_loss = loss_explorer.run("r-pbla", budget=4000, seed=2)
        assert (
            best_loss.best_metrics.worst_insertion_loss_db
            >= best_snr.best_metrics.worst_insertion_loss_db - 1e-9
        )

    def test_torus_reduces_worst_loss_for_spread_mappings(self, params):
        """Torus wrap-around shortens worst paths for corner-heavy
        mappings (the paper's mesh/torus comparison direction)."""
        cg = load_benchmark("263enc_mp3enc")
        mesh_net = PhotonicNoC(mesh(4, 4), params=params)
        torus_net = PhotonicNoC(torus(4, 4), params=params)
        mapping = Mapping(cg, np.arange(12), 16)
        from repro.core import MappingEvaluator

        mesh_metrics = MappingEvaluator(
            MappingProblem(cg, mesh_net, "loss")
        ).evaluate(mapping)
        torus_metrics = MappingEvaluator(
            MappingProblem(cg, torus_net, "loss")
        ).evaluate(mapping)
        # identical mapping: the torus never lengthens the worst path
        assert (
            torus_metrics.worst_insertion_loss_db
            >= mesh_metrics.worst_insertion_loss_db - 0.3
        )


class TestArchitectureSweep:
    def test_all_router_topology_combinations_evaluate(self, params, pip_cg):
        for router in ("crux", "crossbar", "reduced_crossbar"):
            for build in (mesh, torus):
                network = PhotonicNoC(build(3, 3), router=router, params=params)
                problem = MappingProblem(pip_cg, network, "snr")
                metrics = problem.evaluator().evaluate(np.arange(8))
                assert metrics.worst_insertion_loss_db < 0

    def test_crux_beats_crossbar_on_transit_loss(self, params):
        """Crux's DOR optimization shows up on straight multi-hop paths:
        its passive transits are far cheaper than crossbar ring hops."""
        from repro.noc import line

        crux_net = PhotonicNoC(line(4), router="crux", params=params)
        xbar_net = PhotonicNoC(line(4), router="crossbar", params=params)
        assert crux_net.path(0, 3).loss_db > xbar_net.path(0, 3).loss_db + 1.0


class TestCustomExtension:
    def test_user_defined_router_end_to_end(self, params, pip_cg):
        """The paper's extensibility claim: a new router drawing works
        through the whole stack without core changes."""
        from repro.router import (
            RingSpec,
            RouterLayout,
            WaveguideSpec,
            register_router,
        )
        from repro.router.crux import crux_layout
        from repro.router.layout import compile_layout

        def build_variant(parameters):
            layout = crux_layout(unit_cm=0.002)  # denser variant
            return compile_layout(
                RouterLayout("crux_dense", layout.waveguides, layout.rings, 0.002),
                parameters,
            )

        register_router("crux_dense_test", build_variant, overwrite=True)
        network = PhotonicNoC(mesh(3, 3), router="crux_dense_test", params=params)
        metrics = (
            MappingProblem(pip_cg, network, "snr")
            .evaluator()
            .evaluate(np.arange(8))
        )
        assert metrics.worst_insertion_loss_db < 0
