"""CommunicationGraph tests (Def. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appgraph import CommunicationEdge, CommunicationGraph
from repro.errors import ConfigurationError


def small_cg():
    return CommunicationGraph(
        "toy", ["a", "b", "c"], [(0, 1, 10.0), (1, 2, 20.0), (0, 2, 5.0)]
    )


class TestConstruction:
    def test_counts(self):
        cg = small_cg()
        assert cg.n_tasks == 3
        assert cg.n_edges == 3

    def test_task_lookup(self):
        cg = small_cg()
        assert cg.task_index("b") == 1
        assert cg.task_name(2) == "c"

    def test_unknown_task(self):
        with pytest.raises(ConfigurationError):
            small_cg().task_index("zz")

    def test_edge_tuples_without_bandwidth(self):
        cg = CommunicationGraph("toy", ["a", "b"], [(0, 1)])
        assert cg.edges[0].bandwidth == 1.0

    def test_edge_objects(self):
        cg = CommunicationGraph("toy", ["a", "b"], [CommunicationEdge(0, 1, 3.0)])
        assert cg.edges[0].bandwidth == 3.0

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError, match="self-loop"):
            CommunicationGraph("bad", ["a", "b"], [(0, 0, 1.0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate edge"):
            CommunicationGraph("bad", ["a", "b"], [(0, 1), (0, 1)])

    def test_opposite_edges_allowed(self):
        cg = CommunicationGraph("ok", ["a", "b"], [(0, 1), (1, 0)])
        assert cg.n_edges == 2

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ConfigurationError, match="outside"):
            CommunicationGraph("bad", ["a", "b"], [(0, 2)])

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError, match="bandwidth"):
            CommunicationGraph("bad", ["a", "b"], [(0, 1, 0.0)])

    def test_no_edges_rejected(self):
        with pytest.raises(ConfigurationError, match="no edges"):
            CommunicationGraph("bad", ["a", "b"], [])

    def test_duplicate_task_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate task"):
            CommunicationGraph("bad", ["a", "a"], [(0, 1)])

    def test_needs_name(self):
        with pytest.raises(ConfigurationError):
            CommunicationGraph("", ["a", "b"], [(0, 1)])

    def test_from_named_edges(self):
        cg = CommunicationGraph.from_named_edges(
            "toy", [("x", "y", 1.0), ("y", "z", 2.0)]
        )
        assert cg.tasks == ("x", "y", "z")
        assert cg.n_edges == 2


class TestArrayViews:
    def test_edge_array(self):
        array = small_cg().edge_array()
        assert array.shape == (3, 2)
        assert list(array[0]) == [0, 1]

    def test_bandwidth_array(self):
        assert list(small_cg().bandwidth_array()) == [10.0, 20.0, 5.0]

    def test_total_bandwidth(self):
        assert small_cg().total_bandwidth() == 35.0


class TestSerializationMask:
    def test_diagonal_false(self):
        mask = small_cg().serialization_mask()
        assert not mask[0, 0] and not mask[1, 1] and not mask[2, 2]

    def test_shared_source_excluded(self):
        # edges 0 (a->b) and 2 (a->c) share the source a
        mask = small_cg().serialization_mask()
        assert not mask[0, 2] and not mask[2, 0]

    def test_shared_destination_excluded(self):
        # edges 1 (b->c) and 2 (a->c) share the destination c
        mask = small_cg().serialization_mask()
        assert not mask[1, 2] and not mask[2, 1]

    def test_chain_edges_interfere(self):
        # edges 0 (a->b) and 1 (b->c): b receives and sends — full duplex
        mask = small_cg().serialization_mask()
        assert mask[0, 1] and mask[1, 0]

    def test_mask_symmetric(self):
        mask = small_cg().serialization_mask()
        assert np.array_equal(mask, mask.T)


class TestStructure:
    def test_degrees(self):
        cg = small_cg()
        assert cg.out_degree(0) == 2
        assert cg.in_degree(2) == 2

    def test_graph_view(self):
        g = small_cg().graph()
        assert g.number_of_nodes() == 3
        assert g["a"]["b"]["bandwidth"] == 10.0

    def test_weak_connectivity(self):
        assert small_cg().is_weakly_connected()
        disconnected = CommunicationGraph(
            "two", ["a", "b", "c", "d"], [(0, 1), (2, 3)]
        )
        assert not disconnected.is_weakly_connected()


@given(st.integers(min_value=2, max_value=12), st.data())
@settings(max_examples=30, deadline=None)
def test_mask_never_allows_shared_endpoints(n_tasks, data):
    n_edges = data.draw(
        st.integers(min_value=1, max_value=min(n_tasks * (n_tasks - 1), 20))
    )
    possible = [
        (a, b) for a in range(n_tasks) for b in range(n_tasks) if a != b
    ]
    picks = data.draw(
        st.lists(
            st.sampled_from(possible),
            min_size=n_edges,
            max_size=n_edges,
            unique=True,
        )
    )
    cg = CommunicationGraph(
        "random", [f"t{i}" for i in range(n_tasks)], [(a, b, 1.0) for a, b in picks]
    )
    mask = cg.serialization_mask()
    pairs = cg.edge_array()
    for i in range(len(picks)):
        for j in range(len(picks)):
            shares = (
                i == j
                or pairs[i, 0] == pairs[j, 0]
                or pairs[i, 1] == pairs[j, 1]
            )
            assert mask[i, j] == (not shares)
