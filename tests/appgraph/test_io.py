"""Communication graph IO tests."""

import pytest

from repro.appgraph import (
    cg_from_dict,
    cg_from_edge_lines,
    cg_to_dict,
    cg_to_dot,
    cg_to_edge_lines,
    load_benchmark,
    load_cg_json,
    save_cg_json,
)
from repro.errors import ConfigurationError


class TestJsonRoundTrip:
    def test_dict_round_trip(self, pip_cg):
        rebuilt = cg_from_dict(cg_to_dict(pip_cg))
        assert rebuilt.name == pip_cg.name
        assert rebuilt.tasks == pip_cg.tasks
        assert rebuilt.edge_pairs() == pip_cg.edge_pairs()
        assert list(rebuilt.bandwidth_array()) == list(pip_cg.bandwidth_array())

    def test_file_round_trip(self, tmp_path, vopd_cg):
        path = tmp_path / "vopd.json"
        save_cg_json(vopd_cg, path)
        rebuilt = load_cg_json(path)
        assert rebuilt.edge_pairs() == vopd_cg.edge_pairs()

    def test_malformed_dict(self):
        with pytest.raises(ConfigurationError):
            cg_from_dict({"name": "x"})

    def test_edge_with_unknown_task(self):
        with pytest.raises(ConfigurationError):
            cg_from_dict(
                {
                    "name": "x",
                    "tasks": ["a", "b"],
                    "edges": [{"src": "a", "dst": "zz", "bandwidth": 1.0}],
                }
            )


class TestDot:
    def test_contains_all_edges(self, pip_cg):
        dot = cg_to_dot(pip_cg)
        assert dot.startswith('digraph "pip"')
        for edge in pip_cg.edges:
            assert (
                f'"{pip_cg.tasks[edge.src]}" -> "{pip_cg.tasks[edge.dst]}"' in dot
            )

    def test_bandwidth_labels(self, pip_cg):
        assert 'label="128"' in cg_to_dot(pip_cg)


class TestEdgeLines:
    def test_round_trip(self, pip_cg):
        text = cg_to_edge_lines(pip_cg)
        rebuilt = cg_from_edge_lines("pip", text)
        assert rebuilt.edge_pairs() == pip_cg.edge_pairs()

    def test_default_bandwidth(self):
        cg = cg_from_edge_lines("x", "a b\nb c\n")
        assert cg.edges[0].bandwidth == 1.0

    def test_comments_and_blanks_skipped(self):
        cg = cg_from_edge_lines("x", "# header\n\na b 2\n")
        assert cg.n_edges == 1

    def test_malformed_line(self):
        with pytest.raises(ConfigurationError, match="line 1"):
            cg_from_edge_lines("x", "a b c d\n")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="no edges"):
            cg_from_edge_lines("x", "# nothing\n")


class TestAllBenchmarksRoundTrip:
    def test_every_benchmark_survives_json(self):
        from repro.appgraph import BENCHMARK_NAMES

        for name in BENCHMARK_NAMES:
            cg = load_benchmark(name)
            rebuilt = cg_from_dict(cg_to_dict(cg))
            assert rebuilt.edge_pairs() == cg.edge_pairs()
