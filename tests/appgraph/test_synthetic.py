"""Synthetic generator tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appgraph import fork_join_cg, hub_cg, pipeline_cg, random_cg
from repro.errors import ConfigurationError


class TestPipeline:
    def test_shape(self):
        cg = pipeline_cg(5)
        assert cg.n_tasks == 5
        assert cg.n_edges == 4
        assert cg.is_weakly_connected()

    def test_too_short(self):
        with pytest.raises(ConfigurationError):
            pipeline_cg(1)


class TestForkJoin:
    def test_shape(self):
        cg = fork_join_cg(3)
        assert cg.n_tasks == 5
        assert cg.n_edges == 6

    def test_source_degree(self):
        cg = fork_join_cg(4)
        assert cg.out_degree(0) == 4


class TestHub:
    def test_shape(self):
        cg = hub_cg(5)
        assert cg.n_tasks == 6
        assert cg.n_edges == 10

    def test_hub_degree(self):
        cg = hub_cg(5)
        assert cg.in_degree(0) == 5
        assert cg.out_degree(0) == 5


class TestRandom:
    def test_exact_edge_count(self):
        cg = random_cg(8, 14, seed=1)
        assert cg.n_tasks == 8
        assert cg.n_edges == 14

    def test_connected(self):
        for seed in range(5):
            assert random_cg(10, 12, seed=seed).is_weakly_connected()

    def test_reproducible(self):
        a = random_cg(8, 14, seed=42)
        b = random_cg(8, 14, seed=42)
        assert a.edge_pairs() == b.edge_pairs()

    def test_different_seeds_differ(self):
        a = random_cg(10, 30, seed=1)
        b = random_cg(10, 30, seed=2)
        assert a.edge_pairs() != b.edge_pairs()

    def test_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            random_cg(5, 3, seed=0)  # below spanning minimum
        with pytest.raises(ConfigurationError):
            random_cg(3, 7, seed=0)  # above complete digraph

    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_always_valid_and_connected(self, n_tasks, seed):
        n_edges = min(n_tasks * (n_tasks - 1), 2 * n_tasks)
        cg = random_cg(n_tasks, n_edges, seed=seed)
        assert cg.n_edges == n_edges
        assert cg.is_weakly_connected()
