"""Benchmark application tests: the paper's stated facts must hold."""

import networkx as nx
import pytest

from repro.appgraph import (
    BENCHMARK_NAMES,
    all_benchmarks,
    grid_side_for,
    load_benchmark,
)
from repro.errors import ConfigurationError

#: Task counts stated in the paper's §III.
PAPER_TASK_COUNTS = {
    "263dec_mp3dec": 14,
    "263enc_mp3enc": 12,
    "dvopd": 32,
    "mpeg4": 12,
    "mwd": 12,
    "pip": 8,
    "vopd": 16,
    "wavelet": 22,
}

#: Edge counts the paper states explicitly.
PAPER_EDGE_COUNTS = {
    "mpeg4": 26,
    "263enc_mp3enc": 12,
    "mwd": 12,
}


class TestPaperFacts:
    @pytest.mark.parametrize("name,count", sorted(PAPER_TASK_COUNTS.items()))
    def test_task_counts(self, name, count):
        assert load_benchmark(name).n_tasks == count

    @pytest.mark.parametrize("name,count", sorted(PAPER_EDGE_COUNTS.items()))
    def test_stated_edge_counts(self, name, count):
        assert load_benchmark(name).n_edges == count

    def test_pip_fits_3x3(self):
        assert grid_side_for(load_benchmark("pip")) == 3

    def test_dvopd_needs_6x6(self):
        assert grid_side_for(load_benchmark("dvopd")) == 6

    def test_all_eight_present(self):
        assert set(BENCHMARK_NAMES) == set(PAPER_TASK_COUNTS)

    def test_mpeg4_is_most_edge_constrained_mid_size(self):
        """The paper singles out MPEG-4 (26 edges) as more constrained than
        263enc_mp3enc and MWD (12 edges each)."""
        mpeg4 = load_benchmark("mpeg4")
        assert mpeg4.n_edges > load_benchmark("263enc_mp3enc").n_edges
        assert mpeg4.n_edges > load_benchmark("mwd").n_edges


class TestStructure:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_loads_and_validates(self, name):
        cg = load_benchmark(name)
        assert cg.n_edges >= cg.n_tasks - cg.n_tasks // 2

    @pytest.mark.parametrize(
        "name", [n for n in BENCHMARK_NAMES if n not in ("263dec_mp3dec", "263enc_mp3enc")]
    )
    def test_single_application_graphs_connected(self, name):
        assert load_benchmark(name).is_weakly_connected()

    @pytest.mark.parametrize("name", ("263dec_mp3dec", "263enc_mp3enc"))
    def test_codec_pairs_have_two_components(self, name):
        cg = load_benchmark(name)
        components = list(nx.weakly_connected_components(cg.graph()))
        assert len(components) == 2

    @pytest.mark.parametrize(
        "name", [n for n in BENCHMARK_NAMES if n not in ("mpeg4",)]
    )
    def test_clean_regime_apps_bipartite(self, name):
        """Apps that reach the paper's ~38-40 dB regime must admit
        all-adjacent mappings, hence bipartite graphs (DESIGN.md §4)."""
        und = nx.Graph()
        cg = load_benchmark(name)
        und.add_nodes_from(range(cg.n_tasks))
        for e in cg.edges:
            und.add_edge(e.src, e.dst)
        assert nx.is_bipartite(und)

    def test_mpeg4_hub_degree(self):
        cg = load_benchmark("mpeg4")
        sdram = cg.task_index("sdram")
        assert cg.in_degree(sdram) + cg.out_degree(sdram) >= 16

    def test_dvopd_is_two_vopds(self):
        dvopd = load_benchmark("dvopd")
        vopd = load_benchmark("vopd")
        assert dvopd.n_tasks == 2 * vopd.n_tasks
        assert dvopd.n_edges == 2 * vopd.n_edges + 2

    def test_grid_fits_every_app(self):
        for name, cg in all_benchmarks().items():
            side = grid_side_for(cg)
            assert side * side >= cg.n_tasks
            assert (side - 1) * (side - 1) < cg.n_tasks

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            load_benchmark("quake3")

    def test_all_benchmarks_order(self):
        assert list(all_benchmarks()) == list(BENCHMARK_NAMES)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_max_degree_at_most_grid_degree_for_clean_apps(self, name):
        """Except the deliberately constrained MPEG-4 hub, no task needs
        more neighbours than a grid tile has."""
        if name == "mpeg4":
            return
        cg = load_benchmark(name)
        for task in range(cg.n_tasks):
            degree = cg.in_degree(task) + cg.out_degree(task)
            # count bidirectional pairs once
            g = cg.graph().to_undirected()
            assert g.degree(cg.tasks[task]) <= 4
