"""Shared fixtures: physical parameters and small reference networks.

Networks and coupling models are expensive enough to share; everything here
is read-only from the tests' point of view, so session scope is safe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.appgraph import load_benchmark, pipeline_cg
from repro.core import MappingEvaluator, MappingProblem, Objective
from repro.noc import Floorplan, PhotonicNoC, line, mesh, torus
from repro.photonics import PhysicalParameters


@pytest.fixture(scope="session")
def params():
    return PhysicalParameters()


@pytest.fixture(scope="session")
def line2_network(params):
    """Two tiles in a row: the smallest possible network."""
    return PhotonicNoC(line(2), params=params)


@pytest.fixture(scope="session")
def line3_network(params):
    """Three tiles in a row: smallest network with a transit router."""
    return PhotonicNoC(line(3), params=params)


@pytest.fixture(scope="session")
def mesh3_network(params):
    """3x3 mesh, the PIP case-study fabric."""
    return PhotonicNoC(mesh(3, 3), params=params)


@pytest.fixture(scope="session")
def mesh4_network(params):
    """4x4 mesh, the fabric of most case studies."""
    return PhotonicNoC(mesh(4, 4), params=params)


@pytest.fixture(scope="session")
def torus4_network(params):
    """4x4 folded torus."""
    return PhotonicNoC(torus(4, 4), params=params)


@pytest.fixture(scope="session")
def pip_cg():
    return load_benchmark("pip")


@pytest.fixture(scope="session")
def vopd_cg():
    return load_benchmark("vopd")


@pytest.fixture(scope="session")
def chain5_cg():
    return pipeline_cg(5)


@pytest.fixture(scope="session")
def pip_evaluator(pip_cg, mesh3_network):
    problem = MappingProblem(pip_cg, mesh3_network, Objective.SNR)
    return MappingEvaluator(problem)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
