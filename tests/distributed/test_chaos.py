"""The deterministic fault-injection suite (``pytest -m chaos``).

Unit tests pin the chaos primitives (counted triggers, spec round-trip,
deterministic reconnect backoff); the scenario tests run every named
end-to-end scenario from :mod:`repro.distributed.chaos` and assert its
contract — results bit-identical to the inline oracle (or the typed
fast failure the scenario's policy demands), with recovery inside the
30-second liveness bound.
"""

from __future__ import annotations

import pytest

from repro.distributed import chaos
from repro.distributed.chaos import ChaosPlan, Fault, parse_spec, run_scenario
from repro.distributed.worker import (
    BACKOFF_CAP_S,
    reconnect_backoff_s,
)
from repro.errors import ConfigurationError

#: The per-test liveness bound from the acceptance criteria: every
#: scenario must detect its fault and finish recovery within this.
LIVENESS_BOUND_S = 30.0


class TestFault:
    def test_trigger_window(self):
        fault = Fault("worker.task", "drop", at=3, count=2)
        assert [fault.matches(hit) for hit in range(1, 7)] == [
            False, False, True, True, False, False,
        ]

    def test_defaults(self):
        assert Fault("worker.task", "delay").seconds == 0.25
        assert Fault("worker.task", "hang").seconds == 30.0
        assert Fault("worker.task", "delay", seconds=1.5).seconds == 1.5

    def test_rejects_bad_action_and_window(self):
        with pytest.raises(ConfigurationError):
            Fault("worker.task", "explode")
        with pytest.raises(ConfigurationError):
            Fault("worker.task", "drop", at=0)
        with pytest.raises(ConfigurationError):
            Fault("worker.task", "drop", count=0)


class TestPlan:
    def test_counted_not_random(self):
        plan = ChaosPlan([Fault("worker.task", "drop", at=2)])
        assert plan.take("worker.task") is None  # hit 1
        fired = plan.take("worker.task")  # hit 2
        assert fired is not None and fired.action == "drop"
        assert plan.take("worker.task") is None  # hit 3: window passed
        assert plan.hits() == {"worker.task": 3}
        assert plan.triggered == [("worker.task", "drop", 2)]

    def test_sites_count_independently(self):
        plan = ChaosPlan([Fault("worker.init", "delay")])
        assert plan.take("worker.task") is None
        assert plan.take("worker.init").action == "delay"

    def test_spec_round_trip(self):
        spec = "worker.task:hang:at=2:count=3:seconds=7;worker.result:corrupt"
        plan = parse_spec(spec)
        again = parse_spec(plan.spec())
        assert [f.spec() for f in again.faults] == [f.spec() for f in plan.faults]
        assert again.faults[0].seconds == 7.0
        assert again.faults[1].action == "corrupt"

    def test_parse_rejects_malformed_terms(self):
        for bad in ("worker.task", "worker.task:drop:at", "a:drop:when=3",
                    "a:drop:at=x"):
            with pytest.raises(ConfigurationError):
                parse_spec(bad)


class TestTrip:
    def test_no_plan_is_free(self):
        assert chaos.active() is None
        assert chaos.trip("worker.task") is None

    def test_installed_plan_fires_and_uninstalls(self):
        chaos.install(ChaosPlan([Fault("worker.task", "drop")]))
        try:
            with pytest.raises(ConnectionError):
                chaos.trip("worker.task")
        finally:
            plan = chaos.uninstall()
        assert chaos.active() is None
        assert plan.triggered == [("worker.task", "drop", 1)]

    def test_corrupt_is_reported_not_performed(self):
        chaos.install(ChaosPlan([Fault("worker.result", "corrupt")]))
        try:
            assert chaos.trip("worker.result") == "corrupt"
        finally:
            chaos.uninstall()

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv("PHONOCMAP_CHAOS", "worker.loop:delay:at=4")
        plan = chaos.install_from_env()
        try:
            assert plan is not None and plan.faults[0].at == 4
        finally:
            chaos.uninstall()
        monkeypatch.delenv("PHONOCMAP_CHAOS")
        assert chaos.install_from_env() is None


class TestReconnectBackoff:
    def test_deterministic_per_worker_and_attempt(self):
        a = reconnect_backoff_s("host:1", 3, pid=100)
        assert a == reconnect_backoff_s("host:1", 3, pid=100)
        assert a != reconnect_backoff_s("host:1", 3, pid=101)
        assert a != reconnect_backoff_s("host:2", 3, pid=100)

    def test_exponential_with_cap_and_bounded_jitter(self):
        for attempt in range(1, 12):
            delay = reconnect_backoff_s("h:1", attempt, pid=7)
            base = min(BACKOFF_CAP_S, 0.5 * 2 ** (attempt - 1))
            assert base <= delay <= base * 1.25
        assert reconnect_backoff_s("h:1", 50, pid=7) <= BACKOFF_CAP_S * 1.25


@pytest.mark.chaos
@pytest.mark.slow
@pytest.mark.filterwarnings("ignore::ResourceWarning")
@pytest.mark.parametrize("name", sorted(chaos.SCENARIOS))
def test_scenario_holds_contract(name):
    report = run_scenario(name, budget=200)
    assert report["ok"], report
    assert report["faulted_wall_s"] < LIVENESS_BOUND_S, report


def test_unknown_scenario_rejected():
    with pytest.raises(ConfigurationError, match="unknown chaos scenario"):
        run_scenario("entropy")
