"""robust_snr over TCP workers: placement and worker loss change nothing.

The remote leg of the robust-objective determinism grid
(``tests/core/test_robust_determinism.py``): variation sample models are
hydrated *inside* each worker from ``(network params, VariationSpec)`` —
pure functions of the problem — so shards scored remotely are
bit-identical to inline scoring, even when a worker is SIGKILLed with
the batch in flight and its shards are redispatched.
"""

from __future__ import annotations

import signal
import threading
import time

import numpy as np
import pytest

from repro.analysis.experiments import build_case_study_network
from repro.appgraph.benchmarks import grid_side_for, load_benchmark
from repro.core.evaluator import MappingEvaluator
from repro.core.mapping import random_assignment_batch
from repro.core.pool import shutdown_pools
from repro.core.problem import MappingProblem
from repro.distributed.scheduler import get_hub
from repro.models.coupling import CouplingModel
from repro.photonics import VariationSpec

from tests.distributed.test_executor_parity import (
    _spawn_worker,
    _wait_for_workers,
)

pytestmark = [
    pytest.mark.slow,
    pytest.mark.filterwarnings("ignore::ResourceWarning"),
]

VARIATION = VariationSpec(n_samples=3, sigma=0.03, seed=23)


@pytest.fixture(scope="module")
def robust_cluster(tmp_path_factory):
    """Two TCP workers plus a robust_snr problem with a pre-seeded cache.

    The nominal *and* every variation-sample model are saved to the
    shared disk cache up front, so worker hydration is key-only for the
    whole model family.
    """
    cache_dir = str(tmp_path_factory.mktemp("robust-model-cache"))
    cg = load_benchmark("mwd")
    network = build_case_study_network("mesh", grid_side_for(cg), "crux")
    problem = MappingProblem(cg, network, "robust_snr", variation=VARIATION)
    CouplingModel.for_network(network, cache_dir=cache_dir).save_cached(cache_dir)
    for params in VARIATION.samples(network.params):
        CouplingModel.for_network(
            network.with_params(params), cache_dir=cache_dir
        ).save_cached(cache_dir)
    hub = get_hub("tcp://127.0.0.1:0")
    workers = [_spawn_worker(hub.port, cache_dir) for _ in range(2)]
    try:
        _wait_for_workers(hub, 2)
        yield {
            "hub": hub,
            "spec": f"tcp://127.0.0.1:{hub.port}",
            "problem": problem,
            "cache_dir": cache_dir,
        }
    finally:
        shutdown_pools()
        hub.close()
        for worker in workers:
            worker.terminate()
            worker.wait(timeout=10)


def _rows(problem, n, seed):
    return random_assignment_batch(
        n, problem.cg.n_tasks, problem.n_tiles, np.random.default_rng(seed)
    )


def test_remote_robust_shards_match_inline(robust_cluster):
    problem = robust_cluster["problem"]
    rows = _rows(problem, 256, seed=41)
    inline = MappingEvaluator(
        problem, model_cache_dir=robust_cluster["cache_dir"]
    ).evaluate_batch(rows).score
    remote = MappingEvaluator(
        problem,
        n_workers=4,
        executor=robust_cluster["spec"],
        model_cache_dir=robust_cluster["cache_dir"],
    ).evaluate_batch(rows, min_shard_rows=32).score
    np.testing.assert_array_equal(remote, inline)


def test_sigkilled_worker_mid_batch_changes_nothing(robust_cluster):
    """Kill a worker with robust shards in flight: same bits come back."""
    hub = robust_cluster["hub"]
    problem = robust_cluster["problem"]
    expendable = _spawn_worker(hub.port, robust_cluster["cache_dir"])
    rows = _rows(problem, 512, seed=43)
    inline = MappingEvaluator(
        problem, model_cache_dir=robust_cluster["cache_dir"]
    ).evaluate_batch(rows).score
    try:
        _wait_for_workers(hub, 3)
        lost_before = hub.workers_lost
        evaluator = MappingEvaluator(
            problem,
            n_workers=6,
            executor=robust_cluster["spec"],
            model_cache_dir=robust_cluster["cache_dir"],
        )
        dispatched_before = hub.tasks_dispatched
        scores = {}

        def collect():
            pending = evaluator.submit_batch(rows, min_shard_rows=16)
            scores["remote"] = pending.result().score

        thread = threading.Thread(target=collect)
        thread.start()
        deadline = time.monotonic() + 30
        while hub.tasks_dispatched == dispatched_before:
            if time.monotonic() > deadline:
                raise TimeoutError("batch never dispatched shards")
            time.sleep(0.002)
        expendable.send_signal(signal.SIGKILL)
        thread.join(timeout=120)
        assert not thread.is_alive()
        assert hub.workers_lost > lost_before
        np.testing.assert_array_equal(scores["remote"], inline)
    finally:
        if expendable.poll() is None:
            expendable.kill()
        expendable.wait(timeout=10)
        _wait_for_workers(hub, 2)
