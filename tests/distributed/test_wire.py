"""Unit tests of the shared newline-JSON wire framing."""

from __future__ import annotations

import io
import socket

import numpy as np
import pytest

from repro.core.executor import parse_executor_spec, split_tcp_address
from repro.distributed import wire
from repro.errors import ExecutorError, ProtocolError


class TestFraming:
    def test_round_trip(self):
        buffer = io.BytesIO()
        wire.write_message(buffer, {"op": "hello", "pid": 7})
        wire.write_message(buffer, {"op": "ping"})
        buffer.seek(0)
        assert wire.read_message(buffer) == {"op": "hello", "pid": 7}
        assert wire.read_message(buffer) == {"op": "ping"}
        assert wire.read_message(buffer) is None  # EOF

    def test_one_message_per_line(self):
        buffer = io.BytesIO()
        wire.write_message(buffer, {"a": 1})
        assert buffer.getvalue().count(b"\n") == 1

    def test_blank_line_reads_as_none(self):
        assert wire.read_frame(io.BytesIO(b"\n")) is None
        assert wire.read_frame(io.BytesIO(b"")) is None

    def test_garbage_frame_reads_as_none(self):
        assert wire.read_message(io.BytesIO(b"not json\n")) is None
        assert wire.read_message(io.BytesIO(b"[1, 2]\n")) is None  # not a dict

    def test_read_frame_survives_connection_error(self):
        class Dead:
            def readline(self, *args):
                raise ConnectionResetError

        assert wire.read_frame(Dead()) is None


class TestPayloads:
    def test_payload_round_trip_preserves_arrays_bitwise(self):
        rng = np.random.default_rng(3)
        original = {"matrix": rng.random((16, 16)), "nnz": 12}
        decoded = wire.decode_payload(wire.encode_payload(original))
        np.testing.assert_array_equal(decoded["matrix"], original["matrix"])
        assert decoded["matrix"].dtype == original["matrix"].dtype
        assert decoded["nnz"] == 12

    def test_payload_is_json_safe_ascii(self):
        text = wire.encode_payload({"x": np.arange(5)})
        assert isinstance(text, str)
        text.encode("ascii")  # must not raise

    def test_exceptions_round_trip(self):
        error = ValueError("bad shard")
        decoded = wire.decode_payload(wire.encode_payload(error))
        assert isinstance(decoded, ValueError)
        assert str(decoded) == "bad shard"


class TestLimits:
    def test_oversized_frame_raises_protocol_error(self):
        buffer = io.BytesIO(b"x" * 128 + b"\n")
        with pytest.raises(ProtocolError, match="frame exceeds"):
            wire.read_frame(buffer, max_bytes=64)

    def test_frame_at_the_limit_passes(self):
        buffer = io.BytesIO()
        wire.write_message(buffer, {"op": "ping"})
        limit = buffer.tell()
        buffer.seek(0)
        assert wire.read_message(buffer, max_bytes=limit) == {"op": "ping"}

    def test_zero_disables_the_frame_cap(self):
        buffer = io.BytesIO(b'{"op": "ping"}\n')
        assert wire.read_message(buffer, max_bytes=0) == {"op": "ping"}

    def test_payload_decompression_cap(self):
        # Highly compressible on the wire, huge decompressed: the cap
        # must bound the *decompressed* size, or a small frame could
        # still balloon the hub's memory.
        text = wire.encode_payload(np.zeros(1_000_000, dtype=np.uint8))
        with pytest.raises(ProtocolError, match="decompresses past"):
            wire.decode_payload(text, max_bytes=64 * 1024)
        decoded = wire.decode_payload(text)  # default cap: fine
        assert decoded.nbytes == 1_000_000

    def test_invalid_base64_payload_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            wire.decode_payload("!!chaos-corrupt!!")

    def test_env_overrides_for_caps(self, monkeypatch):
        monkeypatch.setenv("PHONOCMAP_MAX_FRAME_BYTES", "1234")
        monkeypatch.setenv("PHONOCMAP_MAX_PAYLOAD_BYTES", "5678")
        assert wire.max_frame_bytes() == 1234
        assert wire.max_payload_bytes() == 5678
        monkeypatch.delenv("PHONOCMAP_MAX_FRAME_BYTES")
        monkeypatch.delenv("PHONOCMAP_MAX_PAYLOAD_BYTES")
        assert wire.max_frame_bytes() == wire.DEFAULT_MAX_FRAME_BYTES
        assert wire.max_payload_bytes() == wire.DEFAULT_MAX_PAYLOAD_BYTES

    def test_read_timeout_propagates_not_swallowed(self):
        # A silent peer is not a gone peer: TimeoutError must reach the
        # caller (heartbeats and deadlines depend on telling the two
        # apart), while disconnects keep reading as None.
        left, right = socket.socketpair()
        try:
            right.settimeout(0.05)
            rfile = right.makefile("rb")
            with pytest.raises(TimeoutError):
                wire.read_frame(rfile)
            left.close()
            assert wire.read_frame(rfile) is None  # EOF after the peer left
        finally:
            right.close()


class TestExecutorSpecs:
    def test_defaults_and_passthrough(self):
        assert parse_executor_spec(None) == "local"
        assert parse_executor_spec("local") == "local"
        assert parse_executor_spec("inline") == "inline"

    def test_tcp_normalization(self):
        assert parse_executor_spec("tcp://host:99") == "tcp://host:99"

    def test_rejects_unknown_specs(self):
        with pytest.raises(ExecutorError):
            parse_executor_spec("udp://host:99")
        with pytest.raises(ExecutorError):
            parse_executor_spec("threads")

    def test_split_tcp_address(self):
        assert split_tcp_address("host:99") == ("host", 99)
        assert split_tcp_address("tcp://host:99") == ("host", 99)
        with pytest.raises(ExecutorError):
            split_tcp_address("no-port")
        with pytest.raises(ExecutorError):
            split_tcp_address("host:nan")
        with pytest.raises(ExecutorError):
            split_tcp_address("host:70000")
