"""Edge-race tests for the WorkerHub's failure handling.

Each test drives the hub with a *fake* worker — a raw socket speaking
just enough of the wire protocol to reach the interesting instant, then
misbehaving deterministically — plus real in-thread workers
(:func:`repro.distributed.worker.run_worker`) where recovery needs a
worker that actually computes. The contracts under test:

* a worker disconnecting **during init** fails the in-hand task with a
  typed :class:`WorkerLostError` when nobody is left (and the hub
  survives to serve a later worker);
* a worker vanishing **mid model transfer** (``need_model`` answered,
  stream interrupted) retires cleanly — the model counts as streamed,
  the hub does not wedge;
* workers joining **while a retry is in flight** pick the retried task
  up: the deadline reaps the silent worker, survivors get the requeue,
  and the result is bit-identical to inline execution.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.analysis.experiments import build_case_study_network
from repro.appgraph.benchmarks import grid_side_for, load_benchmark
from repro.core import parallel as _parallel
from repro.core.executor import InlineBackend, WorkerLostError
from repro.core.mapping import random_assignment_batch
from repro.core.problem import MappingProblem
from repro.distributed import wire
from repro.distributed.scheduler import RemoteTcpBackend, get_hub
from repro.distributed.worker import run_worker
from repro.models.coupling import CouplingModel

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.filterwarnings("ignore::ResourceWarning"),
]


@pytest.fixture(scope="module")
def rig(tmp_path_factory):
    """One small problem with a pre-seeded model cache, shared per module."""
    cache_dir = str(tmp_path_factory.mktemp("races-model-cache"))
    cg = load_benchmark("mwd")
    network = build_case_study_network("mesh", grid_side_for(cg), "crux")
    problem = MappingProblem(cg, network, "snr")
    CouplingModel.for_network(network, cache_dir=cache_dir).save_cached(cache_dir)
    return {"problem": problem, "cache_dir": cache_dir}


class FakeWorker:
    """A raw-socket peer that plays worker up to a scripted betrayal."""

    def __init__(self, port: int):
        self.sock = socket.create_connection(("127.0.0.1", port))
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")
        wire.write_message(
            self.wfile, {"op": "hello", "pid": 0, "host": "fake"}
        )

    def read(self, timeout: float = 30.0) -> dict:
        self.sock.settimeout(timeout)
        message = wire.read_message(self.rfile)
        assert message is not None, "hub hung up on the fake worker"
        return message

    def close(self) -> None:
        # makefile() handles hold duplicate fds: every one must go, or
        # the hub never sees EOF and the "disconnect" does not happen.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        for handle in (self.rfile, self.wfile, self.sock):
            try:
                handle.close()
            except OSError:
                pass


def _wait_connected(hub, count: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while hub.workers_connected < count:
        assert time.monotonic() < deadline, "workers never connected"
        time.sleep(0.01)


def _start_thread_worker(port: int, cache_dir: str) -> threading.Thread:
    thread = threading.Thread(
        target=run_worker,
        args=(f"127.0.0.1:{port}",),
        kwargs={"model_cache_dir": cache_dir},
        daemon=True,
    )
    thread.start()
    return thread


def _rows(problem, n=8, seed=5):
    return random_assignment_batch(
        n, problem.cg.n_tasks, problem.n_tiles, np.random.default_rng(seed)
    )


def _inline_reference(problem, cache_dir, rows):
    backend = InlineBackend(
        ("races-ref",), problem, "float64", 2, "dense", cache_dir
    )
    try:
        return backend.submit(_parallel.evaluate_shard_task, rows).result()
    finally:
        backend.close()


def _make_backend(rig, spec, key):
    return RemoteTcpBackend(
        (key,),
        rig["problem"],
        "float64",
        2,
        model_cache_dir=rig["cache_dir"],
        executor=spec,
    )


def test_disconnect_during_init_fails_typed_then_hub_recovers(rig):
    hub = get_hub("tcp://127.0.0.1:0", heartbeat_interval_s=60.0)
    spec = f"tcp://127.0.0.1:{hub.port}"
    rows = _rows(rig["problem"])
    threads = []
    try:
        fake = FakeWorker(hub.port)
        _wait_connected(hub, 1)
        backend = _make_backend(rig, spec, "races-init")
        future = backend.submit(_parallel.evaluate_shard_task, rows)
        init = fake.read()
        assert init["op"] == "init"
        fake.close()  # hang up with the init unanswered

        with pytest.raises(WorkerLostError):
            future.result(timeout=30)
        assert hub.workers_lost == 1
        assert backend.broken  # the done-callback saw BrokenExecutor

        # The hub itself must survive the race: a real worker joining
        # afterwards serves a fresh backend bit-identically.
        threads.append(_start_thread_worker(hub.port, rig["cache_dir"]))
        _wait_connected(hub, 1)
        recovered = _make_backend(rig, spec, "races-init-2")
        result = recovered.submit(
            _parallel.evaluate_shard_task, rows
        ).result(timeout=60)
        reference = _inline_reference(rig["problem"], rig["cache_dir"], rows)
        for got, want in zip(result, reference):
            np.testing.assert_array_equal(got, want)
        backend.close()
        recovered.close()
    finally:
        hub.close()
        for thread in threads:
            thread.join(timeout=10)


def test_need_model_interrupted_mid_transfer_retires_cleanly(rig):
    hub = get_hub("tcp://127.0.0.1:0", heartbeat_interval_s=60.0)
    spec = f"tcp://127.0.0.1:{hub.port}"
    rows = _rows(rig["problem"], seed=6)
    threads = []
    try:
        fake = FakeWorker(hub.port)
        _wait_connected(hub, 1)
        backend = _make_backend(rig, spec, "races-model")
        future = backend.submit(_parallel.evaluate_shard_task, rows)
        init = fake.read()
        assert init["op"] == "init"
        # Ask for the model, then vanish mid-transfer: never read it.
        wire.write_message(
            fake.wfile, {"op": "need_model", "ctx_id": init["ctx_id"]}
        )
        fake.close()

        with pytest.raises(WorkerLostError):
            future.result(timeout=30)
        assert hub.models_streamed == 1  # the stream started, and only once
        assert hub.workers_lost == 1

        threads.append(_start_thread_worker(hub.port, rig["cache_dir"]))
        _wait_connected(hub, 1)
        recovered = _make_backend(rig, spec, "races-model-2")
        result = recovered.submit(
            _parallel.evaluate_shard_task, rows
        ).result(timeout=60)
        reference = _inline_reference(rig["problem"], rig["cache_dir"], rows)
        for got, want in zip(result, reference):
            np.testing.assert_array_equal(got, want)
        backend.close()
        recovered.close()
    finally:
        hub.close()
        for thread in threads:
            thread.join(timeout=10)


def test_workers_joining_while_retry_in_flight_complete_the_task(rig):
    hub = get_hub(
        "tcp://127.0.0.1:0", heartbeat_interval_s=60.0, task_deadline_s=2.0
    )
    spec = f"tcp://127.0.0.1:{hub.port}"
    rows = _rows(rig["problem"], seed=7)
    threads = []
    try:
        fake = FakeWorker(hub.port)
        _wait_connected(hub, 1)
        backend = _make_backend(rig, spec, "races-retry")
        future = backend.submit(_parallel.evaluate_shard_task, rows)
        init = fake.read()
        assert init["op"] == "init"
        # Two real workers join while the fake sits on the task in
        # silence; the init deadline reaps it and the survivors get the
        # requeue.
        threads.append(_start_thread_worker(hub.port, rig["cache_dir"]))
        threads.append(_start_thread_worker(hub.port, rig["cache_dir"]))
        _wait_connected(hub, 3)

        result = future.result(timeout=60)
        reference = _inline_reference(rig["problem"], rig["cache_dir"], rows)
        for got, want in zip(result, reference):
            np.testing.assert_array_equal(got, want)
        assert hub.tasks_timed_out >= 1
        assert hub.tasks_retried >= 1
        assert hub.workers_lost >= 1
        assert not backend.broken  # the retry rescued it: nothing broke
        fake.close()
        backend.close()
    finally:
        hub.close()
        for thread in threads:
            thread.join(timeout=10)
