"""Cross-backend parity suite: inline == local pool == TCP workers.

The determinism contract of the executor abstraction: for a given
``(seed, n_workers)`` every backend — serial in-process, persistent
process pool, remote TCP workers — produces bit-identical best
mappings, scores, convergence histories and evaluation counts,
regardless of task placement, worker loss or retry. Also asserted
here: remote workers hydrate coupling models from their on-disk cache
by cache key (no matrix bytes on the wire on a cache hit), with the
one-time streamed transfer only on a genuine double miss.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

import repro
from repro.analysis.experiments import build_case_study_network
from repro.appgraph.benchmarks import grid_side_for, load_benchmark
from repro.core.dse import DesignSpaceExplorer
from repro.core.evaluator import MappingEvaluator
from repro.core.mapping import random_assignment_batch
from repro.core.pool import get_pool, shutdown_pools
from repro.core.problem import MappingProblem
from repro.distributed.scheduler import get_hub
from repro.errors import ExecutorError
from repro.models.coupling import CouplingModel

pytestmark = [
    pytest.mark.slow,
    pytest.mark.filterwarnings("ignore::ResourceWarning"),
]

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _spawn_worker(port: int, cache_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--model-cache",
            cache_dir,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_workers(hub, count: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while hub.workers_connected < count:
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"only {hub.workers_connected}/{count} workers connected"
            )
        time.sleep(0.05)


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """A hub with two subprocess workers sharing a pre-seeded model cache.

    The cache is seeded *before* the workers start, so every worker
    hydration in this module is a disk-cache hit — the
    no-matrix-bytes-on-the-wire assertions depend on it.
    """
    cache_dir = str(tmp_path_factory.mktemp("model-cache"))
    cg = load_benchmark("mwd")
    network = build_case_study_network("mesh", grid_side_for(cg), "crux")
    problem = MappingProblem(cg, network, "snr")
    # Seed the disk cache explicitly: for_network alone would return a
    # process-cached model (warm from earlier tests) without persisting.
    CouplingModel.for_network(network, cache_dir=cache_dir).save_cached(cache_dir)
    hub = get_hub("tcp://127.0.0.1:0")
    spec = f"tcp://127.0.0.1:{hub.port}"
    workers = [_spawn_worker(hub.port, cache_dir) for _ in range(2)]
    try:
        _wait_for_workers(hub, 2)
        yield {
            "hub": hub,
            "spec": spec,
            "problem": problem,
            "cache_dir": cache_dir,
        }
    finally:
        shutdown_pools()
        hub.close()
        for worker in workers:
            worker.terminate()
            worker.wait(timeout=10)


BACKENDS = ("inline", "local", "tcp")


def _explorer(cluster, executor_name: str, n_workers: int) -> DesignSpaceExplorer:
    spec = cluster["spec"] if executor_name == "tcp" else executor_name
    return DesignSpaceExplorer(
        cluster["problem"],
        n_workers=n_workers,
        executor=spec,
        model_cache_dir=cluster["cache_dir"],
    )


class TestRunParity:
    def test_strategy_runs_bit_identical_across_backends(self, cluster):
        results = {}
        for name in BACKENDS:
            explorer = _explorer(cluster, name, n_workers=2)
            results[name] = explorer.run("rs", budget=1200, seed=17, n_workers=2)
        reference = results["inline"]
        for name in ("local", "tcp"):
            result = results[name]
            assert result.best_score == reference.best_score, name
            assert result.evaluations == reference.evaluations, name
            assert result.history == reference.history, name
            assert np.array_equal(
                result.best_mapping.assignment,
                reference.best_mapping.assignment,
            ), name

    def test_compare_bit_identical_across_backends(self, cluster):
        names = ["rs", "ga"]
        per_backend = {}
        for name in BACKENDS:
            explorer = _explorer(cluster, name, n_workers=2)
            per_backend[name] = explorer.compare(
                names, budget=900, seed=3, n_workers=2
            )
        for strategy in names:
            reference = per_backend["inline"][strategy]
            for backend_name in ("local", "tcp"):
                result = per_backend[backend_name][strategy]
                assert result.best_score == reference.best_score
                assert result.evaluations == reference.evaluations
                assert result.history == reference.history


class TestShardParity:
    def test_sharded_batches_bit_identical_across_backends(self, cluster):
        problem = cluster["problem"]
        rng = np.random.default_rng(29)
        rows = random_assignment_batch(
            384, problem.cg.n_tasks, problem.n_tiles, rng
        )
        tables = {}
        for name in BACKENDS:
            spec = cluster["spec"] if name == "tcp" else name
            evaluator = MappingEvaluator(
                problem,
                n_workers=4,
                executor=spec,
                model_cache_dir=cluster["cache_dir"],
            )
            pending = evaluator.submit_batch(rows, min_shard_rows=32)
            tables[name] = pending.tables()
        for name in ("local", "tcp"):
            for reference, column in zip(tables["inline"], tables[name]):
                np.testing.assert_array_equal(reference, column)


class TestCacheKeyedHydration:
    def test_no_matrix_bytes_on_wire_on_cache_hit(self, cluster):
        """Workers hydrated from their disk cache: nothing streamed."""
        hub = cluster["hub"]
        problem = cluster["problem"]
        evaluator = MappingEvaluator(
            problem,
            n_workers=4,
            executor=cluster["spec"],
            model_cache_dir=cluster["cache_dir"],
        )
        rows = random_assignment_batch(
            384, problem.cg.n_tasks, problem.n_tiles, np.random.default_rng(7)
        )
        evaluator.submit_batch(rows, min_shard_rows=32).tables()
        pool = get_pool(
            problem,
            np.float64,
            4,
            evaluator.backend,
            model_cache_dir=cluster["cache_dir"],
            executor=cluster["spec"],
        )
        assert pool.tasks_dispatched >= 4  # shards really went remote
        # Cumulative over every dispatch this module's hub has served:
        # the workers hydrate from their pre-seeded disk cache by cache
        # key, so no coupling-matrix bytes ever crossed the wire.
        assert hub.models_streamed == 0
        assert hub.model_bytes_streamed == 0

    def test_cold_worker_streams_model_once_then_caches(
        self, cluster, tmp_path
    ):
        """A worker with an empty cache falls back to one streamed copy."""
        hub = get_hub("tcp://127.0.0.1:0")
        spec = f"tcp://127.0.0.1:{hub.port}"
        cold_cache = str(tmp_path / "cold-cache")
        os.makedirs(cold_cache)
        worker = _spawn_worker(hub.port, cold_cache)
        problem = cluster["problem"]
        try:
            _wait_for_workers(hub, 1)
            rows = random_assignment_batch(
                256, problem.cg.n_tasks, problem.n_tiles,
                np.random.default_rng(11),
            )
            remote = MappingEvaluator(
                problem,
                n_workers=2,
                executor=spec,
                model_cache_dir=cluster["cache_dir"],
            ).submit_batch(rows, min_shard_rows=32).tables()
            assert hub.models_streamed == 1
            assert hub.model_bytes_streamed > 0
            # The streamed model was persisted: the worker's disk cache
            # now holds an entry, so a later hydration would be key-only.
            assert os.listdir(cold_cache)
            # And a streamed model is bit-identical to a cached one.
            inline = MappingEvaluator(
                problem,
                n_workers=2,
                executor="inline",
                model_cache_dir=cluster["cache_dir"],
            ).submit_batch(rows, min_shard_rows=32).tables()
            for reference, column in zip(inline, remote):
                np.testing.assert_array_equal(reference, column)
        finally:
            hub.close()
            worker.terminate()
            worker.wait(timeout=10)


class TestWorkerLoss:
    def test_worker_kill_mid_run_preserves_results(self, cluster):
        """Killing one worker mid-run changes nothing but placement."""
        hub = cluster["hub"]
        expendable = _spawn_worker(hub.port, cluster["cache_dir"])
        try:
            _wait_for_workers(hub, 3)
            lost_before = hub.workers_lost
            reference = _explorer(cluster, "inline", n_workers=3).compare(
                ["rs", "sa", "ga"], budget=12000, seed=8, n_workers=3
            )
            explorer = _explorer(cluster, "tcp", n_workers=3)
            results = {}

            def run():
                results["tcp"] = explorer.compare(
                    ["rs", "sa", "ga"], budget=12000, seed=8, n_workers=3
                )

            dispatched_before = hub.tasks_dispatched
            thread = threading.Thread(target=run)
            thread.start()
            # Kill as soon as tasks hit the queue, while they are still
            # in flight (a sleep would race warm caches: the whole
            # compare can finish in well under a second).
            deadline = time.monotonic() + 30
            while hub.tasks_dispatched == dispatched_before:
                if time.monotonic() > deadline:
                    raise TimeoutError("compare never dispatched tasks")
                time.sleep(0.002)
            expendable.send_signal(signal.SIGKILL)
            thread.join(timeout=120)
            assert not thread.is_alive()
            assert hub.workers_lost > lost_before
            for strategy, result in reference.items():
                remote = results["tcp"][strategy]
                assert remote.best_score == result.best_score
                assert remote.evaluations == result.evaluations
                assert remote.history == result.history
        finally:
            if expendable.poll() is None:
                expendable.kill()
            expendable.wait(timeout=10)
            _wait_for_workers(hub, 2)


class TestProtocolGuards:
    def test_unregistered_task_function_is_rejected(self, cluster):
        pool = get_pool(
            cluster["problem"],
            np.float64,
            2,
            "dense",
            model_cache_dir=cluster["cache_dir"],
            executor=cluster["spec"],
        )
        with pytest.raises(ExecutorError):
            pool.submit(print, "not a task")
        # The failed submit marks the backend broken; the registry hands
        # back a fresh one on the next request.
        assert pool.broken
        rebuilt = get_pool(
            cluster["problem"],
            np.float64,
            2,
            "dense",
            model_cache_dir=cluster["cache_dir"],
            executor=cluster["spec"],
        )
        assert rebuilt is not pool
        assert not rebuilt.broken
