"""Paper-shape golden tests: the qualitative claims of Table II / Fig. 3.

These run the actual experiments at reduced budgets and assert the
*shape* EXPERIMENTS.md documents — the regimes, the ranking, the bands.
They are the repository's regression net for "does this still reproduce
the paper".
"""

import numpy as np
import pytest

from repro.analysis import random_mapping_distribution
from repro.appgraph import grid_side_for, load_benchmark
from repro.core import DesignSpaceExplorer, MappingProblem
from repro.noc import PhotonicNoC, mesh, torus


def optimize(app, topology_builder, objective, budget=4000, seed=2016):
    cg = load_benchmark(app)
    side = grid_side_for(cg)
    network = PhotonicNoC(topology_builder(side, side))
    explorer = DesignSpaceExplorer(MappingProblem(cg, network, objective))
    return explorer.run("r-pbla", budget=budget, seed=seed)


class TestSnrRegimes:
    def test_pip_reaches_crossing_limited_regime(self):
        result = optimize("pip", mesh, "snr")
        assert result.best_metrics.worst_snr_db > 28.0

    def test_mwd_reaches_crossing_limited_regime(self):
        result = optimize("mwd", mesh, "snr")
        assert result.best_metrics.worst_snr_db > 28.0

    def test_mpeg4_stays_ring_limited(self):
        result = optimize("mpeg4", mesh, "snr", budget=6000)
        assert result.best_metrics.worst_snr_db < 26.0

    def test_dvopd_stays_ring_limited_and_is_worst(self):
        dvopd = optimize("dvopd", mesh, "snr", budget=3000)
        pip = optimize("pip", mesh, "snr", budget=3000)
        assert dvopd.best_metrics.worst_snr_db < 22.0
        assert dvopd.best_metrics.worst_snr_db < pip.best_metrics.worst_snr_db


class TestLossBand:
    @pytest.mark.parametrize("app", ("pip", "mwd", "vopd"))
    def test_optimized_loss_in_paper_band(self, app):
        result = optimize(app, mesh, "loss")
        loss = result.best_metrics.worst_insertion_loss_db
        assert -3.5 < loss < -1.0

    def test_pip_best_loss_near_paper_value(self):
        """Paper: -1.68..-1.90 for PIP mesh; we land within half a dB."""
        result = optimize("pip", mesh, "loss")
        assert result.best_metrics.worst_insertion_loss_db == pytest.approx(
            -1.8, abs=0.5
        )


class TestAlgorithmRanking:
    def test_pbla_beats_rs_on_vopd(self):
        cg = load_benchmark("vopd")
        network = PhotonicNoC(mesh(4, 4))
        explorer = DesignSpaceExplorer(MappingProblem(cg, network, "snr"))
        results = explorer.compare(("rs", "r-pbla"), budget=4000, seed=2016)
        assert (
            results["r-pbla"].best_metrics.worst_snr_db
            >= results["rs"].best_metrics.worst_snr_db
        )

    def test_heuristics_beat_rs_on_loss_dvopd(self):
        cg = load_benchmark("dvopd")
        network = PhotonicNoC(mesh(6, 6))
        explorer = DesignSpaceExplorer(MappingProblem(cg, network, "loss"))
        results = explorer.compare(("rs", "ga", "r-pbla"), budget=2500, seed=2016)
        best_heuristic = max(
            results["ga"].best_metrics.worst_insertion_loss_db,
            results["r-pbla"].best_metrics.worst_insertion_loss_db,
        )
        assert best_heuristic >= results["rs"].best_metrics.worst_insertion_loss_db


class TestFig3Shape:
    def test_distribution_spread_and_size_scaling(self):
        """Fig. 3's two claims: huge spread; worse with network size."""
        summaries = {}
        for app in ("pip", "dvopd"):
            cg = load_benchmark(app)
            side = grid_side_for(cg)
            network = PhotonicNoC(mesh(side, side))
            dist = random_mapping_distribution(cg, network, 1500, seed=1)
            summaries[app] = (dist.summary("snr"), dist.summary("loss"))
        pip_snr, pip_loss = summaries["pip"]
        dvopd_snr, dvopd_loss = summaries["dvopd"]
        assert pip_snr["spread"] > 5.0
        assert dvopd_snr["median"] < pip_snr["median"]  # bigger is worse
        assert dvopd_loss["median"] < pip_loss["median"]

    def test_loss_distribution_in_paper_axis_range(self):
        cg = load_benchmark("vopd")
        network = PhotonicNoC(mesh(4, 4))
        dist = random_mapping_distribution(cg, network, 1500, seed=2)
        assert dist.worst_loss_db.min() > -5.0
        assert dist.worst_loss_db.max() < -1.0


class TestTorusDirection:
    def test_torus_improves_or_matches_snr_mpeg4(self):
        mesh_result = optimize("mpeg4", mesh, "snr", budget=3000)
        torus_result = optimize("mpeg4", torus, "snr", budget=3000)
        assert (
            torus_result.best_metrics.worst_snr_db
            >= mesh_result.best_metrics.worst_snr_db - 1.5
        )
