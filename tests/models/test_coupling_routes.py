"""Routed coupling-model tests (the ``routes > 1`` pair axis).

The joint mapping x routing evaluator trusts three model properties:
route-0 slots are byte-identical to the single-route model (that is what
makes k=1 bit-identity possible), out-of-menu slots alias their
``route % menu`` entry (stale genes resolve via matrix content), and the
process/disk caches never alias routed and mapping-only models.
"""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import coupling as coupling_module
from repro.models.coupling import CouplingModel, clear_model_cache

ROUTES = 3


@pytest.fixture(autouse=True)
def _clean_registry():
    clear_model_cache()
    yield
    clear_model_cache()


@pytest.fixture(scope="module")
def legacy(torus4_network):
    return CouplingModel(torus4_network)


@pytest.fixture(scope="module")
def routed(torus4_network):
    return CouplingModel(torus4_network, routes=ROUTES)


def route0_slots(model):
    return np.arange(model.n_tiles * model.n_tiles) * model.routes


class TestRouteZeroIdentity:
    def test_pair_axis_widened(self, routed, legacy):
        assert routed.n_pairs == legacy.n_pairs * ROUTES

    def test_signal_linear_route0_submatrix(self, routed, legacy):
        slots = route0_slots(routed)
        assert np.array_equal(routed.signal_linear[slots], legacy.signal_linear)

    def test_insertion_loss_route0_submatrix(self, routed, legacy):
        slots = route0_slots(routed)
        assert np.array_equal(
            routed.insertion_loss_db[slots],
            legacy.insertion_loss_db,
            equal_nan=True,
        )

    def test_coupling_route0_submatrix(self, routed, legacy):
        slots = route0_slots(routed)
        assert np.array_equal(
            routed.coupling_linear[np.ix_(slots, slots)],
            legacy.coupling_linear,
        )

    def test_out_of_menu_slots_alias_modulo(self, routed, torus4_network):
        """Every route slot r >= menu repeats slot r % menu, column and
        row alike — this is what lets stale genes survive remaps."""
        counts = torus4_network.route_counts(ROUTES).reshape(16, 16)
        src, dst = map(int, np.argwhere(counts == 1)[1])
        base = (src * 16 + dst) * ROUTES
        for extra in (1, 2):
            assert routed.signal_linear[base + extra] == routed.signal_linear[base]
            assert np.array_equal(
                routed.coupling_linear[:, base + extra],
                routed.coupling_linear[:, base],
            )
            assert np.array_equal(
                routed.coupling_linear[base + extra],
                routed.coupling_linear[base],
            )

    def test_alternate_routes_differ_where_menus_grow(
        self, routed, torus4_network
    ):
        counts = torus4_network.route_counts(ROUTES).reshape(16, 16)
        src, dst = map(int, np.argwhere(counts > 1)[0])
        base = (src * 16 + dst) * ROUTES
        assert routed.signal_linear[base + 1] > 0.0
        assert not np.array_equal(
            routed.coupling_linear[:, base + 1],
            routed.coupling_linear[:, base],
        )

    def test_pair_index_strides_by_routes(self, routed, legacy):
        assert legacy.pair_index(2, 5) == 2 * 16 + 5
        assert routed.pair_index(2, 5) == (2 * 16 + 5) * ROUTES
        src = np.array([0, 3], dtype=np.int64)
        dst = np.array([1, 7], dtype=np.int64)
        assert np.array_equal(
            routed.pair_indices(src, dst),
            (src * 16 + dst) * ROUTES,
        )


class TestRoutedValidation:
    def test_routes_below_one_rejected(self, torus4_network):
        with pytest.raises(ModelError):
            CouplingModel(torus4_network, routes=0)

    def test_legacy_builder_rejects_routed(self, torus4_network):
        with pytest.raises(ModelError):
            CouplingModel(torus4_network, builder="legacy", routes=ROUTES)


class TestRoutedCacheKeys:
    def test_process_cache_keys_do_not_alias(self, torus4_network):
        plain = CouplingModel.cache_key(torus4_network, np.float64)
        routed_key = CouplingModel.cache_key(
            torus4_network, np.float64, routes=ROUTES
        )
        assert plain != routed_key
        assert "routes" not in plain  # k=1 keys are the historical bytes
        assert CouplingModel.cache_key(torus4_network, np.float64, routes=1) == plain

    def test_disk_keys_do_not_alias(self, torus4_network):
        signature = torus4_network.signature
        plain = CouplingModel.disk_key(signature, np.float64)
        routed_key = CouplingModel.disk_key(signature, np.float64, routes=ROUTES)
        assert plain != routed_key
        assert CouplingModel.disk_key(signature, np.float64, routes=1) == plain

    def test_for_network_caches_per_routes(self, torus4_network):
        plain = CouplingModel.for_network(torus4_network)
        routed_model = CouplingModel.for_network(torus4_network, routes=ROUTES)
        assert plain is not routed_model
        assert routed_model.routes == ROUTES
        assert (
            CouplingModel.for_network(torus4_network, routes=ROUTES)
            is routed_model
        )
        assert CouplingModel.for_network(torus4_network) is plain


class TestRoutedDiskCache:
    def test_round_trip(self, torus4_network, routed, tmp_path):
        assert routed.save_cached(str(tmp_path)) is not None
        loaded = CouplingModel.load_cached(
            torus4_network, np.float64, str(tmp_path), routes=ROUTES
        )
        assert loaded is not None
        assert loaded.routes == ROUTES
        assert np.array_equal(loaded.coupling_linear, routed.coupling_linear)
        assert np.array_equal(loaded.signal_linear, routed.signal_linear)
        assert np.array_equal(
            loaded.insertion_loss_db, routed.insertion_loss_db, equal_nan=True
        )

    def test_routed_entry_invisible_to_plain_lookup(
        self, torus4_network, routed, tmp_path
    ):
        routed.save_cached(str(tmp_path))
        assert (
            CouplingModel.load_cached(torus4_network, np.float64, str(tmp_path))
            is None
        )
        assert (
            CouplingModel.load_cached(
                torus4_network, np.float64, str(tmp_path), routes=2
            )
            is None
        )


class TestRoutedArrayStreaming:
    def test_export_arrays_round_trip(self, torus4_network, routed):
        payload = routed.export_arrays()
        assert payload["routes"] == ROUTES
        rebuilt = CouplingModel.from_arrays(torus4_network, payload)
        assert rebuilt.routes == ROUTES
        assert np.array_equal(rebuilt.coupling_linear, routed.coupling_linear)

    def test_from_arrays_rejects_width_mismatch(self, torus4_network, routed):
        payload = routed.export_arrays()
        payload["routes"] = 2  # arrays are sized for 3 menus per pair
        with pytest.raises(ModelError):
            CouplingModel.from_arrays(torus4_network, payload)

    def test_shared_export_preserves_routes(self, torus4_network, routed):
        handle = routed.shared_export("dense")
        assert handle.spec.routes == ROUTES
        attached = CouplingModel.attach_shared(handle.spec, torus4_network)
        assert attached.routes == ROUTES
        assert np.array_equal(attached.coupling_linear, routed.coupling_linear)
