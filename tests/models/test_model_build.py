"""Walk-once vectorized builder: legacy parity, sharding, the disk cache.

The vectorized ``CouplingModel._build`` must be **bit-identical** to the
seed per-aggressor walk loop (kept as ``builder="legacy"``) on meshes and
tori, at float64 and float32, for any ``build_workers`` count — and the
on-disk model cache must only ever be a fast path: hits are memory-mapped
loads of identical arrays, misses (signature / dtype / version changes),
corruption and unwritable directories all fall back to a correct build.
"""

import json
import os

import numpy as np
import pytest

from repro.models import coupling as coupling_module
from repro.models import pairwise_coupling_linear
from repro.models.coupling import CouplingModel, clear_model_cache
from repro.noc import PhotonicNoC, mesh


@pytest.fixture(autouse=True)
def _clean_registry():
    clear_model_cache()
    yield
    clear_model_cache()


@pytest.fixture(scope="module", params=["mesh3", "mesh4", "torus4"])
def network_pair(request):
    """(name, network) for every architecture of the parity matrix."""
    return request.param, request.getfixturevalue(f"{request.param}_network")


@pytest.fixture(scope="module", params=["float64", "float32"])
def legacy_and_vectorized(request, network_pair):
    name, network = network_pair
    dtype = np.dtype(request.param)
    legacy = CouplingModel(network, dtype=dtype, builder="legacy")
    vectorized = CouplingModel(network, dtype=dtype)
    return name, legacy, vectorized


class TestLegacyParity:
    def test_coupling_bit_identical(self, legacy_and_vectorized):
        name, legacy, vectorized = legacy_and_vectorized
        np.testing.assert_array_equal(
            vectorized.coupling_linear, legacy.coupling_linear, err_msg=name
        )

    def test_signal_bit_identical(self, legacy_and_vectorized):
        name, legacy, vectorized = legacy_and_vectorized
        np.testing.assert_array_equal(
            vectorized.signal_linear, legacy.signal_linear, err_msg=name
        )

    def test_insertion_loss_bit_identical(self, legacy_and_vectorized):
        name, legacy, vectorized = legacy_and_vectorized
        # NaN on the src == dst diagonal pairs in both builders.
        np.testing.assert_array_equal(
            vectorized.insertion_loss_db, legacy.insertion_loss_db, err_msg=name
        )

    def test_unknown_builder_rejected(self, mesh3_network):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            CouplingModel(mesh3_network, builder="quantum")


class TestShardedBuild:
    @pytest.mark.parametrize("build_workers", [2, 3])
    def test_bit_identical_for_any_worker_count(
        self, mesh3_network, build_workers
    ):
        reference = CouplingModel(mesh3_network)
        sharded = CouplingModel(mesh3_network, build_workers=build_workers)
        np.testing.assert_array_equal(
            sharded.coupling_linear, reference.coupling_linear
        )
        np.testing.assert_array_equal(
            sharded.signal_linear, reference.signal_linear
        )

    def test_float32_sharded_bit_identical(self, mesh3_network):
        reference = CouplingModel(mesh3_network, dtype=np.float32)
        sharded = CouplingModel(
            mesh3_network, dtype=np.float32, build_workers=2
        )
        np.testing.assert_array_equal(
            sharded.coupling_linear, reference.coupling_linear
        )

    def test_pool_failure_falls_back_inline(self, mesh3_network, monkeypatch):
        from repro.core import pool as pool_module

        def broken(n_workers):
            raise RuntimeError("no processes today")

        monkeypatch.setattr(pool_module, "get_build_pool", broken)
        reference = CouplingModel(mesh3_network)
        fallback = CouplingModel(mesh3_network, build_workers=4)
        np.testing.assert_array_equal(
            fallback.coupling_linear, reference.coupling_linear
        )


class TestTorusCrossValidation:
    """Wrap-around walks exercise the cutoff-terminated orbit paths."""

    def test_torus_walks_orbit_until_cutoff(self, torus4_network):
        """On a torus some emission walk revisits elements (a wrap orbit)
        and ends by attenuation, not absorption — the regime the walk-once
        builder's cycle detection must get right."""
        from repro.models import emission_walk

        orbits = 0
        for path in list(torus4_network.all_paths().values())[:40]:
            for step in path.traversals:
                seen = set()
                for element, _i, _o, _loss in emission_walk(
                    torus4_network, step.element, step.out_port
                ):
                    if element in seen:
                        orbits += 1
                        break
                    seen.add(element)
                if orbits:
                    break
            if orbits:
                break
        assert orbits, "no wrap-around orbit found on the torus"

    def test_vectorized_matches_reference_on_wrap_pairs(self, torus4_network):
        model = CouplingModel.for_network(torus4_network)
        paths = torus4_network.all_paths()
        # Edge-column tiles route over the wrap links under XY on a 4x4
        # torus (distance 3 > wrap distance 1).
        keys = [(0, 3), (3, 0), (12, 15), (0, 12), (3, 15), (1, 2), (5, 6)]
        for victim_key in keys[:4]:
            for aggressor_key in keys:
                if victim_key == aggressor_key:
                    continue
                reference = pairwise_coupling_linear(
                    torus4_network, paths[victim_key], paths[aggressor_key]
                )
                vectorized = model.coupling_linear[
                    model.pair_index(*victim_key),
                    model.pair_index(*aggressor_key),
                ]
                assert vectorized == pytest.approx(
                    reference, rel=1e-9, abs=1e-18
                ), (victim_key, aggressor_key)


class TestDiskCache:
    def _network(self, params):
        return PhotonicNoC(mesh(2, 2), params=params)

    def test_cold_build_persists_then_warm_load_memory_maps(
        self, params, tmp_path, monkeypatch
    ):
        network = self._network(params)
        built = CouplingModel.for_network(
            network, use_cache=False, cache_dir=str(tmp_path)
        )
        key = CouplingModel.disk_key(network.signature, np.float64)
        assert (tmp_path / key / "meta.json").is_file()

        # A warm load must not build: poison the builder.
        def no_build(self, build_workers=1):
            raise AssertionError("cache hit must not rebuild")

        monkeypatch.setattr(CouplingModel, "_build", no_build)
        loaded = CouplingModel.for_network(
            network, use_cache=False, cache_dir=str(tmp_path)
        )
        assert isinstance(loaded.coupling_linear, np.memmap)
        assert not loaded.coupling_linear.flags.writeable
        np.testing.assert_array_equal(
            np.asarray(loaded.coupling_linear), built.coupling_linear
        )
        np.testing.assert_array_equal(
            np.asarray(loaded.signal_linear), built.signal_linear
        )
        assert loaded._nnz == built.nnz  # seeded from the cache metadata

    def test_miss_on_dtype_and_signature(self, params, tmp_path):
        network = self._network(params)
        CouplingModel.for_network(
            network, use_cache=False, cache_dir=str(tmp_path)
        )
        assert (
            CouplingModel.load_cached(network, np.float32, str(tmp_path))
            is None
        )
        other = PhotonicNoC(mesh(3, 3), params=params)
        assert (
            CouplingModel.load_cached(other, np.float64, str(tmp_path))
            is None
        )

    def test_miss_on_model_version_bump(self, params, tmp_path, monkeypatch):
        network = self._network(params)
        built = CouplingModel.for_network(
            network, use_cache=False, cache_dir=str(tmp_path)
        )
        monkeypatch.setattr(
            coupling_module, "MODEL_VERSION", coupling_module.MODEL_VERSION + 1
        )
        assert (
            CouplingModel.load_cached(network, np.float64, str(tmp_path))
            is None
        )
        # ... and for_network transparently rebuilds (and re-persists
        # under the new key).
        rebuilt = CouplingModel.for_network(
            network, use_cache=False, cache_dir=str(tmp_path)
        )
        np.testing.assert_array_equal(
            rebuilt.coupling_linear, built.coupling_linear
        )
        assert len(list(tmp_path.iterdir())) == 2  # one entry per version

    def test_stale_metadata_signature_misses(self, params, tmp_path):
        """A key collision (or hand-edited entry) is caught by the
        metadata check, not trusted on file name alone."""
        network = self._network(params)
        CouplingModel.for_network(
            network, use_cache=False, cache_dir=str(tmp_path)
        )
        key = CouplingModel.disk_key(network.signature, np.float64)
        meta_path = tmp_path / key / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["signature"] = "somebody-else's-architecture"
        meta_path.write_text(json.dumps(meta))
        assert (
            CouplingModel.load_cached(network, np.float64, str(tmp_path))
            is None
        )

    def test_corrupted_entry_falls_back_to_rebuild(self, params, tmp_path):
        network = self._network(params)
        built = CouplingModel.for_network(
            network, use_cache=False, cache_dir=str(tmp_path)
        )
        key = CouplingModel.disk_key(network.signature, np.float64)
        (tmp_path / key / "coupling_linear.npy").write_bytes(b"not numpy")
        recovered = CouplingModel.for_network(
            network, use_cache=False, cache_dir=str(tmp_path)
        )
        np.testing.assert_array_equal(
            np.asarray(recovered.coupling_linear), built.coupling_linear
        )
        # The rebuild repaired the entry in place.
        repaired = CouplingModel.load_cached(
            network, np.float64, str(tmp_path)
        )
        assert repaired is not None
        np.testing.assert_array_equal(
            np.asarray(repaired.coupling_linear), built.coupling_linear
        )

    def test_unwritable_cache_dir_falls_back_to_memory(self, params, tmp_path):
        """A cache_dir that cannot be written (here: obstructed by a
        plain file) must degrade to an ordinary in-memory build."""
        obstruction = tmp_path / "not-a-directory"
        obstruction.write_text("in the way")
        network = self._network(params)
        model = CouplingModel.for_network(
            network, use_cache=False, cache_dir=str(obstruction)
        )
        reference = CouplingModel(network)
        np.testing.assert_array_equal(
            model.coupling_linear, reference.coupling_linear
        )
        assert obstruction.read_text() == "in the way"

    def test_module_default_cache_dir(self, params, tmp_path):
        from repro.models.coupling import (
            get_model_cache_dir,
            set_model_cache_dir,
        )

        previous = get_model_cache_dir()
        try:
            set_model_cache_dir(str(tmp_path))
            network = self._network(params)
            CouplingModel.for_network(network, use_cache=False)
            key = CouplingModel.disk_key(network.signature, np.float64)
            assert (tmp_path / key).is_dir()
        finally:
            set_model_cache_dir(previous)

    def test_explicit_cache_dir_overrides_default(self, params, tmp_path, monkeypatch):
        from repro.models.coupling import set_model_cache_dir

        default_dir = tmp_path / "default"
        explicit_dir = tmp_path / "explicit"
        monkeypatch.setattr(coupling_module, "_MODEL_CACHE_DIR", None)
        set_model_cache_dir(str(default_dir))
        network = self._network(params)
        CouplingModel.for_network(
            network, use_cache=False, cache_dir=str(explicit_dir)
        )
        key = CouplingModel.disk_key(network.signature, np.float64)
        assert (explicit_dir / key).is_dir()
        assert not default_dir.exists()

    def test_evaluator_resolves_default_dir_for_pools(
        self, params, pip_cg, tmp_path, monkeypatch
    ):
        """The process-wide default must land on the evaluator (and thus
        on the pools it creates), not stay an unresolved None."""
        from repro.core import MappingEvaluator, MappingProblem
        from repro.models.coupling import set_model_cache_dir

        monkeypatch.setattr(coupling_module, "_MODEL_CACHE_DIR", None)
        set_model_cache_dir(str(tmp_path))
        network = PhotonicNoC(mesh(3, 3), params=params)
        problem = MappingProblem(pip_cg, network, "snr")
        evaluator = MappingEvaluator(problem)
        assert evaluator.model_cache_dir == str(tmp_path)

    def test_evaluator_threads_cache_dir(self, params, pip_cg, tmp_path):
        from repro.core import MappingEvaluator, MappingProblem

        network = PhotonicNoC(mesh(3, 3), params=params)
        problem = MappingProblem(pip_cg, network, "snr")
        clear_model_cache()
        with MappingEvaluator(
            problem, model_cache_dir=str(tmp_path)
        ) as evaluator:
            key = CouplingModel.disk_key(network.signature, np.float64)
            assert (tmp_path / key / "meta.json").is_file()
            clear_model_cache()
            with MappingEvaluator(
                problem, model_cache_dir=str(tmp_path)
            ) as warm:
                assert isinstance(warm.model.coupling_linear, np.memmap)
                metrics = warm.evaluate(
                    np.arange(pip_cg.n_tasks, dtype=np.int64)
                )
                reference = evaluator.evaluate(
                    np.arange(pip_cg.n_tasks, dtype=np.int64)
                )
                assert metrics.score == reference.score
