"""Crosstalk reference-model tests: hand-reasoned scenarios.

The scenarios encode the coupling landscape DESIGN.md §3 and the Crux
layout promise:

* a tile that receives and sends couples with itself at the crossing grade
  (the X4 gateway crossing), never at the ring grade;
* a chain's upstream edge does not leak ring-grade noise into the
  downstream edge (the victim's ON injection ring shields it);
* same-direction transit through a receiver's router couples at the ring
  grade (the -20 dB regime of constrained mappings);
* parallel disjoint communications do not couple at all.
"""

import math

import pytest

from repro.models import (
    aggregate_noise_linear,
    emission_walk,
    pairwise_coupling_linear,
    snr_db,
)
from repro.models.coupling import CouplingModel
from repro.noc import PhotonicNoC, mesh
from repro.noc.paths import NetworkPath, Traversal
from repro.photonics.elements import (
    A_IN,
    B_IN,
    ElementKind,
    TraversalState,
    straight_output,
    traversal_emissions,
)


def coupling_db(network, victim_pair, aggressor_pair):
    victim = network.path(*victim_pair)
    aggressor = network.path(*aggressor_pair)
    value = pairwise_coupling_linear(network, victim, aggressor)
    if value == 0.0:
        return None
    # relative to the victim's received signal power
    return 10 * math.log10(value / victim.total_linear)


class TestSelfCoupling:
    def test_receive_send_couples_at_crossing_grade(self, mesh3_network):
        """recv at tile 4 from west, send east: about -40 dB (X4 crossing)."""
        relative = coupling_db(mesh3_network, (3, 4), (4, 5))
        assert relative is not None
        assert -42.0 < relative < -36.0

    def test_receive_send_all_direction_pairs_couple(self, mesh3_network):
        # Tile 4 is the center: receive from each neighbour, send to another.
        neighbors = {"W": 3, "E": 5, "S": 1, "N": 7}
        for recv_from in neighbors.values():
            for send_to in neighbors.values():
                if recv_from == send_to:
                    continue
                relative = coupling_db(mesh3_network, (recv_from, 4), (4, send_to))
                assert relative is not None, (recv_from, send_to)
                # several crossing-grade terms may sum, but the total stays
                # well below the -20/-25 dB ring grade
                assert relative < -30.0, (recv_from, send_to)

    def test_no_ring_grade_self_coupling(self, mesh3_network):
        """No (receive, send) pair at a tile couples at the -20 dB grade."""
        neighbors = {"W": 3, "E": 5, "S": 1, "N": 7}
        for recv_from in neighbors.values():
            for send_to in neighbors.values():
                if recv_from == send_to:
                    continue
                relative = coupling_db(mesh3_network, (recv_from, 4), (4, send_to))
                assert relative < -28.0, (recv_from, send_to)


class TestChainShielding:
    def test_upstream_edge_couples_downstream_at_crossing_grade(self, mesh3_network):
        """0->1 then 1->2 in a row: the 1->2 edge's ON injection ring
        diverts the upstream ejection's ring leak (second-order, zeroed);
        only the gateway-crossing leak remains."""
        relative = coupling_db(mesh3_network, (1, 2), (0, 1))
        assert relative is not None
        assert relative < -32.0

    def test_downstream_edge_couples_upstream_at_crossing_grade(self, mesh3_network):
        relative = coupling_db(mesh3_network, (0, 1), (1, 2))
        assert relative is not None
        assert relative < -32.0


class TestTransitCoupling:
    def test_same_direction_transit_hits_receiver(self, mesh4_network):
        """victim 5->6 receives at (1,2) from the west; aggressor 4->7
        transits that router eastbound and leaks into its ejection ring:
        ring grade (~ -20 dB)."""
        relative = coupling_db(mesh4_network, (5, 6), (4, 7))
        assert relative is not None
        assert -25.0 < relative < -15.0

    def test_cross_direction_transit_hits_arrival(self, mesh4_network):
        """victim 1->5 arrives at (1,1) northbound; aggressor 4->6 transits
        (1,1) eastbound; the XY turn rings couple them at ring grade."""
        relative = coupling_db(mesh4_network, (1, 5), (4, 6))
        assert relative is not None
        assert relative > -25.0

    def test_transit_vs_sender_is_crossing_grade(self, mesh4_network):
        """victim 5->9 sends north from (1,1); the eastbound transit only
        couples into it at the crossing grade."""
        relative = coupling_db(mesh4_network, (5, 9), (4, 6))
        assert relative is not None
        assert relative < -32.0

    def test_disjoint_rows_do_not_couple(self, mesh3_network):
        assert coupling_db(mesh3_network, (0, 1), (7, 8)) is None

    def test_self_pair_is_zero(self, mesh3_network):
        victim = mesh3_network.path(0, 1)
        assert pairwise_coupling_linear(mesh3_network, victim, victim) == 0.0


class TestAggregation:
    def test_aggregate_sums_pairs(self, mesh3_network):
        victim = mesh3_network.path(3, 4)
        aggressors = [mesh3_network.path(4, 5), mesh3_network.path(1, 4)]
        total = aggregate_noise_linear(mesh3_network, victim, aggressors)
        parts = sum(
            pairwise_coupling_linear(mesh3_network, victim, a) for a in aggressors
        )
        assert total == pytest.approx(parts)

    def test_snr_db(self):
        assert snr_db(1.0, 0.01) == pytest.approx(20.0)
        assert snr_db(1.0, 0.0) == math.inf

    def test_coupling_nonnegative_everywhere(self, mesh3_network):
        paths = mesh3_network.all_paths()
        keys = sorted(paths)[:10]
        for v in keys:
            for a in keys:
                value = pairwise_coupling_linear(
                    mesh3_network, paths[v], paths[a]
                )
                assert value >= 0.0


class TestRevisitingVictimPath:
    """Regression for the reference/vectorized first-encounter divergence.

    The reference walker used to key ``victim_entries``/``victim_exits``
    by element with the *last* traversal winning, while the vectorized
    builder credits the *first* — so any routing whose path re-enters an
    element (torus wraps, detours) made the two models disagree.
    Paper-faithful semantics: each (emission, victim) pair is counted
    once, at the first shared encounter.

    No organic crux path co-enters a walked guide (sharing the upstream
    guide recurses into an exit join at the emitting element), so the
    scenario synthesizes one: the victim path is extended with two
    traversals of an element on an aggressor emission's walk — once
    co-entering through the noise's port, once through the other guide.
    Whichever comes *first* must decide the credit.
    """

    def _scenario(self, params):
        """(network, victim_key, aggressor_key, co_enter, revisit).

        Picks an aggressor emission walk element ``E1`` (non-waveguide,
        reached by this aggressor's walks only through one port) and a
        victim path that never visits ``E1`` nor exits the emission
        channel, then builds the two lossless extension traversals.
        """
        network = PhotonicNoC(mesh(3, 3), params=params)
        paths = network.all_paths()
        for aggressor_key in sorted(paths):
            aggressor = paths[aggressor_key]
            walked = {}  # element -> set of noise in_ports, over all emissions
            for step in aggressor.traversals:
                info = network.element(step.element)
                for emission in traversal_emissions(
                    info.kind, step.in_port, step.out_port, step.state,
                    network.params,
                ):
                    for element, in_port, _exit, _loss in emission_walk(
                        network, step.element, emission.out_port
                    ):
                        walked.setdefault(element, set()).add(in_port)
            for element in sorted(walked):
                if len(walked[element]) != 1:
                    continue  # both guides walked: A/B asymmetry lost
                if network.element(element).kind is ElementKind.WAVEGUIDE:
                    continue  # waveguides have no second input port
                (in_port,) = walked[element]
                other_in = B_IN if in_port == A_IN else A_IN
                kind = network.element(element).kind
                for victim_key in sorted(paths):
                    if victim_key == aggressor_key:
                        continue
                    victim = paths[victim_key]
                    if any(s.element == element for s in victim.traversals):
                        continue
                    co_enter = Traversal(
                        element, in_port, straight_output(kind, in_port),
                        TraversalState.PASSIVE,
                    )
                    revisit = Traversal(
                        element, other_in, straight_output(kind, other_in),
                        TraversalState.PASSIVE,
                    )
                    return network, victim_key, aggressor_key, co_enter, revisit
        raise AssertionError("no revisiting scenario found on mesh3")

    @staticmethod
    def _extend(path, extra):
        return NetworkPath(
            path.src,
            path.dst,
            tuple(path.traversals) + tuple(extra),
            list(path.losses_db) + [0.0] * len(extra),
        )

    def test_first_traversal_wins(self, params):
        network, victim_key, aggressor_key, co_enter, revisit = self._scenario(
            params
        )
        paths = network.all_paths()
        victim, aggressor = paths[victim_key], paths[aggressor_key]
        original = pairwise_coupling_linear(network, victim, aggressor)
        co_first = pairwise_coupling_linear(
            network, self._extend(victim, (co_enter, revisit)), aggressor
        )
        co_last = pairwise_coupling_linear(
            network, self._extend(victim, (revisit, co_enter)), aggressor
        )
        # Co-entering first receives the walked noise; the lossless
        # re-entry through the other guide afterwards must not undo it.
        assert co_first > original
        # Entering through the other guide first shields the victim — the
        # ON-ring diversion rule — and the later co-entry is not credited.
        # (The last-wins bug inverted both outcomes.)
        assert co_last == pytest.approx(original, rel=1e-12)

    @pytest.mark.parametrize("order", ["co_first", "co_last"])
    def test_reference_matches_vectorized_on_revisiting_path(
        self, params, order
    ):
        network, victim_key, aggressor_key, co_enter, revisit = self._scenario(
            params
        )
        extra = (
            (co_enter, revisit) if order == "co_first" else (revisit, co_enter)
        )
        patched = self._extend(network.all_paths()[victim_key], extra)
        # Inject the synthetic revisiting path into a fresh network's
        # path cache so the vectorized builder sees exactly what the
        # reference walker scores.
        network2 = PhotonicNoC(mesh(3, 3), params=params)
        network2.all_paths()
        network2._paths[victim_key] = patched
        model = CouplingModel(network2)
        paths = network2.all_paths()
        victim_pair = model.pair_index(*victim_key)
        for key, aggressor in sorted(paths.items()):
            if key == victim_key:
                continue
            reference = pairwise_coupling_linear(network2, patched, aggressor)
            vectorized = model.coupling_linear[
                victim_pair, model.pair_index(*key)
            ]
            assert vectorized == pytest.approx(
                reference, rel=1e-9, abs=1e-18
            ), key


class TestEmissionWalk:
    def test_walk_terminates(self, mesh3_network):
        path = mesh3_network.path(0, 8)
        first = path.traversals[0]
        steps = list(emission_walk(mesh3_network, first.element, first.out_port))
        assert len(steps) < 2000

    def test_walk_losses_monotone(self, mesh3_network):
        path = mesh3_network.path(0, 8)
        step = path.traversals[2]
        losses = [
            loss for _e, _i, _o, loss in emission_walk(
                mesh3_network, step.element, step.out_port
            )
        ]
        assert all(b <= a + 1e-15 for a, b in zip(losses, losses[1:]))
