"""Crosstalk reference-model tests: hand-reasoned scenarios.

The scenarios encode the coupling landscape DESIGN.md §3 and the Crux
layout promise:

* a tile that receives and sends couples with itself at the crossing grade
  (the X4 gateway crossing), never at the ring grade;
* a chain's upstream edge does not leak ring-grade noise into the
  downstream edge (the victim's ON injection ring shields it);
* same-direction transit through a receiver's router couples at the ring
  grade (the -20 dB regime of constrained mappings);
* parallel disjoint communications do not couple at all.
"""

import math

import pytest

from repro.models import (
    aggregate_noise_linear,
    emission_walk,
    pairwise_coupling_linear,
    snr_db,
)
from repro.noc import PhotonicNoC, mesh


def coupling_db(network, victim_pair, aggressor_pair):
    victim = network.path(*victim_pair)
    aggressor = network.path(*aggressor_pair)
    value = pairwise_coupling_linear(network, victim, aggressor)
    if value == 0.0:
        return None
    # relative to the victim's received signal power
    return 10 * math.log10(value / victim.total_linear)


class TestSelfCoupling:
    def test_receive_send_couples_at_crossing_grade(self, mesh3_network):
        """recv at tile 4 from west, send east: about -40 dB (X4 crossing)."""
        relative = coupling_db(mesh3_network, (3, 4), (4, 5))
        assert relative is not None
        assert -42.0 < relative < -36.0

    def test_receive_send_all_direction_pairs_couple(self, mesh3_network):
        # Tile 4 is the center: receive from each neighbour, send to another.
        neighbors = {"W": 3, "E": 5, "S": 1, "N": 7}
        for recv_from in neighbors.values():
            for send_to in neighbors.values():
                if recv_from == send_to:
                    continue
                relative = coupling_db(mesh3_network, (recv_from, 4), (4, send_to))
                assert relative is not None, (recv_from, send_to)
                # several crossing-grade terms may sum, but the total stays
                # well below the -20/-25 dB ring grade
                assert relative < -30.0, (recv_from, send_to)

    def test_no_ring_grade_self_coupling(self, mesh3_network):
        """No (receive, send) pair at a tile couples at the -20 dB grade."""
        neighbors = {"W": 3, "E": 5, "S": 1, "N": 7}
        for recv_from in neighbors.values():
            for send_to in neighbors.values():
                if recv_from == send_to:
                    continue
                relative = coupling_db(mesh3_network, (recv_from, 4), (4, send_to))
                assert relative < -28.0, (recv_from, send_to)


class TestChainShielding:
    def test_upstream_edge_couples_downstream_at_crossing_grade(self, mesh3_network):
        """0->1 then 1->2 in a row: the 1->2 edge's ON injection ring
        diverts the upstream ejection's ring leak (second-order, zeroed);
        only the gateway-crossing leak remains."""
        relative = coupling_db(mesh3_network, (1, 2), (0, 1))
        assert relative is not None
        assert relative < -32.0

    def test_downstream_edge_couples_upstream_at_crossing_grade(self, mesh3_network):
        relative = coupling_db(mesh3_network, (0, 1), (1, 2))
        assert relative is not None
        assert relative < -32.0


class TestTransitCoupling:
    def test_same_direction_transit_hits_receiver(self, mesh4_network):
        """victim 5->6 receives at (1,2) from the west; aggressor 4->7
        transits that router eastbound and leaks into its ejection ring:
        ring grade (~ -20 dB)."""
        relative = coupling_db(mesh4_network, (5, 6), (4, 7))
        assert relative is not None
        assert -25.0 < relative < -15.0

    def test_cross_direction_transit_hits_arrival(self, mesh4_network):
        """victim 1->5 arrives at (1,1) northbound; aggressor 4->6 transits
        (1,1) eastbound; the XY turn rings couple them at ring grade."""
        relative = coupling_db(mesh4_network, (1, 5), (4, 6))
        assert relative is not None
        assert relative > -25.0

    def test_transit_vs_sender_is_crossing_grade(self, mesh4_network):
        """victim 5->9 sends north from (1,1); the eastbound transit only
        couples into it at the crossing grade."""
        relative = coupling_db(mesh4_network, (5, 9), (4, 6))
        assert relative is not None
        assert relative < -32.0

    def test_disjoint_rows_do_not_couple(self, mesh3_network):
        assert coupling_db(mesh3_network, (0, 1), (7, 8)) is None

    def test_self_pair_is_zero(self, mesh3_network):
        victim = mesh3_network.path(0, 1)
        assert pairwise_coupling_linear(mesh3_network, victim, victim) == 0.0


class TestAggregation:
    def test_aggregate_sums_pairs(self, mesh3_network):
        victim = mesh3_network.path(3, 4)
        aggressors = [mesh3_network.path(4, 5), mesh3_network.path(1, 4)]
        total = aggregate_noise_linear(mesh3_network, victim, aggressors)
        parts = sum(
            pairwise_coupling_linear(mesh3_network, victim, a) for a in aggressors
        )
        assert total == pytest.approx(parts)

    def test_snr_db(self):
        assert snr_db(1.0, 0.01) == pytest.approx(20.0)
        assert snr_db(1.0, 0.0) == math.inf

    def test_coupling_nonnegative_everywhere(self, mesh3_network):
        paths = mesh3_network.all_paths()
        keys = sorted(paths)[:10]
        for v in keys:
            for a in keys:
                value = pairwise_coupling_linear(
                    mesh3_network, paths[v], paths[a]
                )
                assert value >= 0.0


class TestEmissionWalk:
    def test_walk_terminates(self, mesh3_network):
        path = mesh3_network.path(0, 8)
        first = path.traversals[0]
        steps = list(emission_walk(mesh3_network, first.element, first.out_port))
        assert len(steps) < 2000

    def test_walk_losses_monotone(self, mesh3_network):
        path = mesh3_network.path(0, 8)
        step = path.traversals[2]
        losses = [
            loss for _e, _i, _o, loss in emission_walk(
                mesh3_network, step.element, step.out_port
            )
        ]
        assert all(b <= a + 1e-15 for a, b in zip(losses, losses[1:]))
