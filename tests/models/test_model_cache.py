"""Coupling-model cache and shared-export lifecycle guarantees.

The process cache and the shared-memory export registry are global
state: a model built with ``use_cache=False`` must stay out of the
cache, ``clear_model_cache()`` must unlink every live export (so no
segment survives to trip the resource tracker), and the CSR-flavoured
export must round-trip bit-exactly through attach.
"""

import numpy as np
import pytest

from repro.models import coupling as coupling_module
from repro.models.coupling import CouplingModel, clear_model_cache


@pytest.fixture(autouse=True)
def _clean_registry():
    clear_model_cache()
    yield
    clear_model_cache()


class TestProcessCache:
    def test_for_network_seeds_cache_by_default(self, mesh3_network):
        model = CouplingModel.for_network(mesh3_network)
        key = CouplingModel.cache_key(mesh3_network, np.float64)
        assert coupling_module._CACHE[key] is model
        assert CouplingModel.for_network(mesh3_network) is model

    def test_use_cache_false_does_not_seed_cache(self, mesh3_network):
        key = CouplingModel.cache_key(mesh3_network, np.float64)
        model = CouplingModel.for_network(mesh3_network, use_cache=False)
        assert key not in coupling_module._CACHE
        # ...and does not read a previously cached instance either.
        cached = CouplingModel.for_network(mesh3_network)
        assert (
            CouplingModel.for_network(mesh3_network, use_cache=False)
            is not cached
        )
        assert model is not cached

    def test_dtype_keys_do_not_alias(self, mesh3_network):
        m64 = CouplingModel.for_network(mesh3_network)
        m32 = CouplingModel.for_network(mesh3_network, dtype=np.float32)
        assert m64 is not m32
        assert m32.coupling_linear.dtype == np.float32


class TestSharedExportLifecycle:
    def test_clear_model_cache_unlinks_live_exports(self, mesh3_network):
        from multiprocessing import shared_memory

        model = CouplingModel.for_network(mesh3_network)
        names = [
            model.shared_export("dense").spec.shm_name,
            model.shared_export("sparse").spec.shm_name,
        ]
        assert len(set(names)) == 2  # flavours are distinct segments
        clear_model_cache()
        assert coupling_module._EXPORTS == []
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_shared_export_is_cached_per_flavour(self, mesh3_network):
        model = CouplingModel.for_network(mesh3_network)
        dense = model.shared_export("dense")
        sparse = model.shared_export("sparse")
        assert model.shared_export("dense") is dense
        assert model.shared_export("sparse") is sparse
        dense.close()
        replacement = model.shared_export("dense")  # closed: re-exported
        assert replacement is not dense
        replacement.close()
        sparse.close()

    def test_spec_ships_nnz_and_attach_seeds_it(self, mesh3_network, monkeypatch):
        """A dense-flavour attach must not re-scan the shared matrix to
        resolve ``backend="auto"``: the nonzero count ships in the spec."""
        model = CouplingModel.for_network(mesh3_network)
        expected = model.nnz
        with model.export_shared(with_transpose=True, with_csr=False) as handle:
            assert handle.spec.nnz == expected
            attached = CouplingModel.attach_shared(handle.spec, mesh3_network)
            assert attached._nnz == expected

            def no_scan(*args, **kwargs):
                raise AssertionError("attached model re-scanned the matrix")

            monkeypatch.setattr(np, "count_nonzero", no_scan)
            assert attached.nnz == expected
            assert attached.density == pytest.approx(model.density)

    def test_csr_flavour_round_trips_through_attach(self, mesh3_network):
        model = CouplingModel.for_network(mesh3_network)
        csr = model.csr()
        with model.export_shared(with_transpose=False, with_csr=True) as handle:
            spec = handle.spec
            assert spec.with_csr and not spec.with_transpose
            assert spec.csr_nnz == csr.nnz
            attached = CouplingModel.attach_shared(spec, mesh3_network)
            np.testing.assert_array_equal(
                attached.coupling_linear, model.coupling_linear
            )
            acsr = attached.csr()
            np.testing.assert_array_equal(acsr.indptr, csr.indptr)
            np.testing.assert_array_equal(acsr.indices, csr.indices)
            np.testing.assert_array_equal(acsr.values, csr.values)
            np.testing.assert_array_equal(
                acsr.nonzero_rows, csr.nonzero_rows
            )
            assert not acsr.values.flags.writeable
            assert attached.nnz == model.nnz
            assert attached.density == pytest.approx(model.density)

    def test_csr_structure_matches_dense_matrix(self, mesh3_network):
        model = CouplingModel.for_network(mesh3_network)
        csr = model.csr()
        dense = model.coupling_linear
        assert csr.nnz == np.count_nonzero(dense)
        for row in (0, 3, model.n_pairs - 1):
            lo, hi = csr.indptr[row], csr.indptr[row + 1]
            cols = csr.indices[lo:hi]
            assert (np.diff(cols) > 0).all()  # column-sorted, no dupes
            np.testing.assert_array_equal(cols, np.nonzero(dense[row])[0])
            np.testing.assert_array_equal(
                csr.values[lo:hi], dense[row, cols]
            )

    def test_row_dots_matches_dense_matvec(self, mesh3_network):
        model = CouplingModel.for_network(mesh3_network)
        csr = model.csr()
        rng = np.random.default_rng(3)
        weights = rng.random(model.n_pairs)
        expected = model.coupling_linear @ weights
        np.testing.assert_allclose(
            csr.row_dots(weights), expected, rtol=1e-12, atol=0
        )
