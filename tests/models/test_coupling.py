"""Vectorized coupling-matrix tests: cross-validation against the reference.

The CouplingModel must agree with the pure-Python pairwise reference on
every architecture — this is the guard that keeps the fast path honest.
"""

import numpy as np
import pytest

from repro.models import CouplingModel, clear_model_cache, pairwise_coupling_linear
from repro.noc import PhotonicNoC, mesh, torus


@pytest.fixture(scope="module")
def mesh3_model(mesh3_network):
    return CouplingModel.for_network(mesh3_network)


class TestAgainstReference:
    def _check(self, network, model, sample_pairs):
        paths = network.all_paths()
        for victim_key, aggressor_key in sample_pairs:
            reference = pairwise_coupling_linear(
                network, paths[victim_key], paths[aggressor_key]
            )
            vectorized = model.coupling_linear[
                model.pair_index(*victim_key), model.pair_index(*aggressor_key)
            ]
            assert vectorized == pytest.approx(reference, rel=1e-9, abs=1e-18), (
                victim_key,
                aggressor_key,
            )

    def test_mesh3_sampled_pairs(self, mesh3_network, mesh3_model, rng):
        keys = sorted(mesh3_network.all_paths())
        picks = rng.choice(len(keys), size=25, replace=False)
        sample = [
            (keys[int(a)], keys[int(b)])
            for a in picks[:5]
            for b in picks
        ]
        self._check(mesh3_network, mesh3_model, sample)

    def test_torus_sampled_pairs(self, torus4_network, rng):
        model = CouplingModel.for_network(torus4_network)
        keys = sorted(torus4_network.all_paths())
        picks = rng.choice(len(keys), size=15, replace=False)
        sample = [
            (keys[int(a)], keys[int(b)]) for a in picks[:3] for b in picks
        ]
        self._check(torus4_network, model, sample)

    def test_crossbar_network_pairs(self, params, rng):
        network = PhotonicNoC(mesh(2, 2), router="crossbar", params=params)
        model = CouplingModel.for_network(network, use_cache=False)
        keys = sorted(network.all_paths())
        sample = [(v, a) for v in keys for a in keys]
        self._check(network, model, sample)


class TestMatrixProperties:
    def test_signal_matches_paths(self, mesh3_network, mesh3_model):
        for (src, dst), path in mesh3_network.all_paths().items():
            pair = mesh3_model.pair_index(src, dst)
            assert mesh3_model.signal_linear[pair] == pytest.approx(
                path.total_linear
            )
            assert mesh3_model.insertion_loss_db[pair] == pytest.approx(
                path.loss_db
            )

    def test_diagonal_is_zero(self, mesh3_model):
        assert np.all(np.diag(mesh3_model.coupling_linear) == 0.0)

    def test_no_negative_couplings(self, mesh3_model):
        assert mesh3_model.coupling_linear.min() >= 0.0

    def test_invalid_pairs_have_no_signal(self, mesh3_model):
        for tile in range(9):
            pair = mesh3_model.pair_index(tile, tile)
            assert mesh3_model.signal_linear[pair] == 0.0
            assert np.isnan(mesh3_model.insertion_loss_db[pair])

    def test_pair_indices_vectorized(self, mesh3_model):
        src = np.array([0, 1, 2])
        dst = np.array([3, 4, 5])
        expected = [mesh3_model.pair_index(s, d) for s, d in zip(src, dst)]
        assert list(mesh3_model.pair_indices(src, dst)) == expected

    def test_couplings_bounded_by_ring_grade(self, mesh3_model, params):
        """No single coupling can exceed Kp,off-grade by much: the noise is
        attenuated along both paths."""
        peak = mesh3_model.coupling_linear.max()
        assert peak < 10 ** (params.pse_off_crosstalk_db / 10) * 2.5


class TestCaching:
    def test_cache_returns_same_object(self, mesh3_network):
        a = CouplingModel.for_network(mesh3_network)
        b = CouplingModel.for_network(mesh3_network)
        assert a is b

    def test_cache_distinguishes_dtype(self, mesh3_network):
        a = CouplingModel.for_network(mesh3_network)
        b = CouplingModel.for_network(mesh3_network, dtype=np.float32)
        assert a is not b
        assert b.coupling_linear.dtype == np.float32

    def test_no_cache_builds_fresh(self, mesh3_network):
        a = CouplingModel.for_network(mesh3_network)
        b = CouplingModel.for_network(mesh3_network, use_cache=False)
        assert a is not b

    def test_clear_cache(self, params):
        network = PhotonicNoC(mesh(2, 2), params=params)
        a = CouplingModel.for_network(network)
        clear_model_cache()
        b = CouplingModel.for_network(network)
        assert a is not b

    def test_float32_close_to_float64(self, mesh3_network):
        a = CouplingModel.for_network(mesh3_network)
        b = CouplingModel.for_network(mesh3_network, dtype=np.float32)
        np.testing.assert_allclose(
            b.coupling_linear, a.coupling_linear.astype(np.float32), rtol=1e-5
        )
