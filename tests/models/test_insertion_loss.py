"""Insertion loss model tests (eq. 3)."""

import pytest

from repro.errors import MappingError
from repro.models import (
    edge_insertion_losses_db,
    path_insertion_loss_db,
    worst_case_insertion_loss_db,
)


class TestPathLoss:
    def test_matches_network_path(self, mesh3_network):
        assert path_insertion_loss_db(mesh3_network, 0, 5) == pytest.approx(
            mesh3_network.path(0, 5).loss_db
        )

    def test_negative(self, mesh3_network):
        assert path_insertion_loss_db(mesh3_network, 0, 1) < 0


class TestWorstCase:
    def test_worst_is_most_negative(self, mesh3_network):
        edges = ((0, 1), (1, 2))
        mapping = {0: 0, 1: 1, 2: 8}  # task 1 -> 2 spans the whole mesh
        losses = edge_insertion_losses_db(mesh3_network, edges, mapping)
        worst = worst_case_insertion_loss_db(mesh3_network, edges, mapping)
        assert worst == min(losses.values())
        assert losses[(1, 2)] < losses[(0, 1)]

    def test_per_edge_keys(self, mesh3_network):
        edges = ((0, 1),)
        losses = edge_insertion_losses_db(mesh3_network, edges, {0: 3, 1: 4})
        assert set(losses) == {(0, 1)}

    def test_unmapped_task_rejected(self, mesh3_network):
        with pytest.raises(MappingError, match="not mapped"):
            worst_case_insertion_loss_db(mesh3_network, ((0, 1),), {0: 0})

    def test_empty_edges_rejected(self, mesh3_network):
        with pytest.raises(MappingError, match="no edges"):
            worst_case_insertion_loss_db(mesh3_network, (), {})

    def test_longer_paths_lose_more(self, mesh4_network):
        close = worst_case_insertion_loss_db(mesh4_network, ((0, 1),), {0: 0, 1: 1})
        far = worst_case_insertion_loss_db(mesh4_network, ((0, 1),), {0: 0, 1: 15})
        assert far < close
