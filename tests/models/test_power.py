"""Laser power budget tests."""

import pytest

from repro.errors import ConfigurationError, ModelError
from repro.models import (
    PowerBudget,
    is_feasible,
    max_tolerable_loss_db,
    required_laser_power_dbm,
)


class TestRequiredPower:
    def test_basic(self):
        budget = PowerBudget(
            detector_sensitivity_dbm=-20.0,
            max_injected_power_dbm=10.0,
            system_margin_db=1.0,
        )
        assert required_laser_power_dbm(-5.0, budget) == pytest.approx(-14.0)

    def test_more_loss_needs_more_power(self):
        assert required_laser_power_dbm(-8.0) > required_laser_power_dbm(-2.0)

    def test_positive_loss_rejected(self):
        with pytest.raises(ModelError):
            required_laser_power_dbm(1.0)


class TestFeasibility:
    def test_max_tolerable_loss(self):
        budget = PowerBudget(-20.0, 10.0, 1.0)
        assert max_tolerable_loss_db(budget) == pytest.approx(-29.0)

    def test_feasible_at_small_loss(self):
        assert is_feasible(-2.0)

    def test_infeasible_at_huge_loss(self):
        assert not is_feasible(-40.0)

    def test_boundary(self):
        budget = PowerBudget(-20.0, 10.0, 1.0)
        assert is_feasible(max_tolerable_loss_db(budget), budget)
        assert not is_feasible(max_tolerable_loss_db(budget) - 0.1, budget)


class TestValidation:
    def test_negative_margin_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerBudget(system_margin_db=-1.0)

    def test_ceiling_below_sensitivity_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerBudget(detector_sensitivity_dbm=5.0, max_injected_power_dbm=0.0)
